//! Misprediction-distance analysis (Figures 6 and 7 of the paper) for a
//! single workload: how far apart mispredictions fall, and how much
//! parallelism lives between them on the SP machine.
//!
//! ```text
//! cargo run --release --example misprediction_profile [workload]
//! ```

use clfp::limits::{AnalysisConfig, Analyzer};
use clfp::metrics::ascii_bar;
use clfp::workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "qsort".into());
    let workload = by_name(&name)?;

    let program = workload.compile()?;
    let config = AnalysisConfig {
        max_instrs: 1_000_000,
        ..AnalysisConfig::default()
    };
    let report = Analyzer::new(&program, config)?.run()?;
    let stats = report
        .mispred_stats
        .as_ref()
        .expect("SP machine was analyzed");

    println!(
        "{name}: {} dynamic branches, {:.2}% predicted, {} misprediction segments\n",
        report.branches.cond_branches,
        report.branches.prediction_rate(),
        stats.total_segments()
    );

    println!("cumulative distribution of misprediction distances (Figure 6):");
    for d in [5, 10, 20, 50, 100, 200, 500, 1000, 5000] {
        let fraction = stats.fraction_within(d);
        let bar = ascii_bar(fraction, 1.0, 50);
        println!("  <= {d:>5} instrs  {:>5.1}%  {bar}", fraction * 100.0);
    }

    println!("\nharmonic-mean SP parallelism by segment length (Figure 7):");
    let rows: Vec<(u32, f64, u64)> = stats
        .parallelism_by_distance()
        .into_iter()
        .filter(|&(_, _, count)| count >= 3) // too few segments to be meaningful
        .collect();
    let max_log = rows
        .iter()
        .map(|&(_, hmean, _)| hmean.log2().max(0.0))
        .fold(0.0f64, f64::max);
    for (bucket, hmean, count) in rows {
        let bar = ascii_bar(hmean.log2().max(0.0), max_log, 50);
        println!("  {bucket:>6}+ instrs  {hmean:>8.2}x  ({count:>6} segments)  {bar}");
    }

    println!(
        "\nThe paper's observation holds: short segments between\n\
         mispredictions carry little parallelism (tight data dependences),\n\
         long segments carry much more — but they are rare, which is what\n\
         fundamentally limits the SP machine."
    );
    Ok(())
}
