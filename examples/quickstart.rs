//! Quickstart: compile a MiniC program and measure its parallelism limits
//! under all seven abstract machine models.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clfp::lang::compile;
use clfp::limits::{AnalysisConfig, Analyzer, MachineKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small program with data-dependent control flow: count Collatz
    // steps for many seeds.
    let source = r#"
        var steps: int[512];
        fn collatz(n: int) -> int {
            var count: int = 0;
            while (n != 1 && count < 500) {
                if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                count = count + 1;
            }
            return count;
        }
        fn main() -> int {
            var total: int = 0;
            for (var i: int = 0; i < 512; i = i + 1) {
                steps[i] = collatz(i + 2);
                total = total + steps[i];
            }
            return total;
        }
    "#;

    let program = compile(source)?;
    println!(
        "compiled: {} instructions, {} data words\n",
        program.text.len(),
        program.data.len()
    );

    let analyzer = Analyzer::new(&program, AnalysisConfig::default())?;
    let report = analyzer.run()?;

    println!(
        "trace: {} dynamic instructions ({} after perfect inlining/unrolling)",
        report.raw_instrs, report.seq_instrs
    );
    println!(
        "branches: {} conditional, {:.1}% predicted correctly\n",
        report.branches.cond_branches,
        report.branches.prediction_rate()
    );

    println!("{:10} {:>12} {:>12}", "machine", "cycles", "parallelism");
    for kind in MachineKind::ALL {
        let result = report.result(kind).expect("all machines analyzed");
        println!(
            "{:10} {:>12} {:>12.2}",
            kind.name(),
            result.cycles,
            result.parallelism
        );
    }

    println!(
        "\nThe ordering BASE ≤ CD ≤ CD-MF ≤ ORACLE and BASE ≤ SP ≤ SP-CD ≤ \
         SP-CD-MF ≤ ORACLE always holds; the gaps show how much each\n\
         control-flow technique (control dependence, multiple flows, \
         speculation) buys on this program."
    );
    Ok(())
}
