//! The paper's Figure 2/3 worked example, reconstructed: a hand-written
//! assembly flow graph with a data-dependent branch inside a loop and
//! control-independent code after it, scheduled on every machine model.
//!
//! Prints, for each machine, the cycle at which every dynamic instruction
//! executes — the Figure 3 view. Watch how:
//!
//! * BASE strings everything behind the branch chain;
//! * CD frees the control-independent tail but still orders branches;
//! * SP only stalls at *mispredicted* branches;
//! * SP-CD cancels only true dependents on a misprediction;
//! * SP-CD-MF + ORACLE collapse the schedule to data dependences.
//!
//! ```text
//! cargo run --example worked_example
//! ```

use clfp::isa::assemble;
use clfp::limits::{AnalysisConfig, Analyzer, MachineKind};
use clfp::vm::{Vm, VmOptions};

const SOURCE: &str = r#"
# Figure-2-style flow graph: a loop over flag words; the inner branch is
# data dependent (mispredicts), the loop branch is predictable, and the
# accumulator r12 after the loop is control independent of the inner
# branches.
    .data
flags: .word 1, 0, 1, 1, 0, 1, 0, 0
    .text
main:
    li   r10, flags      # pointer
    li   r8, 0           # i
    li   r9, 8           # n
    li   r11, 0          # conditional counter
loop:
    lw   r13, 0(r10)     # flags[i]             (node 2: data load)
    beq  r13, r0, skip   # data-dependent branch (node 3)
    addi r11, r11, 1     # control dependent on the beq (node 4)
skip:
    addi r10, r10, 4     # pointer bump
    addi r8, r8, 1       # i++        (removed by perfect unrolling)
    blt  r8, r9, loop    # loop branch (removed by perfect unrolling)
tail:
    li   r12, 100        # control independent of everything in the loop
    addi r12, r12, 5     # (node 6/7 in the paper's example)
    halt
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(SOURCE)?;
    println!("{}", program.disassemble());

    let mut vm = Vm::new(&program, VmOptions::default());
    let trace = vm.trace(10_000)?;
    println!("trace: {} dynamic instructions\n", trace.len());

    let analyzer = Analyzer::new(&program, AnalysisConfig::default())?;
    let report = analyzer.run()?;

    // Figure 3: per-instruction schedules. One row per dynamic
    // instruction, one column per machine.
    let schedules: Vec<(MachineKind, Vec<u64>)> = MachineKind::ALL
        .iter()
        .map(|&kind| (kind, analyzer.schedule(&trace, kind)))
        .collect();

    print!("{:>4} {:28}", "idx", "instruction");
    for (kind, _) in &schedules {
        print!("{:>9}", kind.name());
    }
    println!();
    for (i, event) in trace.iter().enumerate() {
        let instr = program.text[event.pc as usize];
        print!("{:>4} {:28}", i, instr.to_string());
        for (_, schedule) in &schedules {
            if schedule[i] == 0 {
                print!("{:>9}", "-"); // removed by inlining/unrolling
            } else {
                print!("{:>9}", schedule[i]);
            }
        }
        println!();
    }

    println!("\ntotal cycles / parallelism:");
    for kind in MachineKind::ALL {
        let result = report.result(kind).expect("analyzed");
        println!(
            "  {:9} {:>5} cycles  {:>6.2}x",
            kind.name(),
            result.cycles,
            result.parallelism
        );
    }
    Ok(())
}
