//! Guarded instructions (the paper's Section 6 concluding proposal):
//! compile the same workloads twice — once with conventional branches,
//! once with if-conversion to conditional moves — and compare the SP-family
//! limits.
//!
//! The paper: "Guarded instructions are particularly interesting when
//! combined with support for speculative execution, since they help
//! increase the distance between mispredicted branches."
//!
//! ```text
//! cargo run --release -p clfp --example guarded_instructions
//! ```

use clfp::lang::CodegenOptions;
use clfp::limits::{AnalysisConfig, Analyzer, MachineKind};
use clfp::workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for name in ["scan", "logic", "fmt"] {
        let workload = by_name(name).expect("known workload");
        println!("== {name} ==");
        println!(
            "{:10} {:>10} {:>9} {:>11} {:>8} {:>8} {:>10}",
            "codegen", "branches", "pred%", "<=100 dist", "SP", "SP-CD", "SP-CD-MF"
        );
        for (label, if_conversion) in [("branches", false), ("guarded", true)] {
            let program = workload.compile_with(CodegenOptions { if_conversion, ..CodegenOptions::default() })?;
            let config = AnalysisConfig {
                max_instrs: 600_000,
                machines: vec![MachineKind::Sp, MachineKind::SpCd, MachineKind::SpCdMf],
                ..AnalysisConfig::default()
            };
            let report = Analyzer::new(&program, config)?.run()?;
            let within = report
                .mispred_stats
                .as_ref()
                .map(|s| s.fraction_within(100) * 100.0)
                .unwrap_or(100.0);
            println!(
                "{:10} {:>10} {:>8.2}% {:>10.0}% {:>8.2} {:>8.2} {:>10.2}",
                label,
                report.branches.cond_branches,
                report.branches.prediction_rate(),
                within,
                report.parallelism(MachineKind::Sp),
                report.parallelism(MachineKind::SpCd),
                report.parallelism(MachineKind::SpCdMf),
            );
        }
        println!();
    }
    println!(
        "Guarding removes the poorly-predicted data-dependent branches\n\
         entirely, so the surviving branch mix predicts better and segments\n\
         between mispredictions grow — the SP machine gains. The price is a\n\
         new data dependence (each cmov reads its destination), visible\n\
         where SP-CD-MF loses a little."
    );
    Ok(())
}
