//! End-to-end tour of the toolchain on a user-supplied kernel: compile
//! MiniC, inspect the generated assembly and static analyses (control
//! dependences, loops, induction variables), then measure the limits.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use clfp::cfg::StaticInfo;
use clfp::lang::compile_with_listing;
use clfp::limits::{AnalysisConfig, Analyzer, MachineKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A histogram kernel: data-dependent stores, predictable loop.
    let source = r#"
        var input: int[2048];
        var hist: int[64];
        fn rnd(k: int) -> int {
            var v: int = k * 2654435761 + 1013904223;
            v = v ^ ((v >> 16) & 65535);
            return v & 1073741823;
        }
        fn main() -> int {
            for (var i: int = 0; i < 2048; i = i + 1) {
                input[i] = rnd(i);
            }
            for (var i: int = 0; i < 2048; i = i + 1) {
                var bucket: int = input[i] % 64;
                hist[bucket] = hist[bucket] + 1;
            }
            var peak: int = 0;
            for (var b: int = 0; b < 64; b = b + 1) {
                if (hist[b] > peak) { peak = hist[b]; }
            }
            return peak;
        }
    "#;

    let (program, listing) = compile_with_listing(source)?;
    println!("== generated assembly (first 40 lines) ==");
    for line in listing.lines().take(40) {
        println!("{line}");
    }
    println!("  ... ({} instructions total)\n", program.text.len());

    // Static analyses the analyzer runs under the hood.
    let info = StaticInfo::analyze(&program);
    println!(
        "== static analysis ==\n{} basic blocks, {} procedures, {} natural loops",
        info.cfg.blocks().len(),
        info.cfg.procs().len(),
        info.loops.loops().len()
    );
    for (i, l) in info.loops.loops().iter().enumerate() {
        let regs: Vec<String> = info.induction.induction_regs()[i]
            .iter()
            .map(|r| r.to_string())
            .collect();
        println!(
            "  loop {} (header block {:?}, {} blocks): induction regs [{}]",
            i,
            l.header,
            l.blocks.len(),
            regs.join(", ")
        );
    }
    let removed = (0..program.text.len() as u32)
        .filter(|&pc| info.masks.ignored(pc, true))
        .count();
    println!(
        "perfect inlining + unrolling removes {removed} of {} static instructions\n",
        program.text.len()
    );

    // Limit analysis.
    let report = Analyzer::new(&program, AnalysisConfig::default())?.run()?;
    println!("== parallelism limits ==");
    for kind in MachineKind::ALL {
        println!(
            "  {:9} {:>8.2}",
            kind.name(),
            report.parallelism(kind)
        );
    }
    println!(
        "\nNote the histogram loop: `hist[bucket] = hist[bucket] + 1` creates\n\
         true memory dependences only when buckets collide, so even ORACLE\n\
         parallelism is bounded by the hottest bucket's chain."
    );
    Ok(())
}
