//! Ablation: how the speculative machines respond to branch-predictor
//! quality. The paper uses profile-based static prediction and notes that
//! dynamic techniques perform similarly; this example checks that claim on
//! the reproduced workloads.
//!
//! ```text
//! cargo run --release --example predictor_ablation
//! ```

use clfp::limits::{AnalysisConfig, Analyzer, MachineKind, PredictorChoice};
use clfp::workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let predictors = [
        PredictorChoice::Profile,
        PredictorChoice::Bimodal { entries: 4096 },
        PredictorChoice::Gshare {
            entries: 4096,
            history_bits: 8,
        },
        PredictorChoice::TwoLevel {
            entries: 4096,
            history_bits: 10,
        },
        PredictorChoice::Btfn,
        PredictorChoice::AlwaysTaken,
    ];

    for name in ["scan", "logic"] {
        let workload = by_name(name).expect("known workload");
        let program = workload.compile()?;
        println!("== {name} ==");
        println!(
            "{:14} {:>10} {:>8} {:>8} {:>10}",
            "predictor", "accuracy", "SP", "SP-CD", "SP-CD-MF"
        );
        for predictor in predictors {
            let config = AnalysisConfig {
                max_instrs: 400_000,
                predictor,
                machines: vec![MachineKind::Sp, MachineKind::SpCd, MachineKind::SpCdMf],
                ..AnalysisConfig::default()
            };
            let report = Analyzer::new(&program, config)?.run()?;
            println!(
                "{:14} {:>9.2}% {:>8.2} {:>8.2} {:>10.2}",
                predictor.name(),
                report.branches.prediction_rate(),
                report.parallelism(MachineKind::Sp),
                report.parallelism(MachineKind::SpCd),
                report.parallelism(MachineKind::SpCdMf),
            );
        }
        println!();
    }

    println!(
        "Profile prediction (the paper's upper bound for static schemes)\n\
         and the dynamic predictors land close together; the naive static\n\
         schemes cost the SP machines a large fraction of their parallelism."
    );
    Ok(())
}
