//! IPC profiles: where does the parallelism live? For each machine model,
//! the distribution of instructions issued per cycle — a handful of very
//! wide "burst" cycles vs sustained width. Useful for interpreting the
//! paper's big SP-CD-MF and ORACLE numbers: most of that parallelism sits
//! in enormous bursts a real machine would need enormous width to catch.
//!
//! Built on the `clfp::metrics` recording sink: one prepared-trace walk
//! collects the occupancy histogram of every machine, instead of seven
//! separate full schedules.
//!
//! ```text
//! cargo run --release -p clfp --example ipc_profile [workload]
//! ```

use clfp::limits::{AnalysisConfig, Analyzer, MachineKind};
use clfp::metrics::ascii_bar;
use clfp::vm::{Vm, VmOptions};
use clfp::workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "qsort".into());
    let workload = by_name(&name)?;
    let program = workload.compile()?;

    let config = AnalysisConfig {
        max_instrs: 300_000,
        ..AnalysisConfig::default()
    };
    let analyzer = Analyzer::new(&program, config.clone())?;
    let mut vm = Vm::new(&program, VmOptions::default());
    let trace = vm.trace(config.max_instrs)?;
    let metrics = analyzer.prepare(&trace).machine_metrics();

    println!("{name}: {} dynamic instructions\n", trace.len());
    println!(
        "{:10} {:>8} {:>8} {:>8} {:>22}",
        "machine", "IPC", "peak", "cycles", "% instrs in cycles>=32"
    );
    for (kind, m) in &metrics {
        println!(
            "{:10} {:>8.2} {:>8} {:>8} {:>21.1}%",
            kind.name(),
            m.occupancy.mean(),
            m.occupancy.peak,
            m.cycles,
            m.occupancy.fraction_in_wide_cycles(32) * 100.0
        );
    }

    println!("\nWidth histogram for SP-CD-MF (cycles per issue-width bucket):");
    let (_, spcdmf) = metrics
        .iter()
        .find(|(kind, _)| *kind == MachineKind::SpCdMf)
        .expect("SP-CD-MF is always analyzed");
    let max_cycles = spcdmf
        .occupancy
        .buckets
        .iter()
        .map(|b| b.cycles)
        .max()
        .unwrap_or(0);
    for bucket in &spcdmf.occupancy.buckets {
        let bar = ascii_bar(bucket.cycles as f64, max_cycles as f64, 40);
        println!(
            "  width {:>6}+ : {:>8} cycles  {bar}",
            bucket.width_low, bucket.cycles
        );
    }
    Ok(())
}
