//! IPC profiles: where does the parallelism live? For each machine model,
//! the distribution of instructions issued per cycle — a handful of very
//! wide "burst" cycles vs sustained width. Useful for interpreting the
//! paper's big SP-CD-MF and ORACLE numbers: most of that parallelism sits
//! in enormous bursts a real machine would need enormous width to catch.
//!
//! ```text
//! cargo run --release -p clfp --example ipc_profile [workload]
//! ```

use clfp::limits::{AnalysisConfig, Analyzer, IpcProfile, MachineKind};
use clfp::vm::{Vm, VmOptions};
use clfp::workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "qsort".into());
    let workload = by_name(&name)?;
    let program = workload.compile()?;

    let config = AnalysisConfig {
        max_instrs: 300_000,
        ..AnalysisConfig::default()
    };
    let analyzer = Analyzer::new(&program, config.clone())?;
    let mut vm = Vm::new(&program, VmOptions::default());
    let trace = vm.trace(config.max_instrs)?;

    println!(
        "{name}: {} dynamic instructions\n",
        trace.len()
    );
    println!(
        "{:10} {:>8} {:>8} {:>8} {:>22}",
        "machine", "IPC", "peak", "cycles", "% instrs in cycles>=32"
    );
    for kind in MachineKind::ALL {
        let schedule = analyzer.schedule(&trace, kind);
        let profile = IpcProfile::from_schedule(&schedule);
        println!(
            "{:10} {:>8.2} {:>8} {:>8} {:>21.1}%",
            kind.name(),
            profile.mean(),
            profile.peak(),
            profile.cycles(),
            profile.fraction_in_wide_cycles(32) * 100.0
        );
    }

    println!("\nWidth histogram for SP-CD-MF (cycles per issue-width bucket):");
    let schedule = analyzer.schedule(&trace, MachineKind::SpCdMf);
    let profile = IpcProfile::from_schedule(&schedule);
    for (bucket, cycles) in profile.width_histogram() {
        let bar = "#".repeat(((cycles as f64).log2().max(0.0) * 3.0) as usize);
        println!("  width {bucket:>6}+ : {cycles:>8} cycles  {bar}");
    }
    Ok(())
}
