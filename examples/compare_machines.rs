//! Compare the seven machine models across contrasting workloads: one
//! data-dependent non-numeric program (the paper's awk/espresso class) and
//! one data-independent numeric program (the matrix300/tomcatv class).
//!
//! ```text
//! cargo run --release --example compare_machines
//! ```

use clfp::limits::{AnalysisConfig, Analyzer, MachineKind};
use clfp::workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = AnalysisConfig {
        max_instrs: 500_000,
        ..AnalysisConfig::default()
    };

    println!(
        "{:10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "workload", "BASE", "CD", "CD-MF", "SP", "SP-CD", "SP-CD-MF", "ORACLE"
    );
    for name in ["logic", "qsort", "stencil"] {
        let workload = by_name(name).expect("known workload");
        let program = workload.compile()?;
        let report = Analyzer::new(&program, config.clone())?.run()?;
        print!("{:10}", workload.name);
        for kind in MachineKind::ALL {
            print!(" {:>8.2}", report.parallelism(kind));
        }
        println!();
    }

    println!(
        "\nReading the rows: `logic` (espresso-like, data-dependent control)\n\
         gains little until speculation + control dependence combine;\n\
         `qsort` (eqntott-like) has few data dependences, so removing\n\
         control constraints uncovers large parallelism; `stencil`\n\
         (tomcatv-like, data-independent control) is already huge at CD-MF —\n\
         control dependence alone exposes its loop-level parallelism, the\n\
         paper's key distinction between control-flow classes."
    );
    Ok(())
}
