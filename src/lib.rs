//! # clfp — Limits of Control Flow on Parallelism
//!
//! Facade crate re-exporting the whole `clfp` workspace: a reproduction of
//! Lam & Wilson, *Limits of Control Flow on Parallelism* (ISCA 1992).
//!
//! The workspace members, in dependency order:
//!
//! * [`isa`] — the MIPS-like instruction set, assembler, and program format.
//! * [`vm`] — the tracing interpreter (the study's `pixie` equivalent).
//! * [`cfg`](mod@cfg) — control-flow graphs, dominance, control dependence, loop and
//!   induction-variable analysis.
//! * [`predict`] — profile-based static branch prediction (the paper's
//!   predictor) plus ablation predictors.
//! * [`lang`] — the MiniC compiler used to build workloads with realistic
//!   control flow.
//! * [`limits`] — the paper's contribution: seven abstract machine models
//!   and the trace-driven parallelism limit analyzer.
//! * [`metrics`] — the observability layer: the zero-cost scheduling sink,
//!   cycle-occupancy histograms, critical-path attribution, and the run
//!   manifest stamped into every generated result (see
//!   `docs/OBSERVABILITY.md`).
//! * [`workloads`] — the benchmark suite mirroring the paper's Table 1.
//! * [`verify`] — static lint diagnostics and the static/dynamic
//!   cross-checker that validates the analyzer's model against captured
//!   traces.
//!
//! ## Quickstart
//!
//! ```
//! use clfp::lang::compile;
//! use clfp::limits::{AnalysisConfig, Analyzer, MachineKind};
//!
//! let program = compile(
//!     "fn main() -> int { var s: int = 0; for (var i: int = 0; i < 50; i = i + 1) { if (i % 3 == 0) { s = s + i; } } return s; }",
//! )?;
//! let report = Analyzer::new(&program, AnalysisConfig::default())?.run()?;
//! let oracle = report.parallelism(MachineKind::Oracle);
//! let base = report.parallelism(MachineKind::Base);
//! assert!(oracle >= base);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use clfp_cfg as cfg;
pub use clfp_isa as isa;
pub use clfp_lang as lang;
pub use clfp_limits as limits;
pub use clfp_metrics as metrics;
pub use clfp_predict as predict;
pub use clfp_verify as verify;
pub use clfp_vm as vm;
pub use clfp_workloads as workloads;
