//! The `clfp` command-line tool: compile, run, disassemble, and analyze
//! MiniC programs or clfp assembly with the limit analyzer.
//!
//! ```text
//! clfp compile prog.mc            # print generated assembly
//! clfp disasm prog.mc             # print linked disassembly
//! clfp run prog.mc                # execute, print main's result
//! clfp analyze prog.mc            # parallelism for all 7 machines
//! clfp analyze --workload qsort --max-instr 500000
//! clfp analyze --workload qsort --max-instrs 100000000 --stream
//!                                 # stream in O(chunk) trace memory
//! clfp analyze prog.s --no-unroll --predictor bimodal --fetch 8
//! clfp analyze --workload qsort --valuepred stride
//!                                 # schedule with value speculation
//! clfp lint prog.mc               # lint + static/dynamic cross-check
//! clfp lint --workload qsort --json
//! clfp workloads                  # list the benchmark suite
//! clfp cache                      # list the on-disk trace cache + suite
//!                                 # hit/miss probe (cache list --json for
//!                                 # machine-readable output)
//! clfp cache clear                # delete every cached trace
//! clfp analyze --workload qsort --trace-json spans.json
//!                                 # export pipeline spans for Perfetto
//! ```
//!
//! Files ending in `.mc` are treated as MiniC; anything else is assembled
//! as clfp assembly.

use std::process::ExitCode;

use clfp::isa::{Program, Reg};
use clfp::lang::CodegenOptions;
use clfp::limits::{
    AnalysisConfig, Analyzer, MachineKind, PredictorChoice, StreamOptions, ValuePrediction,
};
use clfp::vm::{Vm, VmOptions};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("clfp: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match command.as_str() {
        "compile" => compile_cmd(rest),
        "disasm" => disasm_cmd(rest),
        "run" => run_cmd(rest),
        "trace" => trace_cmd(rest),
        "analyze" => analyze_cmd(rest),
        "lint" => lint_cmd(rest),
        "cache" => cache_cmd(rest),
        "workloads" => {
            for w in clfp::workloads::suite() {
                println!(
                    "{:10} ({}; {})",
                    w.name, w.paper_analog, w.description
                );
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `clfp help`")),
    }
}

fn print_usage() {
    println!(
        "usage: clfp <command> [options]\n\n\
         commands:\n\
         \u{20} compile <file.mc> [--if-convert] [--optimize]\n\
         \u{20}                                    print generated assembly\n\
         \u{20} disasm  <file>                     print linked disassembly\n\
         \u{20} run     <file> [--max-instr N]     execute and print the result\n\
         \u{20} trace   <file> -o out.trc          capture a trace to a file\n\
         \u{20} analyze <file | --workload NAME>   parallelism limits (all machines)\n\
         \u{20}         [--max-instrs N] [--no-unroll] [--no-inline]\n\
         \u{20}         [--predictor profile|btfn|taken|bimodal|gshare|two-level]\n\
         \u{20}         [--valuepred off|last-value|stride|perfect]\n\
         \u{20}         [--fetch W] [--if-convert] [--trace file.trc]\n\
         \u{20}         [--stream [--chunk EVENTS]] analyze in O(chunk) trace memory\n\
         \u{20}         [--trace-json out.json]    record pipeline spans and export\n\
         \u{20}         Chrome trace-event JSON (load in ui.perfetto.dev)\n\
         \u{20} lint    <file | --workload NAME>   lint + cross-check one program\n\
         \u{20}         [--max-instrs N] [--static-only] [--json]\n\
         \u{20}         exits nonzero on any error-severity finding\n\
         \u{20} workloads                          list the benchmark suite\n\
         \u{20} cache [list] [clear] [--dir DIR]   list (or wipe) the on-disk trace\n\
         \u{20}         cache used by regen; default $CLFP_CACHE_DIR or\n\
         \u{20}         target/clfp-cache; list probes the suite at\n\
         \u{20}         [--max-instrs N] and reports cache hits/misses,\n\
         \u{20}         with --json as machine-readable JSON\n\n\
         Files ending in .mc are MiniC; anything else is clfp assembly."
    );
}

fn load_program(path: &str, options: CodegenOptions) -> Result<Program, String> {
    let source =
        std::fs::read_to_string(path).map_err(|err| format!("cannot read `{path}`: {err}"))?;
    if path.ends_with(".mc") {
        clfp::lang::compile_with_options(&source, options).map_err(|err| err.to_string())
    } else {
        clfp::isa::assemble(&source).map_err(|err| err.to_string())
    }
}

fn parse_flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|at| args.get(at + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// `--max-instr` and `--max-instrs` are both accepted everywhere.
fn max_instrs_flag(args: &[String]) -> Result<Option<u64>, String> {
    parse_flag_value(args, "--max-instr")
        .or_else(|| parse_flag_value(args, "--max-instrs"))
        .map(|v| v.parse().map_err(|_| format!("bad --max-instrs `{v}`")))
        .transpose()
}

fn positional(args: &[String]) -> Option<&str> {
    let mut skip_next = false;
    for arg in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if let Some(flag) = arg.strip_prefix("--") {
            skip_next = matches!(
                flag,
                "max-instr"
                    | "max-instrs"
                    | "predictor"
                    | "fetch"
                    | "workload"
                    | "trace"
                    | "trace-json"
                    | "chunk"
                    | "valuepred"
                    | "dir"
            );
            continue;
        }
        if arg == "-o" {
            skip_next = true;
            continue;
        }
        return Some(arg);
    }
    None
}

fn codegen_options(args: &[String]) -> CodegenOptions {
    CodegenOptions {
        if_conversion: has_flag(args, "--if-convert"),
        optimize: has_flag(args, "--optimize"),
    }
}

fn compile_cmd(args: &[String]) -> Result<(), String> {
    let path = positional(args).ok_or("compile needs a .mc file")?;
    if !path.ends_with(".mc") {
        return Err("compile takes a MiniC (.mc) file".into());
    }
    let source =
        std::fs::read_to_string(path).map_err(|err| format!("cannot read `{path}`: {err}"))?;
    let options = codegen_options(args);
    let mut module = clfp::lang::parse(&source).map_err(|err| err.to_string())?;
    clfp::lang::check(&module).map_err(|err| err.to_string())?;
    if options.optimize {
        module = clfp::lang::optimize(&module);
    }
    let listing =
        clfp::lang::generate_asm_with(&module, options).map_err(|err| err.to_string())?;
    print!("{listing}");
    Ok(())
}

fn disasm_cmd(args: &[String]) -> Result<(), String> {
    let path = positional(args).ok_or("disasm needs a file")?;
    let program = load_program(path, codegen_options(args))?;
    print!("{}", program.disassemble());
    Ok(())
}

fn run_cmd(args: &[String]) -> Result<(), String> {
    let path = positional(args).ok_or("run needs a file")?;
    let limit: u64 = max_instrs_flag(args)?.unwrap_or(1_000_000_000);
    let program = load_program(path, codegen_options(args))?;
    let mut vm = Vm::new(&program, VmOptions::default());
    let outcome = vm.run(limit).map_err(|err| err.to_string())?;
    println!(
        "{outcome:?} after {} instructions; result (v0) = {}",
        vm.executed(),
        vm.reg(Reg::V0)
    );
    Ok(())
}

fn trace_cmd(args: &[String]) -> Result<(), String> {
    let path = positional(args).ok_or("trace needs a file")?;
    let out = parse_flag_value(args, "-o").ok_or("trace needs `-o output.trc`")?;
    let limit: u64 = max_instrs_flag(args)?.unwrap_or(2_000_000);
    let program = load_program(path, codegen_options(args))?;
    let mut vm = Vm::new(&program, VmOptions::default());
    let trace = vm.trace(limit).map_err(|err| err.to_string())?;
    trace
        .save(&program, out)
        .map_err(|err| format!("cannot write `{out}`: {err}"))?;
    println!("wrote {} events to {out}", trace.len());
    Ok(())
}

fn lint_cmd(args: &[String]) -> Result<(), String> {
    use clfp::verify::{lint_program, Severity, TraceChecks};

    let program = if let Some(name) = parse_flag_value(args, "--workload") {
        let workload = clfp::workloads::by_name(name).map_err(|err| err.to_string())?;
        workload
            .compile_with(codegen_options(args))
            .map_err(|err| err.to_string())?
    } else {
        let path = positional(args).ok_or("lint needs a file or --workload NAME")?;
        load_program(path, codegen_options(args))?
    };

    // Only the machine-independent model is needed for the cross-checks;
    // analyze the cheapest machine.
    let mut config = AnalysisConfig {
        machines: vec![MachineKind::Base],
        ..AnalysisConfig::default()
    };
    if let Some(limit) = max_instrs_flag(args)? {
        config.max_instrs = limit;
    }
    let max_instrs = config.max_instrs;
    let analyzer = Analyzer::new(&program, config).map_err(|err| err.to_string())?;
    let info = analyzer.static_info();
    let mut diagnostics = lint_program(&program, info);

    // Cross-check a measured trace against the static model: CFG edges,
    // CD resolution, unroll masks, alias soundness, sequential counts.
    if !has_flag(args, "--static-only") {
        let mut vm = Vm::new(&program, VmOptions::default());
        let trace = vm.trace(max_instrs).map_err(|err| err.to_string())?;
        let prepared = analyzer.prepare(&trace);
        let checks = TraceChecks::new(&program, info);
        diagnostics.extend(checks.check_dynamic(&trace, &prepared));
    }

    let count_of = |severity: Severity| {
        diagnostics
            .iter()
            .filter(|d| d.severity() == severity)
            .count()
    };
    let errors = count_of(Severity::Error);
    if has_flag(args, "--json") {
        print!("{}", diagnostics_json(&diagnostics));
    } else {
        for diagnostic in &diagnostics {
            println!("{diagnostic}");
        }
        println!(
            "{} error(s), {} warning(s), {} info(s)",
            errors,
            count_of(Severity::Warning),
            count_of(Severity::Info),
        );
    }
    if errors > 0 {
        return Err(format!(
            "{errors} error-severity finding(s): the static model and the \
             program disagree"
        ));
    }
    Ok(())
}

/// `clfp cache [list [--json]] [clear] [--dir DIR]`: inspect or wipe the
/// on-disk trace cache that `regen` populates (see
/// [`clfp::vm::TraceCache`]). Listing also probes the benchmark suite at
/// `--max-instrs` (default 2000000) through the real lookup path, so the
/// hit/miss line reports exactly what a `regen` at that cap would find.
fn cache_cmd(args: &[String]) -> Result<(), String> {
    use clfp::vm::TraceCache;

    let cache = match parse_flag_value(args, "--dir") {
        Some(dir) => TraceCache::new(dir),
        None => TraceCache::new(TraceCache::default_dir()),
    };
    match positional(args) {
        None | Some("list") => {
            let entries = cache
                .entries()
                .map_err(|err| format!("cannot read {}: {err}", cache.dir().display()))?;
            // The lookup path tallies the `cache.hit` / `cache.miss` trace
            // counters whether or not a trace session is active; read the
            // totals back instead of re-deriving the classification here.
            let max_instrs = max_instrs_flag(args)?.unwrap_or(2_000_000);
            for workload in clfp::workloads::suite() {
                let program = workload.compile().map_err(|err| err.to_string())?;
                let _ = cache.lookup(&program, max_instrs);
            }
            let hits = clfp::metrics::trace::counter_total("cache.hit");
            let misses = clfp::metrics::trace::counter_total("cache.miss");
            if has_flag(args, "--json") {
                print!("{}", cache_json(&cache, &entries, max_instrs, hits, misses));
                return Ok(());
            }
            if entries.is_empty() {
                println!("trace cache {} is empty", cache.dir().display());
            } else {
                println!("trace cache {}:", cache.dir().display());
                println!(
                    "{:16} {:>12} {:>12} {:>12}  file",
                    "fingerprint", "max_instrs", "events", "bytes"
                );
                let mut total_bytes = 0u64;
                for entry in &entries {
                    total_bytes += entry.bytes;
                    println!(
                        "{:016x} {:>12} {:>12} {:>12}  {}",
                        entry.fingerprint,
                        entry.max_instrs,
                        entry.events,
                        entry.bytes,
                        entry
                            .path
                            .file_name()
                            .map_or_else(String::new, |n| n.to_string_lossy().into_owned()),
                    );
                }
                println!("{} trace(s), {} bytes total", entries.len(), total_bytes);
            }
            println!(
                "suite probe at cap {max_instrs}: {hits} hit(s), {misses} miss(es)"
            );
            Ok(())
        }
        Some("clear") => {
            let removed = cache
                .clear()
                .map_err(|err| format!("cannot clear {}: {err}", cache.dir().display()))?;
            println!(
                "removed {removed} cached trace(s) from {}",
                cache.dir().display()
            );
            Ok(())
        }
        Some(other) => Err(format!("unknown cache action `{other}`; try `clfp cache` or `clfp cache clear`")),
    }
}

fn cache_json(
    cache: &clfp::vm::TraceCache,
    entries: &[clfp::vm::CacheEntry],
    max_instrs: u64,
    hits: u64,
    misses: u64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"dir\": \"{}\",\n",
        cache.dir().display().to_string().replace('\\', "\\\\").replace('"', "\\\"")
    ));
    out.push_str("  \"entries\": [\n");
    let mut total_bytes = 0u64;
    for (i, entry) in entries.iter().enumerate() {
        total_bytes += entry.bytes;
        out.push_str(&format!(
            "    {{\"fingerprint\": \"{:016x}\", \"max_instrs\": {}, \"events\": {}, \
             \"bytes\": {}, \"file\": \"{}\"}}{}\n",
            entry.fingerprint,
            entry.max_instrs,
            entry.events,
            entry.bytes,
            entry
                .path
                .file_name()
                .map_or_else(String::new, |n| n.to_string_lossy().into_owned()),
            if i + 1 == entries.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"total_bytes\": {total_bytes},\n"));
    out.push_str(&format!(
        "  \"probe\": {{\"max_instrs\": {max_instrs}, \"hits\": {hits}, \"misses\": {misses}}}\n"
    ));
    out.push_str("}\n");
    out
}

fn diagnostics_json(diagnostics: &[clfp::verify::Diagnostic]) -> String {
    let escape = |s: &str| {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<char>>(),
                '\\' => "\\\\".chars().collect(),
                '\n' => "\\n".chars().collect(),
                c => vec![c],
            })
            .collect::<String>()
    };
    let mut out = String::from("[\n");
    for (i, d) in diagnostics.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"kind\": \"{}\", \"severity\": \"{}\", \"pc\": {}, \"message\": \"{}\"}}{}\n",
            d.kind,
            d.severity(),
            d.pc.map_or("null".to_string(), |pc| pc.to_string()),
            escape(&d.message),
            if i + 1 == diagnostics.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    out
}

fn analyze_cmd(args: &[String]) -> Result<(), String> {
    // `--trace-json OUT` records pipeline spans for exactly this analysis
    // and exports them as Chrome trace-event JSON (distinct from `--trace
    // file.trc`, which *loads* a captured execution trace as input).
    let trace_json = parse_flag_value(args, "--trace-json").map(str::to_string);
    if trace_json.is_some() {
        clfp::metrics::trace::set_tracing(true);
    }
    let result = analyze_inner(args);
    if let Some(out) = trace_json {
        clfp::metrics::trace::set_tracing(false);
        let log = clfp::metrics::trace::drain();
        std::fs::write(&out, clfp::metrics::trace::chrome_trace_json(&log))
            .map_err(|err| format!("cannot write `{out}`: {err}"))?;
        println!(
            "wrote {} spans to {out} (open in ui.perfetto.dev or chrome://tracing)",
            log.spans().count()
        );
    }
    result
}

fn analyze_inner(args: &[String]) -> Result<(), String> {
    let program = if let Some(name) = parse_flag_value(args, "--workload") {
        let workload = clfp::workloads::by_name(name).map_err(|err| err.to_string())?;
        workload
            .compile_with(codegen_options(args))
            .map_err(|err| err.to_string())?
    } else {
        let path = positional(args).ok_or("analyze needs a file or --workload NAME")?;
        load_program(path, codegen_options(args))?
    };

    let mut config = AnalysisConfig::default();
    if let Some(limit) = max_instrs_flag(args)? {
        config.max_instrs = limit;
    }
    if has_flag(args, "--no-unroll") {
        config.unrolling = false;
    }
    if has_flag(args, "--no-inline") {
        config.inlining = false;
    }
    if let Some(v) = parse_flag_value(args, "--fetch") {
        config.fetch_bandwidth =
            Some(v.parse().map_err(|_| format!("bad --fetch `{v}`"))?);
    }
    if let Some(v) = parse_flag_value(args, "--predictor") {
        config.predictor = match v {
            "profile" => PredictorChoice::Profile,
            "btfn" => PredictorChoice::Btfn,
            "taken" | "always-taken" => PredictorChoice::AlwaysTaken,
            "bimodal" => PredictorChoice::Bimodal { entries: 4096 },
            "gshare" => PredictorChoice::Gshare {
                entries: 4096,
                history_bits: 8,
            },
            "two-level" | "twolevel" | "pag" => PredictorChoice::TwoLevel {
                entries: 4096,
                history_bits: 10,
            },
            other => return Err(format!("unknown predictor `{other}`")),
        };
    }
    if let Some(v) = parse_flag_value(args, "--valuepred") {
        config.value_prediction = match v {
            "off" => ValuePrediction::Off,
            "last-value" | "lastvalue" => ValuePrediction::LastValue,
            "stride" => ValuePrediction::Stride,
            "perfect" => ValuePrediction::Perfect,
            other => return Err(format!("unknown value-prediction mode `{other}`")),
        };
    }

    let unrolling = config.unrolling;
    let value_prediction = config.value_prediction;
    let analyzer = Analyzer::new(&program, config).map_err(|err| err.to_string())?;
    let report = if has_flag(args, "--stream") {
        // Streaming chunked pipeline: never materializes the trace, so
        // paper-scale caps (100M+) run in O(chunk) trace memory.
        let mut options = StreamOptions::default();
        if let Some(v) = parse_flag_value(args, "--chunk") {
            options.chunk_events = v.parse().map_err(|_| format!("bad --chunk `{v}`"))?;
        }
        let streamed = if let Some(trace_path) = parse_flag_value(args, "--trace") {
            let trace = clfp::vm::Trace::load(&program, trace_path)
                .map_err(|err| format!("cannot load `{trace_path}`: {err}"))?;
            analyzer.run_streamed_on(&trace, options)
        } else {
            analyzer.run_streamed(options)
        }
        .map_err(|err| err.to_string())?;
        streamed.report(unrolling).clone()
    } else if let Some(trace_path) = parse_flag_value(args, "--trace") {
        let trace = clfp::vm::Trace::load(&program, trace_path)
            .map_err(|err| format!("cannot load `{trace_path}`: {err}"))?;
        analyzer.run_on_trace(&trace)
    } else {
        analyzer.run().map_err(|err| err.to_string())?
    };

    println!(
        "trace: {} instructions ({} after inlining/unrolling)",
        report.raw_instrs, report.seq_instrs
    );
    println!(
        "branches: {} conditional ({:.2}% predicted), {} computed jumps",
        report.branches.cond_branches,
        report.branches.prediction_rate(),
        report.branches.computed_jumps
    );
    if value_prediction != ValuePrediction::Off {
        println!(
            "value prediction ({}): {:.2}% of register definitions predicted",
            value_prediction.name(),
            report.branches.value_prediction_rate()
        );
    }
    println!();
    println!("{:10} {:>12} {:>12}", "machine", "cycles", "parallelism");
    for kind in MachineKind::ALL {
        if let Some(result) = report.result(kind) {
            println!(
                "{:10} {:>12} {:>12.2}",
                kind.name(),
                result.cycles,
                result.parallelism
            );
        }
    }
    if let Some(stats) = &report.mispred_stats {
        println!(
            "\nmispredictions: {} segments, {:.0}% within 100 instructions",
            stats.total_segments(),
            stats.fraction_within(100) * 100.0
        );
    }
    Ok(())
}
