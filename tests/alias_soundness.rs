//! Property test: the interprocedural alias analysis is dynamically
//! sound on every program.
//!
//! For any randomly generated MiniC program, every address conflict
//! observed in a measured trace (two accesses touching the same word, at
//! least one a store) must fall on a pair the analysis classifies may- or
//! must-alias — a no-alias verdict on a conflicting pair would mean the
//! `static` disambiguation mode scheduled a real dependence away. Checked
//! for both unroll settings, and the streamed soundness walker must
//! reproduce the in-memory walker across chunk sizes that straddle every
//! boundary shape (single-event, prime, production, whole-trace).

// Requires the external `proptest` crate: gated off by default so the
// workspace builds and tests fully offline. Enable with
// `--features external-tests` after restoring the proptest dev-dependency.
#![cfg(feature = "external-tests")]

mod common;

use clfp::lang::compile;
use clfp::limits::{AnalysisConfig, Analyzer, MachineKind};
use clfp::verify::TraceChecks;
use clfp::vm::{Vm, VmOptions};
use common::arb_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    #[test]
    fn dynamic_conflicts_stay_within_static_may_alias(source in arb_program()) {
        let program = compile(&source)
            .unwrap_or_else(|err| panic!("compile failed: {err}\n{source}"));
        let mut vm = Vm::new(&program, VmOptions { mem_words: 1 << 20 });
        let trace = vm
            .trace(300_000)
            .unwrap_or_else(|err| panic!("vm failed: {err}\n{source}"));
        for unrolling in [false, true] {
            let config = AnalysisConfig {
                max_instrs: 300_000,
                mem_words: 1 << 20,
                unrolling,
                machines: vec![MachineKind::Base],
                ..AnalysisConfig::default()
            };
            let analyzer = Analyzer::new(&program, config)
                .unwrap_or_else(|err| panic!("analyzer failed: {err}\n{source}"));
            let checks = TraceChecks::new(&program, analyzer.static_info());
            let slice = checks.check_alias_soundness(&trace);
            prop_assert!(
                slice.is_empty(),
                "alias analysis unsound (unrolling={}): {:?}\n{}",
                unrolling,
                slice,
                source
            );
            for chunk in [1usize, 7, 4096, trace.len().max(1)] {
                let streamed = checks
                    .check_alias_soundness_source(&trace, chunk)
                    .unwrap_or_else(|err| panic!("stream failed: {err}\n{source}"));
                prop_assert_eq!(
                    &streamed,
                    &slice,
                    "streamed walker diverged at chunk {}\n{}",
                    chunk,
                    source
                );
            }
        }
    }
}
