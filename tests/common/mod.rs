//! Shared test support: a proptest generator of random — but always
//! terminating and well-formed — MiniC programs.
//!
//! The generated programs exercise scalars, a global array, a global
//! scalar, arithmetic/logical/comparison operators, nested `if`/`for`/
//! `while`, helper calls, and bounded recursion. Array indices are always
//! masked to the array size, loops always have fixed small bounds, and
//! recursion depth is capped, so every generated program halts on both the
//! VM and the reference interpreter.

use std::fmt::Write as _;

use proptest::prelude::*;

/// Binary operators the generator emits.
const BIN_OPS: [&str; 15] = [
    "+", "-", "*", "/", "%", "<<", ">>", "<", "<=", ">", ">=", "==", "!=", "&", "|",
];

/// A generated expression over the fixed variable environment.
#[derive(Clone, Debug)]
pub enum GenExpr {
    Lit(i32),
    /// One of the six pre-declared scalars `v0..v5`.
    Var(u8),
    /// The global scalar `gs`.
    Global,
    /// `g0[(e) & 15]`.
    Elem(Box<GenExpr>),
    Bin(usize, Box<GenExpr>, Box<GenExpr>),
    Neg(Box<GenExpr>),
    Not(Box<GenExpr>),
    /// `h1(e)`.
    H1(Box<GenExpr>),
    /// `h2(e, e)`.
    H2(Box<GenExpr>, Box<GenExpr>),
    /// `rec((e) & 7)` — bounded recursion.
    Rec(Box<GenExpr>),
    /// `e && e` / `e || e` (short-circuit).
    Logic(bool, Box<GenExpr>, Box<GenExpr>),
}

/// A generated statement.
#[derive(Clone, Debug)]
pub enum GenStmt {
    AssignVar(u8, GenExpr),
    AssignElem(GenExpr, GenExpr),
    AssignGlobal(GenExpr),
    If(GenExpr, Vec<GenStmt>, Vec<GenStmt>),
    /// `for` with a fixed bound 1..=5.
    For(u8, Vec<GenStmt>),
    /// `while` over a generated countdown, bound 1..=5.
    While(u8, Vec<GenStmt>),
}

pub fn arb_expr() -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        (-20i32..100).prop_map(GenExpr::Lit),
        (0u8..6).prop_map(GenExpr::Var),
        Just(GenExpr::Global),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| GenExpr::Elem(Box::new(e))),
            (0..BIN_OPS.len(), inner.clone(), inner.clone())
                .prop_map(|(op, l, r)| GenExpr::Bin(op, Box::new(l), Box::new(r))),
            inner.clone().prop_map(|e| GenExpr::Neg(Box::new(e))),
            inner.clone().prop_map(|e| GenExpr::Not(Box::new(e))),
            inner.clone().prop_map(|e| GenExpr::H1(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::H2(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| GenExpr::Rec(Box::new(e))),
            (any::<bool>(), inner.clone(), inner)
                .prop_map(|(and, l, r)| GenExpr::Logic(and, Box::new(l), Box::new(r))),
        ]
    })
}

pub fn arb_stmt() -> impl Strategy<Value = GenStmt> {
    let simple = prop_oneof![
        (0u8..6, arb_expr()).prop_map(|(v, e)| GenStmt::AssignVar(v, e)),
        (arb_expr(), arb_expr()).prop_map(|(i, e)| GenStmt::AssignElem(i, e)),
        arb_expr().prop_map(GenStmt::AssignGlobal),
    ];
    simple.prop_recursive(3, 16, 4, |inner| {
        let block = prop::collection::vec(inner.clone(), 1..4);
        prop_oneof![
            (arb_expr(), block.clone(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(c, t, e)| GenStmt::If(c, t, e)),
            (1u8..6, block.clone()).prop_map(|(n, b)| GenStmt::For(n, b)),
            (1u8..6, block).prop_map(|(n, b)| GenStmt::While(n, b)),
        ]
    })
}

/// A whole random program.
pub fn arb_program() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_stmt(), 1..8).prop_map(render_program)
}

fn render_expr(expr: &GenExpr, out: &mut String) {
    match expr {
        GenExpr::Lit(v) => {
            if *v < 0 {
                let _ = write!(out, "(0 - {})", -v);
            } else {
                let _ = write!(out, "{v}");
            }
        }
        GenExpr::Var(v) => {
            let _ = write!(out, "v{v}");
        }
        GenExpr::Global => out.push_str("gs"),
        GenExpr::Elem(index) => {
            out.push_str("g0[(");
            render_expr(index, out);
            out.push_str(") & 15]");
        }
        GenExpr::Bin(op, lhs, rhs) => {
            out.push('(');
            render_expr(lhs, out);
            let _ = write!(out, " {} ", BIN_OPS[*op]);
            // Mask shift amounts so both the VM (`& 31`) and a strict
            // reading agree.
            if BIN_OPS[*op] == "<<" || BIN_OPS[*op] == ">>" {
                out.push('(');
                render_expr(rhs, out);
                out.push_str(") & 15");
            } else {
                render_expr(rhs, out);
            }
            out.push(')');
        }
        GenExpr::Neg(e) => {
            out.push_str("(0 - (");
            render_expr(e, out);
            out.push_str("))");
        }
        GenExpr::Not(e) => {
            out.push_str("(!(");
            render_expr(e, out);
            out.push_str("))");
        }
        GenExpr::H1(e) => {
            out.push_str("h1(");
            render_expr(e, out);
            out.push(')');
        }
        GenExpr::H2(a, b) => {
            out.push_str("h2(");
            render_expr(a, out);
            out.push_str(", ");
            render_expr(b, out);
            out.push(')');
        }
        GenExpr::Rec(e) => {
            out.push_str("rec((");
            render_expr(e, out);
            out.push_str(") & 7)");
        }
        GenExpr::Logic(and, lhs, rhs) => {
            out.push('(');
            render_expr(lhs, out);
            out.push_str(if *and { " && " } else { " || " });
            render_expr(rhs, out);
            out.push(')');
        }
    }
}

fn render_stmt(stmt: &GenStmt, out: &mut String, indent: usize, fresh: &mut u32) {
    let pad = "    ".repeat(indent);
    match stmt {
        GenStmt::AssignVar(v, e) => {
            let _ = write!(out, "{pad}v{v} = ");
            render_expr(e, out);
            out.push_str(";\n");
        }
        GenStmt::AssignElem(index, e) => {
            let _ = write!(out, "{pad}g0[(");
            render_expr(index, out);
            out.push_str(") & 15] = ");
            render_expr(e, out);
            out.push_str(";\n");
        }
        GenStmt::AssignGlobal(e) => {
            let _ = write!(out, "{pad}gs = ");
            render_expr(e, out);
            out.push_str(";\n");
        }
        GenStmt::If(cond, then_blk, else_blk) => {
            let _ = write!(out, "{pad}if (");
            render_expr(cond, out);
            out.push_str(") {\n");
            for s in then_blk {
                render_stmt(s, out, indent + 1, fresh);
            }
            if else_blk.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_blk {
                    render_stmt(s, out, indent + 1, fresh);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        GenStmt::For(bound, body) => {
            let loop_var = *fresh;
            *fresh += 1;
            let _ = writeln!(
                out,
                "{pad}for (var L{loop_var}: int = 0; L{loop_var} < {bound}; L{loop_var} = L{loop_var} + 1) {{"
            );
            for s in body {
                render_stmt(s, out, indent + 1, fresh);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        GenStmt::While(bound, body) => {
            let loop_var = *fresh;
            *fresh += 1;
            let _ = writeln!(out, "{pad}var W{loop_var}: int = {bound};");
            let _ = writeln!(out, "{pad}while (W{loop_var} > 0) {{");
            let _ = writeln!(out, "{pad}    W{loop_var} = W{loop_var} - 1;");
            for s in body {
                render_stmt(s, out, indent + 1, fresh);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

fn render_program(stmts: Vec<GenStmt>) -> String {
    let mut out = String::from(
        "var gs: int = 5;\n\
         var g0: int[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};\n\
         fn h1(x: int) -> int { return x * 3 - 7; }\n\
         fn h2(x: int, y: int) -> int {\n\
             if (x > y) { return x - y; }\n\
             return y - x + g0[(x ^ y) & 15];\n\
         }\n\
         fn rec(n: int) -> int {\n\
             if (n <= 0) { return 1; }\n\
             return rec(n - 1) + n;\n\
         }\n\
         fn main() -> int {\n\
             var v0: int = 1;\n\
             var v1: int = 2;\n\
             var v2: int = 3;\n\
             var v3: int = 4;\n\
             var v4: int = 5;\n\
             var v5: int = 6;\n",
    );
    let mut fresh = 0;
    for stmt in &stmts {
        render_stmt(stmt, &mut out, 1, &mut fresh);
    }
    out.push_str(
        "    var acc: int = v0 + v1 * 3 + v2 * 5 + v3 * 7 + v4 * 11 + v5 * 13 + gs;\n\
         \u{20}   for (var k: int = 0; k < 16; k = k + 1) { acc = acc + g0[k] * (k + 1); }\n\
         \u{20}   return acc;\n\
         }\n",
    );
    out
}
