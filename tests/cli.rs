//! Integration tests for the `clfp` command-line binary.

use std::io::Write as _;
use std::process::Command;

fn clfp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_clfp"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("clfp-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut file = std::fs::File::create(&path).unwrap();
    file.write_all(content.as_bytes()).unwrap();
    path
}

const PROGRAM: &str = r#"
fn main() -> int {
    var s: int = 0;
    for (var i: int = 0; i < 100; i = i + 1) {
        if (i % 3 == 0) { s = s + i; }
    }
    return s;
}
"#;

#[test]
fn help_lists_commands() {
    let output = clfp().arg("help").output().unwrap();
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    for command in ["compile", "disasm", "run", "trace", "analyze", "lint", "workloads"] {
        assert!(text.contains(command), "help missing `{command}`");
    }
}

#[test]
fn lint_reports_and_exits_by_severity() {
    // The toy program is clean of errors but trips the MiniC codegen
    // lints (unreachable fallback return): exit 0, findings printed.
    let path = write_temp("lint.mc", PROGRAM);
    let output = clfp()
        .arg("lint")
        .arg(&path)
        .args(["--max-instr", "50000"])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("0 error(s)"), "{text}");

    // JSON mode emits one object per diagnostic.
    let output = clfp()
        .args(["lint", "--workload", "qsort", "--max-instr", "30000", "--json"])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.trim_start().starts_with('['), "{text}");
    assert!(text.contains("\"kind\""), "{text}");
    assert!(text.contains("\"severity\""), "{text}");
    assert!(!text.contains("\"severity\": \"error\""), "{text}");

    // --static-only skips the trace cross-checks but still lints.
    let output = clfp()
        .args(["lint", "--workload", "scan", "--static-only"])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
}

#[test]
fn run_prints_result() {
    let path = write_temp("run.mc", PROGRAM);
    let output = clfp().arg("run").arg(&path).output().unwrap();
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    // sum of multiples of 3 below 100 = 1683.
    assert!(text.contains("result (v0) = 1683"), "{text}");
    assert!(text.contains("Halted"));
}

#[test]
fn compile_emits_assembly() {
    let path = write_temp("compile.mc", PROGRAM);
    let output = clfp().arg("compile").arg(&path).output().unwrap();
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("mc_main:"));
    assert!(text.contains("addi sp, sp, -"));
}

#[test]
fn compile_with_if_conversion_emits_cmov() {
    let path = write_temp("ifc.mc", PROGRAM);
    let output = clfp()
        .args(["compile", "--if-convert"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("cmovn"), "expected guarded move in:\n{text}");
}

#[test]
fn analyze_reports_all_machines() {
    let path = write_temp("analyze.mc", PROGRAM);
    let output = clfp()
        .args(["analyze"])
        .arg(&path)
        .args(["--max-instr", "50000"])
        .output()
        .unwrap();
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    for machine in ["BASE", "CD-MF", "SP-CD-MF", "ORACLE"] {
        assert!(text.contains(machine), "missing {machine} in:\n{text}");
    }
    assert!(text.contains("mispredictions"));
}

#[test]
fn analyze_by_workload_name() {
    let output = clfp()
        .args(["analyze", "--workload", "qsort", "--max-instr", "30000"])
        .output()
        .unwrap();
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("ORACLE"));
}

#[test]
fn trace_roundtrip_via_files() {
    let path = write_temp("trace.mc", PROGRAM);
    let trc = path.with_extension("trc");
    let output = clfp()
        .arg("trace")
        .arg(&path)
        .arg("-o")
        .arg(&trc)
        .output()
        .unwrap();
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("wrote"), "{text}");

    let output = clfp()
        .arg("analyze")
        .arg(&path)
        .arg("--trace")
        .arg(&trc)
        .output()
        .unwrap();
    assert!(output.status.success());

    // A different program must reject the trace.
    let other = write_temp("other.mc", "fn main() -> int { return 1; }");
    let output = clfp()
        .arg("analyze")
        .arg(&other)
        .arg("--trace")
        .arg(&trc)
        .output()
        .unwrap();
    assert!(!output.status.success());
    let text = String::from_utf8(output.stderr).unwrap();
    assert!(text.contains("different program"), "{text}");
}

#[test]
fn workloads_lists_the_suite() {
    let output = clfp().arg("workloads").output().unwrap();
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    for name in ["scan", "qsort", "stencil"] {
        assert!(text.contains(name));
    }
}

#[test]
fn errors_are_reported_not_panicked() {
    let output = clfp().arg("analyze").arg("/nonexistent.mc").output().unwrap();
    assert!(!output.status.success());
    let text = String::from_utf8(output.stderr).unwrap();
    assert!(text.contains("cannot read"));

    let bad = write_temp("bad.mc", "fn main( { return 0; }");
    let output = clfp().arg("compile").arg(&bad).output().unwrap();
    assert!(!output.status.success());
    let text = String::from_utf8(output.stderr).unwrap();
    assert!(text.contains("minic error"), "{text}");

    let output = clfp().arg("frobnicate").output().unwrap();
    assert!(!output.status.success());
}

#[test]
fn disasm_shows_labels() {
    let path = write_temp("disasm.mc", PROGRAM);
    let output = clfp().arg("disasm").arg(&path).output().unwrap();
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("__start:"));
    assert!(text.contains("mc_main:"));
}
