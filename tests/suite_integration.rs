//! End-to-end integration of the full pipeline on real workloads:
//! compile → trace → static analysis → all seven machine models, with
//! assertions on the qualitative results the paper reports.

use clfp::limits::{AnalysisConfig, Analyzer, MachineKind, PredictorChoice, Report};
use clfp::workloads::{by_name, suite, WorkloadClass};

fn analyze(name: &str, config: AnalysisConfig) -> Report {
    let workload = by_name(name).expect("known workload");
    let program = workload.compile().expect("suite compiles");
    Analyzer::new(&program, config)
        .expect("analyzer")
        .run()
        .expect("analysis")
}

fn quick() -> AnalysisConfig {
    AnalysisConfig {
        max_instrs: 150_000,
        ..AnalysisConfig::default()
    }
}

#[test]
fn hierarchy_holds_for_every_workload() {
    for workload in suite() {
        let report = analyze(workload.name, quick());
        for kind in MachineKind::ALL {
            for &weaker in kind.dominates() {
                assert!(
                    report.parallelism(weaker) <= report.parallelism(kind) + 1e-9,
                    "{}: {} ({:.2}) > {} ({:.2})",
                    workload.name,
                    weaker,
                    report.parallelism(weaker),
                    kind,
                    report.parallelism(kind)
                );
            }
        }
    }
}

#[test]
fn base_machine_parallelism_is_modest_on_non_numeric() {
    // The paper's BASE harmonic mean is 2.14: branch-bound code clusters
    // in the low single digits.
    for workload in suite() {
        if workload.class != WorkloadClass::NonNumeric {
            continue;
        }
        let report = analyze(
            workload.name,
            AnalysisConfig {
                machines: vec![MachineKind::Base],
                ..quick()
            },
        );
        let base = report.parallelism(MachineKind::Base);
        assert!(
            (1.0..10.0).contains(&base),
            "{}: BASE parallelism {base:.2} outside the expected band",
            workload.name
        );
    }
}

#[test]
fn cd_alone_is_a_small_win() {
    // Paper Section 5.1: CD barely beats BASE because branches stay
    // ordered. Full traces are needed — short prefixes sit in the input
    // generators, which are unusually branch-light.
    for name in ["scan", "logic", "qsort"] {
        let report = analyze(
            name,
            AnalysisConfig {
                machines: vec![MachineKind::Base, MachineKind::Cd],
                max_instrs: 1_500_000,
                ..AnalysisConfig::default()
            },
        );
        let ratio =
            report.parallelism(MachineKind::Cd) / report.parallelism(MachineKind::Base);
        assert!(
            (1.0..4.0).contains(&ratio),
            "{name}: CD/BASE ratio {ratio:.2} outside the paper's band"
        );
    }
}

#[test]
fn data_independent_control_flow_is_the_predictor_of_parallelism() {
    // Paper Section 5.3: matmul/stencil (data-independent control) show
    // orders of magnitude more CD-MF parallelism than the data-dependent
    // programs; the spice analogue behaves like the non-numeric group in
    // its BASE..SP columns.
    let stencil = analyze("stencil", quick());
    let logic = analyze("logic", quick());
    assert!(
        stencil.parallelism(MachineKind::CdMf) > 20.0 * logic.parallelism(MachineKind::CdMf),
        "stencil CD-MF {:.1} should dwarf logic CD-MF {:.1}",
        stencil.parallelism(MachineKind::CdMf),
        logic.parallelism(MachineKind::CdMf)
    );
    let sparse = analyze("sparse", quick());
    assert!(
        sparse.parallelism(MachineKind::Base) < 8.0,
        "sparse (spice-like) BASE should look non-numeric, got {:.2}",
        sparse.parallelism(MachineKind::Base)
    );
}

#[test]
fn speculation_is_needed_on_data_dependent_control() {
    // Paper Section 5.2/conclusion: without speculation (CD-MF ceiling),
    // data-dependent programs are far from ORACLE; speculation (SP-CD-MF)
    // closes most of the gap.
    let report = analyze("logic", quick());
    let cdmf = report.parallelism(MachineKind::CdMf);
    let spcdmf = report.parallelism(MachineKind::SpCdMf);
    let oracle = report.parallelism(MachineKind::Oracle);
    assert!(
        spcdmf > 3.0 * cdmf,
        "speculation should multiply logic's parallelism: CD-MF {cdmf:.1} vs SP-CD-MF {spcdmf:.1}"
    );
    assert!(spcdmf <= oracle + 1e-9);
}

#[test]
fn better_predictors_help_sp_machines() {
    let config = |predictor| AnalysisConfig {
        machines: vec![MachineKind::Sp],
        predictor,
        max_instrs: 1_000_000,
        ..AnalysisConfig::default()
    };
    let profile = analyze("logic", config(PredictorChoice::Profile));
    let naive = analyze("logic", config(PredictorChoice::AlwaysTaken));
    assert!(
        profile.branches.prediction_rate() > naive.branches.prediction_rate(),
        "profile accuracy {:.1}% should beat always-taken {:.1}%",
        profile.branches.prediction_rate(),
        naive.branches.prediction_rate()
    );
    assert!(
        profile.parallelism(MachineKind::Sp) > naive.parallelism(MachineKind::Sp),
        "profile {:.2} should beat always-taken {:.2}",
        profile.parallelism(MachineKind::Sp),
        naive.parallelism(MachineKind::Sp)
    );
}

#[test]
fn oracle_is_insensitive_to_the_predictor() {
    for predictor in [PredictorChoice::Profile, PredictorChoice::AlwaysTaken] {
        let report = analyze(
            "qsort",
            AnalysisConfig {
                machines: vec![MachineKind::Oracle, MachineKind::Base, MachineKind::CdMf],
                predictor,
                ..quick()
            },
        );
        // Non-speculative machines and ORACLE never consult the predictor;
        // pin the exact cycle counts so predictor leakage would show up.
        let oracle = report.result(MachineKind::Oracle).unwrap().cycles;
        let base = report.result(MachineKind::Base).unwrap().cycles;
        let reference = analyze(
            "qsort",
            AnalysisConfig {
                machines: vec![MachineKind::Oracle, MachineKind::Base, MachineKind::CdMf],
                ..quick()
            },
        );
        assert_eq!(oracle, reference.result(MachineKind::Oracle).unwrap().cycles);
        assert_eq!(base, reference.result(MachineKind::Base).unwrap().cycles);
    }
}

#[test]
fn misprediction_distances_are_short_on_non_numeric() {
    // Paper Figure 6: over 80% of mispredictions within 100 instructions.
    for name in ["scan", "logic", "qsort"] {
        let report = analyze(name, quick());
        let stats = report.mispred_stats.expect("SP ran");
        assert!(
            stats.fraction_within(100) > 0.6,
            "{name}: only {:.0}% of mispredictions within 100 instrs",
            stats.fraction_within(100) * 100.0
        );
    }
}

#[test]
fn longer_segments_carry_more_parallelism() {
    // Paper Figure 7: harmonic-mean parallelism grows with misprediction
    // distance. Compare the small-distance and large-distance halves.
    let report = analyze("qsort", quick());
    let stats = report.mispred_stats.expect("SP ran");
    let buckets = stats.parallelism_by_distance();
    assert!(buckets.len() >= 3, "need several distance buckets");
    let first = buckets.first().unwrap();
    let last_meaningful = buckets
        .iter()
        .rev()
        .find(|&&(_, _, count)| count >= 10)
        .unwrap();
    assert!(
        last_meaningful.1 > first.1,
        "parallelism should grow with distance: {buckets:?}"
    );
}

#[test]
fn seq_instrs_shrink_under_unrolling_on_loop_code() {
    // The full trace is needed to reach the dense multiply kernel.
    let full = AnalysisConfig {
        max_instrs: 2_000_000,
        ..AnalysisConfig::default()
    };
    let on = analyze("matmul", full.clone().with_unrolling(true));
    let off = analyze("matmul", full.with_unrolling(false));
    assert!(on.seq_instrs < off.seq_instrs);
    // matmul's Table 4 signature: unrolling multiplies BASE parallelism.
    assert!(
        on.parallelism(MachineKind::Base) > 3.0 * off.parallelism(MachineKind::Base),
        "unrolled BASE {:.1} vs rolled {:.1}",
        on.parallelism(MachineKind::Base),
        off.parallelism(MachineKind::Base)
    );
}
