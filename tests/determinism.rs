//! Determinism guarantees: tracing, analysis, and compilation are pure
//! functions of their inputs. This is what makes the published tables
//! reproducible bit-for-bit and the trace-file workflow sound.

use clfp::limits::{AnalysisConfig, Analyzer, MachineKind};
use clfp::vm::{Vm, VmOptions};
use clfp::workloads::by_name;

#[test]
fn tracing_is_deterministic() {
    let program = by_name("logic").unwrap().compile().unwrap();
    let trace = |()| {
        let mut vm = Vm::new(&program, VmOptions::default());
        vm.trace(50_000).unwrap()
    };
    let a = trace(());
    let b = trace(());
    assert_eq!(a.events(), b.events());
}

#[test]
fn compilation_is_deterministic() {
    let workload = by_name("eventsim").unwrap();
    let a = workload.compile().unwrap();
    let b = workload.compile().unwrap();
    assert_eq!(a.text, b.text);
    assert_eq!(a.data, b.data);
    assert_eq!(a.entry, b.entry);
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn analysis_is_deterministic_and_trace_replay_matches_live() {
    let program = by_name("scan").unwrap().compile().unwrap();
    let config = AnalysisConfig {
        max_instrs: 60_000,
        ..AnalysisConfig::default()
    };
    let analyzer = Analyzer::new(&program, config.clone()).unwrap();
    let live = analyzer.run().unwrap();
    let again = analyzer.run().unwrap();
    for kind in MachineKind::ALL {
        assert_eq!(
            live.result(kind).unwrap().cycles,
            again.result(kind).unwrap().cycles,
            "{kind} not deterministic"
        );
    }

    // Replaying a saved trace must reproduce the live analysis exactly.
    let mut vm = Vm::new(&program, VmOptions::default());
    let trace = vm.trace(config.max_instrs).unwrap();
    let mut buffer = Vec::new();
    trace.write_to(&program, &mut buffer).unwrap();
    let replayed = clfp::vm::Trace::read_from(&program, buffer.as_slice()).unwrap();
    let from_replay = analyzer.run_on_trace(&replayed);
    for kind in MachineKind::ALL {
        assert_eq!(
            live.result(kind).unwrap().cycles,
            from_replay.result(kind).unwrap().cycles,
            "{kind} differs on replayed trace"
        );
    }
    assert_eq!(live.seq_instrs, from_replay.seq_instrs);
    assert_eq!(
        live.branches.predicted_correctly,
        from_replay.branches.predicted_correctly
    );
}

#[test]
fn schedules_are_deterministic_across_analyzer_instances() {
    let program = by_name("parse").unwrap().compile().unwrap();
    let config = AnalysisConfig {
        max_instrs: 40_000,
        ..AnalysisConfig::default()
    };
    let mut vm = Vm::new(&program, VmOptions::default());
    let trace = vm.trace(config.max_instrs).unwrap();
    let a = Analyzer::new(&program, config.clone()).unwrap();
    let b = Analyzer::new(&program, config).unwrap();
    for kind in [MachineKind::SpCdMf, MachineKind::Cd] {
        assert_eq!(a.schedule(&trace, kind), b.schedule(&trace, kind));
    }
}
