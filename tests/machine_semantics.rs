//! Targeted golden tests for the subtlest machine-model semantics:
//! mispredicted-branch ordering (SP-CD vs SP-CD-MF), interprocedural
//! control-dependence inheritance through the call stack, and the paper's
//! recursion cutoff (Section 4.4.1/4.4.2).

use clfp::isa::assemble;
use clfp::limits::{AnalysisConfig, Analyzer, MachineKind};
use clfp::vm::{Trace, Vm, VmOptions};

fn trace_of(program: &clfp::isa::Program) -> Trace {
    let mut vm = Vm::new(program, VmOptions { mem_words: 1 << 16 });
    vm.trace(100_000).unwrap()
}

/// Two *independent* data-dependent branches that both mispredict: SP-CD
/// must resolve them one per cycle (single flow of control), SP-CD-MF in
/// parallel (multiple flows).
#[test]
fn mispredicted_branch_ordering_distinguishes_mf() {
    // flags arrays chosen so each branch alternates (profile accuracy 50%,
    // ties predict taken, so not-taken instances mispredict).
    let source = r#"
        .data
    fa: .word 1, 0, 1, 0, 1, 0, 1, 0
    fb: .word 0, 1, 0, 1, 0, 1, 0, 1
        .text
    main:
        li r8, 0
        li r9, 8
        li r10, 4096        # fa
        li r11, 4128        # fb
        li r12, 0
        li r13, 0
    loop:
        lw r14, 0(r10)
        beq r14, r0, s1     # independent mispredicting branch A
        addi r12, r12, 1
    s1:
        lw r15, 0(r11)
        beq r15, r0, s2     # independent mispredicting branch B
        addi r13, r13, 1
    s2:
        addi r10, r10, 4
        addi r11, r11, 4
        addi r8, r8, 1
        blt r8, r9, loop
        halt
    "#;
    let program = assemble(source).unwrap();
    let trace = trace_of(&program);
    let analyzer = Analyzer::new(&program, AnalysisConfig::default()).unwrap();

    let spcd = analyzer.schedule(&trace, MachineKind::SpCd);
    let spcdmf = analyzer.schedule(&trace, MachineKind::SpCdMf);

    // Collect execution times of the two branch kinds (pcs 7 and 10).
    let branch_a_pc = 7;
    let branch_b_pc = 10;
    let times = |schedule: &[u64], pc: u32| -> Vec<u64> {
        trace
            .iter()
            .enumerate()
            .filter(|(_, e)| e.pc == pc)
            .map(|(i, _)| schedule[i])
            .collect()
    };
    // Under SP-CD, ALL mispredicted branches are totally ordered: the
    // merged sorted time sequence must be strictly increasing.
    let mut spcd_all: Vec<u64> = times(&spcd, branch_a_pc);
    spcd_all.extend(times(&spcd, branch_b_pc));
    spcd_all.sort_unstable();
    // Mispredictions are half of each branch's instances (alternating).
    // Their times must be pairwise distinct under SP-CD ordering.
    let distinct = {
        let mut v = spcd_all.clone();
        v.dedup();
        v.len()
    };
    // With 8 correctly-predicted (free) and 8 mispredicted instances,
    // at least the mispredicted ones are distinct: >= 8 distinct times.
    assert!(distinct >= 8, "SP-CD branch times too clustered: {spcd_all:?}");

    // SP-CD-MF finishes strictly faster overall.
    let spcd_max = spcd.iter().max().unwrap();
    let spcdmf_max = spcdmf.iter().max().unwrap();
    assert!(
        spcdmf_max < spcd_max,
        "SP-CD-MF ({spcdmf_max}) must beat SP-CD ({spcd_max}) when independent \
         branches mispredict"
    );
}

/// Interprocedural control dependence: a call inside a conditional makes
/// the *callee's* instructions control dependent on the caller's branch
/// (inherited through the stack).
#[test]
fn callee_inherits_call_site_control_dependence() {
    let source = r#"
        .data
    flag: .word 5
        .text
    main:
        li r8, 1
        lw r9, 0x1000(r0)    # data load the branch depends on (nonzero)
        beq r9, r0, skip     # pc 2: the controlling branch (not taken)
        call work            # pc 3
    skip:
        halt                 # pc 4
    work:
        li r10, 7            # pc 5: control dependent on pc 2, inherited
        ret                  # pc 6
    "#;
    let program = assemble(source).unwrap();
    let trace = trace_of(&program);
    let analyzer = Analyzer::new(&program, AnalysisConfig::default()).unwrap();
    let cd = analyzer.schedule(&trace, MachineKind::CdMf);
    let oracle = analyzer.schedule(&trace, MachineKind::Oracle);

    // Find the callee's `li r10, 7` event.
    let li_event = trace.iter().position(|e| e.pc == 5).expect("work executed");
    let branch_event = trace.iter().position(|e| e.pc == 2).unwrap();
    // Under CD-MF the callee instruction waits for the branch (+1); under
    // ORACLE it executes at cycle 1.
    assert_eq!(oracle[li_event], 1);
    assert_eq!(
        cd[li_event],
        cd[branch_event] + 1,
        "callee must inherit the call site's control dependence"
    );
    // The branch itself waits on the load chain: lw at 1, beq at 2.
    assert_eq!(cd[branch_event], 2);
}

/// The recursion cutoff: when a branch instance in the reverse dominance
/// frontier comes from a *newer* invocation (recursion), the paper drops
/// the control dependence — the analysis stays an upper bound and must
/// never deadlock or over-constrain.
#[test]
fn recursion_cutoff_is_upper_bound() {
    let source = r#"
        .text
    main:
        li a0, 6
        call fact
        halt
    fact:
        addi sp, sp, -8
        sw ra, 0(sp)
        sw a0, 4(sp)
        li v0, 1
        ble a0, r0, base     # the branch in fact's RDF
        addi a0, a0, -1
        call fact            # recursive: newer instance of the same branch
        lw a0, 4(sp)
        mul v0, v0, a0
    base:
        lw ra, 0(sp)
        addi sp, sp, 8
        ret
    "#;
    let program = assemble(source).unwrap();
    let analyzer = Analyzer::new(&program, AnalysisConfig::default()).unwrap();
    let report = analyzer.run().unwrap();
    // All machines terminate with sane results and the hierarchy holds.
    for kind in MachineKind::ALL {
        let result = report.result(kind).unwrap();
        assert!(result.cycles >= 1);
        for &weaker in kind.dominates() {
            assert!(
                report.parallelism(weaker) <= report.parallelism(kind) + 1e-9,
                "{weaker} > {kind} on recursive factorial"
            );
        }
    }
    // The multiply chain is real: ORACLE cannot collapse factorial below
    // its data-dependence depth (6 multiplies in sequence).
    let oracle_cycles = report.result(MachineKind::Oracle).unwrap().cycles;
    assert!(oracle_cycles >= 6, "factorial chain too short: {oracle_cycles}");
}

/// Perfect unrolling deletes a loop branch, but instructions control
/// dependent on it must *inherit the deleted branch's own constraint*
/// (the pass-through rule) — not become unconstrained, and not wait for a
/// nonexistent instruction.
#[test]
fn unrolled_branch_passes_its_constraint_through() {
    // The outer branch is data dependent (survives); the inner loop branch
    // is induction-based (deleted by unrolling). The loop body's CD chain
    // is body -> inner branch (deleted) -> pass-through -> outer branch.
    let source = r#"
        .data
    flag: .word 3
        .text
    main:
        lw r9, 0x1000(r0)    # pc 0
        beq r9, r0, done     # pc 1: surviving data branch (not taken)
        li r8, 0             # pc 2
        li r10, 4            # pc 3
    loop:
        add r11, r11, r9     # pc 4: loop body (variable increment, kept —
                             #       a constant one would itself be an
                             #       induction update and get deleted)
        addi r8, r8, 1       # pc 5: induction (deleted)
        blt r8, r10, loop    # pc 6: loop branch (deleted)
    done:
        halt                 # pc 7
    "#;
    let program = assemble(source).unwrap();
    let trace = trace_of(&program);
    let analyzer = Analyzer::new(&program, AnalysisConfig::default()).unwrap();
    let cd = analyzer.schedule(&trace, MachineKind::CdMf);

    let outer_branch = trace.iter().position(|e| e.pc == 1).unwrap();
    assert_eq!(cd[outer_branch], 2, "beq waits for its load");
    // Every loop-body instance: the first iteration is control dependent
    // on the outer branch directly; later iterations' immediate CD is the
    // *deleted* loop branch, whose pass-through constraint is... also the
    // outer branch. So all bodies wait exactly for beq + 1 (their r11
    // chain dominates afterwards).
    let body_times: Vec<u64> = trace
        .iter()
        .enumerate()
        .filter(|(_, e)| e.pc == 4)
        .map(|(i, _)| cd[i])
        .collect();
    assert_eq!(body_times.len(), 4);
    // First body: max(ctl = beq+1 = 3, data: li r11? r11 starts at 0 -> 1)
    assert_eq!(body_times[0], 3);
    // Later bodies chain on r11 data (one apart), NOT on any branch.
    assert_eq!(body_times, vec![3, 4, 5, 6]);
    // And the deleted instructions never execute.
    for (i, event) in trace.iter().enumerate() {
        if event.pc == 5 || event.pc == 6 {
            assert_eq!(cd[i], 0, "deleted instruction scheduled at event {i}");
        }
    }
}

/// Correctly predicted branches are free under SP — even when the machine
/// is otherwise constrained — but still constrain BASE.
#[test]
fn correct_predictions_cost_nothing_under_sp() {
    let source = r#"
        .text
    main:
        li r8, 16
    loop:
        addi r8, r8, -1
        bgt r8, r0, loop    # taken 15/16: profile predicts taken
        halt
    "#;
    let program = assemble(source).unwrap();
    let trace = trace_of(&program);
    // Unrolling would delete this counted loop entirely; the point here is
    // the branches themselves, so turn it off.
    let config = AnalysisConfig::default().with_unrolling(false);
    let analyzer = Analyzer::new(&program, config).unwrap();
    let sp = analyzer.schedule(&trace, MachineKind::Sp);
    let base = analyzer.schedule(&trace, MachineKind::Base);
    // The final not-taken instance mispredicts; every taken instance is
    // free. Under SP, the halt waits only for that one misprediction.
    let halt_event = trace.iter().position(|e| {
        matches!(
            program.text[e.pc as usize],
            clfp::isa::Instr::Halt
        )
    })
    .unwrap();
    // Branch exec times: data chain addi_k at k+1, branch_k at k+2... the
    // mispredicted final branch resolves at ~17; halt right after.
    assert!(sp[halt_event] <= 19, "sp halt at {}", sp[halt_event]);
    assert!(
        base[halt_event] > sp[halt_event],
        "BASE must serialize behind every branch"
    );
}
