//! Golden tests for the machine models on a hand-analyzable flow graph —
//! the reproduction of the paper's Figure 2/3 worked example.
//!
//! The program (all data dependences chosen to be trivial, as in the
//! paper's example) is:
//!
//! ```text
//!  0  li   r10, flags
//!  1  li   r8, 0          i = 0
//!  2  li   r9, 8          n = 8
//!  3  li   r11, 0
//!  4  lw   r13, 0(r10)    ┐ loop body: load flag
//!  5  beq  r13, r0, skip  │ data-dependent branch
//!  6  addi r11, r11, 1    │ guarded increment
//!  7  addi r10, r10, 4    │ pointer bump  (induction, unrolled away)
//!  8  addi r8, r8, 1      │ i++           (induction, unrolled away)
//!  9  blt  r8, r9, loop   ┘ loop branch   (induction, unrolled away)
//! 10  li   r12, 100       control-independent tail
//! 11  addi r12, r12, 5
//! 12  halt
//! ```
//!
//! flags = [1,0,1,1,0,1,0,0]: the profile predicts the majority direction
//! (not-taken = flag nonzero... the branch tests `flag == 0`), so
//! iterations with flag == 0 (taken, 4 of 8) and flag != 0 (4 of 8) split
//! evenly; the profile breaks the tie predicting taken, so the four
//! `flag != 0` iterations mispredict.

use clfp::isa::assemble;
use clfp::limits::{AnalysisConfig, Analyzer, MachineKind};
use clfp::vm::{Vm, VmOptions};

const SOURCE: &str = r#"
    .data
flags: .word 1, 0, 1, 1, 0, 1, 0, 0
    .text
main:
    li   r10, flags
    li   r8, 0
    li   r9, 8
    li   r11, 0
loop:
    lw   r13, 0(r10)
    beq  r13, r0, skip
    addi r11, r11, 1
skip:
    addi r10, r10, 4
    addi r8, r8, 1
    blt  r8, r9, loop
tail:
    li   r12, 100
    addi r12, r12, 5
    halt
"#;

fn schedules() -> (Vec<clfp::vm::TraceEvent>, Vec<(MachineKind, Vec<u64>)>) {
    let program = assemble(SOURCE).unwrap();
    let mut vm = Vm::new(&program, VmOptions { mem_words: 1 << 16 });
    let trace = vm.trace(10_000).unwrap();
    let analyzer = Analyzer::new(&program, AnalysisConfig::default()).unwrap();
    let all = MachineKind::ALL
        .iter()
        .map(|&kind| (kind, analyzer.schedule(&trace, kind)))
        .collect();
    (trace.events().to_vec(), all)
}

fn schedule_for(
    all: &[(MachineKind, Vec<u64>)],
    kind: MachineKind,
) -> &[u64] {
    &all.iter().find(|(k, _)| *k == kind).unwrap().1
}

#[test]
fn oracle_schedule_is_data_depth() {
    let (events, all) = schedules();
    let oracle = schedule_for(&all, MachineKind::Oracle);
    // Setup lis at cycle 1; every load at 2 (its pointer is unrolled
    // away); every beq at 3; the guarded increments r11 form the only real
    // chain: li(1) -> +1(2) -> +1(3) -> +1(4) -> +1(5).
    let program = assemble(SOURCE).unwrap();
    let mut increments = Vec::new();
    for (i, event) in events.iter().enumerate() {
        match event.pc {
            0..=3 => assert_eq!(oracle[i], 1, "setup li at event {i}"),
            4 => assert_eq!(oracle[i], 2, "load at event {i}"),
            5 => assert_eq!(oracle[i], 3, "beq at event {i}"),
            6 => increments.push(oracle[i]),
            7..=9 => assert_eq!(oracle[i], 0, "unrolled overhead at event {i}"),
            10 => assert_eq!(oracle[i], 1, "tail li"),
            11 => assert_eq!(oracle[i], 2, "tail addi"),
            12 => assert_eq!(oracle[i], 1, "halt"),
            other => panic!("unexpected pc {other}"),
        }
    }
    let _ = program;
    assert_eq!(increments, vec![2, 3, 4, 5], "r11 chain");
}

#[test]
fn base_serializes_behind_every_branch() {
    let (events, all) = schedules();
    let base = schedule_for(&all, MachineKind::Base);
    // The only surviving branch is the beq (the loop branch is unrolled
    // away). Per iteration: lw waits the previous beq, beq waits its lw.
    // beq_k = 2k+3, lw_k = 2k+2 (k = 0..7).
    let mut iteration = 0u64;
    for (i, event) in events.iter().enumerate() {
        match event.pc {
            4 => assert_eq!(base[i], 2 * iteration + 2, "lw of iteration {iteration}"),
            5 => {
                assert_eq!(base[i], 2 * iteration + 3, "beq of iteration {iteration}");
                iteration += 1;
            }
            _ => {}
        }
    }
    assert_eq!(iteration, 8);
    // The tail executes after the last beq (cycle 17): at 18 and 19.
    let tail_li = events.iter().position(|e| e.pc == 10).unwrap();
    assert_eq!(base[tail_li], 18);
    assert_eq!(base[tail_li + 1], 19);
}

#[test]
fn cd_frees_the_control_independent_tail() {
    let (events, all) = schedules();
    let cd = schedule_for(&all, MachineKind::Cd);
    // The tail is control independent of the loop: with CD analysis it no
    // longer waits for the loop's branches.
    let tail_li = events.iter().position(|e| e.pc == 10).unwrap();
    assert_eq!(cd[tail_li], 1, "tail li is control independent");
    assert_eq!(cd[tail_li + 1], 2);
    // But branches still execute in order: beq_k at 2k+3 as in BASE
    // (each waits for its own load, which waits for nothing: loads are at
    // cycle 2 once CD removes the false ordering... the branch *ordering*
    // constraint still chains them 1 apart).
    let beq_times: Vec<u64> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.pc == 5)
        .map(|(i, _)| cd[i])
        .collect();
    for pair in beq_times.windows(2) {
        assert!(pair[1] > pair[0], "CD branches must be ordered: {beq_times:?}");
    }
}

#[test]
fn cd_mf_runs_iterations_concurrently() {
    let (events, all) = schedules();
    let cdmf = schedule_for(&all, MachineKind::CdMf);
    // Without branch ordering, every iteration's load is at cycle 2 and
    // every beq at 3 (loads are independent; each iteration's CD comes
    // from the *unrolled* loop branch, which passes through freely).
    for (i, event) in events.iter().enumerate() {
        match event.pc {
            4 => assert_eq!(cdmf[i], 2),
            5 => assert_eq!(cdmf[i], 3),
            _ => {}
        }
    }
}

#[test]
fn sp_stalls_only_on_mispredictions() {
    let (events, all) = schedules();
    let sp = schedule_for(&all, MachineKind::Sp);
    let oracle = schedule_for(&all, MachineKind::Oracle);
    // flags [1,0,1,1,0,1,0,0]: the beq (taken when flag==0) is taken 4/8
    // times; ties predict taken, so `flag != 0` iterations (0,2,3,5)
    // mispredict. Each misprediction is a scheduling barrier; with 4
    // mispredictions SP needs strictly more cycles than ORACLE but far
    // fewer than BASE.
    let base = schedule_for(&all, MachineKind::Base);
    let sp_max = sp.iter().max().unwrap();
    let oracle_max = oracle.iter().max().unwrap();
    let base_max = base.iter().max().unwrap();
    assert!(sp_max > oracle_max, "SP {sp_max} vs ORACLE {oracle_max}");
    assert!(sp_max < base_max, "SP {sp_max} vs BASE {base_max}");
    // Instructions before the first misprediction run at their data times.
    let first_lw = events.iter().position(|e| e.pc == 4).unwrap();
    assert_eq!(sp[first_lw], 2);
}

#[test]
fn sp_cd_mf_matches_oracle_except_wrong_path_joins() {
    let (_, all) = schedules();
    let spcdmf = schedule_for(&all, MachineKind::SpCdMf);
    let oracle = schedule_for(&all, MachineKind::Oracle);
    // The paper's point about SP-CD-MF vs ORACLE: the only difference is
    // instructions control-dependent on mispredicted branches (they wait
    // for the misprediction to resolve). Everything else matches ORACLE.
    for (i, (&s, &o)) in spcdmf.iter().zip(oracle).enumerate() {
        assert!(s >= o, "event {i}");
    }
    let slower: usize = spcdmf
        .iter()
        .zip(oracle)
        .filter(|&(&s, &o)| s > o)
        .count();
    // Only the guarded increments on mispredicted iterations (and nothing
    // else) may be delayed.
    assert!(slower <= 8, "{slower} events slower than ORACLE");
}

#[test]
fn parallelism_summary_matches_hand_computation() {
    let program = assemble(SOURCE).unwrap();
    let analyzer = Analyzer::new(&program, AnalysisConfig::default()).unwrap();
    let report = analyzer.run().unwrap();
    // Non-ignored instructions: 4 setup + 8 loads + 8 beqs + 4 increments
    // + 2 tail + 1 halt = 27.
    assert_eq!(report.seq_instrs, 27);
    // ORACLE critical path: the r11 chain li(1) + 4 increments = 5 cycles.
    assert_eq!(report.result(MachineKind::Oracle).unwrap().cycles, 5);
    // BASE: 8 iterations x 2 + tail = 19 cycles.
    assert_eq!(report.result(MachineKind::Base).unwrap().cycles, 19);
}
