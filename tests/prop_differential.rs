//! Property test: on randomly generated MiniC programs, the compiled code
//! executed by the VM and the reference AST interpreter must agree on the
//! result of `main` and on the final contents of the globals.
//!
//! This pins down the entire toolchain — lexer, parser, sema, codegen,
//! assembler, VM, interpreter — against itself: a code-generation bug and
//! an interpreter bug would have to coincide exactly to slip through.

// Requires the external `proptest` crate: gated off by default so the
// workspace builds and tests fully offline. Enable with
// `--features external-tests` after restoring the proptest dev-dependency.
#![cfg(feature = "external-tests")]

mod common;

use clfp::isa::{Reg, DATA_BASE};
use clfp::lang::{compile, compile_with_options, interpret_source, CodegenOptions};
use clfp::vm::{Vm, VmOptions};
use common::arb_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn compiled_matches_interpreted(source in arb_program()) {
        let program = compile(&source)
            .unwrap_or_else(|err| panic!("compile failed: {err}\n{source}"));
        let mut vm = Vm::new(&program, VmOptions { mem_words: 1 << 20 });
        vm.run(50_000_000)
            .unwrap_or_else(|err| panic!("vm failed: {err}\n{source}"));
        prop_assert!(vm.halted(), "program did not halt:\n{source}");
        let compiled = vm.reg(Reg::V0);

        let outcome = interpret_source(&source, 500_000_000)
            .unwrap_or_else(|err| panic!("interp failed: {err}\n{source}"));
        prop_assert_eq!(
            compiled,
            outcome.result,
            "result mismatch on:\n{}",
            source
        );
        for (i, &expected) in outcome.globals.iter().enumerate() {
            let actual = vm.load_word(DATA_BASE + 4 * i as u32).unwrap();
            prop_assert_eq!(actual, expected, "global word {} mismatch on:\n{}", i, source);
        }
    }

    /// The optimizer and the if-converter must both preserve semantics:
    /// compile with every transformation enabled and compare against the
    /// reference interpreter running the *unoptimized* AST.
    #[test]
    fn transformed_compilation_matches_interpreted(source in arb_program()) {
        let options = CodegenOptions {
            if_conversion: true,
            optimize: true,
        };
        let program = compile_with_options(&source, options)
            .unwrap_or_else(|err| panic!("compile failed: {err}\n{source}"));
        let mut vm = Vm::new(&program, VmOptions { mem_words: 1 << 20 });
        vm.run(50_000_000)
            .unwrap_or_else(|err| panic!("vm failed: {err}\n{source}"));
        prop_assert!(vm.halted(), "program did not halt:\n{source}");
        let outcome = interpret_source(&source, 500_000_000)
            .unwrap_or_else(|err| panic!("interp failed: {err}\n{source}"));
        prop_assert_eq!(vm.reg(Reg::V0), outcome.result, "result mismatch on:\n{}", source);
        for (i, &expected) in outcome.globals.iter().enumerate() {
            let actual = vm.load_word(DATA_BASE + 4 * i as u32).unwrap();
            prop_assert_eq!(actual, expected, "global word {} mismatch on:\n{}", i, source);
        }
    }
}
