//! Property test: the paper's machine hierarchy holds on every program.
//!
//! For any trace, adding a capability can only help:
//! `BASE ≤ CD ≤ CD-MF ≤ ORACLE`, `BASE ≤ SP ≤ SP-CD ≤ SP-CD-MF ≤ ORACLE`,
//! `CD ≤ SP-CD`, and `CD-MF ≤ SP-CD-MF` — measured as parallelism, i.e.
//! cycles may only shrink. Also checked: the sequential instruction count
//! is machine independent, and ORACLE cycles are at least the data-depth
//! lower bound of 1.

// Requires the external `proptest` crate: gated off by default so the
// workspace builds and tests fully offline. Enable with
// `--features external-tests` after restoring the proptest dev-dependency.
#![cfg(feature = "external-tests")]

mod common;

use clfp::lang::compile;
use clfp::limits::{AnalysisConfig, Analyzer, MachineKind};
use common::arb_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    #[test]
    fn hierarchy_holds_on_random_programs(source in arb_program()) {
        let program = compile(&source)
            .unwrap_or_else(|err| panic!("compile failed: {err}\n{source}"));
        let config = AnalysisConfig {
            max_instrs: 300_000,
            mem_words: 1 << 20,
            ..AnalysisConfig::default()
        };
        let analyzer = Analyzer::new(&program, config)
            .unwrap_or_else(|err| panic!("analyzer failed: {err}\n{source}"));
        let report = analyzer.run()
            .unwrap_or_else(|err| panic!("analysis failed: {err}\n{source}"));

        for kind in MachineKind::ALL {
            let stronger = report.result(kind).expect("analyzed");
            prop_assert!(stronger.cycles >= 1);
            for &weaker in kind.dominates() {
                let weaker_result = report.result(weaker).expect("analyzed");
                prop_assert!(
                    weaker_result.cycles >= stronger.cycles,
                    "{} finished in {} cycles but stronger {} took {} on:\n{}",
                    weaker,
                    weaker_result.cycles,
                    kind,
                    stronger.cycles,
                    source
                );
            }
        }
        // Parallelism is count/cycles with a shared count, so the same
        // ordering holds for the reported parallelism values.
        let oracle = report.parallelism(MachineKind::Oracle);
        for kind in MachineKind::ALL {
            prop_assert!(report.parallelism(kind) <= oracle + 1e-9);
            prop_assert!(report.parallelism(kind) >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn unrolling_never_slows_the_critical_path(source in arb_program()) {
        let program = compile(&source)
            .unwrap_or_else(|err| panic!("compile failed: {err}\n{source}"));
        let base = AnalysisConfig {
            max_instrs: 200_000,
            mem_words: 1 << 20,
            machines: vec![MachineKind::Oracle, MachineKind::CdMf],
            ..AnalysisConfig::default()
        };
        let on = Analyzer::new(&program, base.clone().with_unrolling(true))
            .unwrap().run().unwrap();
        let off = Analyzer::new(&program, base.with_unrolling(false))
            .unwrap().run().unwrap();
        // The paper: "our simulation of perfect loop unrolling always
        // decreases the program execution times" (parallelism may go either
        // way, but the critical path cannot grow: unrolling only removes
        // constraints and instructions).
        for kind in [MachineKind::Oracle, MachineKind::CdMf] {
            let cycles_on = on.result(kind).unwrap().cycles;
            let cycles_off = off.result(kind).unwrap().cycles;
            prop_assert!(
                cycles_on <= cycles_off,
                "{}: unrolling grew the critical path {} -> {} on:\n{}",
                kind, cycles_off, cycles_on, source
            );
        }
        prop_assert!(on.seq_instrs <= off.seq_instrs);
    }
}
