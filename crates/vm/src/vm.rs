use clfp_isa::{Instr, Program, Reg};

use crate::{Memory, Trace, TraceEvent, VmError};

/// Configuration for a [`Vm`].
#[derive(Copy, Clone, Debug)]
pub struct VmOptions {
    /// Simulated memory size in words (default 4M words = 16 MiB).
    pub mem_words: usize,
}

impl Default for VmOptions {
    fn default() -> VmOptions {
        VmOptions {
            mem_words: 4 << 20,
        }
    }
}

/// Why execution stopped.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ExecOutcome {
    /// The program executed a `halt` instruction.
    Halted,
    /// The instruction limit was reached first (the study caps traces, as
    /// the original did at 100M instructions).
    LimitReached,
}

/// The tracing interpreter.
///
/// Executes a [`Program`] one instruction at a time, producing a
/// [`TraceEvent`] per executed instruction. Initial state: all registers
/// zero except `sp`, which starts at the top of memory; the data segment is
/// loaded at [`DATA_BASE`](clfp_isa::DATA_BASE).
#[derive(Debug)]
pub struct Vm<'a> {
    program: &'a Program,
    regs: [i32; Reg::COUNT],
    mem: Memory,
    pc: u32,
    halted: bool,
    executed: u64,
}

impl<'a> Vm<'a> {
    /// Creates a VM ready to execute `program` from its entry point.
    pub fn new(program: &'a Program, options: VmOptions) -> Vm<'a> {
        let mem = Memory::new(options.mem_words, program);
        let mut regs = [0i32; Reg::COUNT];
        regs[Reg::SP.index()] = mem.size_bytes() as i32;
        regs[Reg::FP.index()] = mem.size_bytes() as i32;
        Vm {
            program,
            regs,
            mem,
            pc: program.entry,
            halted: false,
            executed: 0,
        }
    }

    /// The current program counter (instruction index).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether the VM has executed a `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Reads a register.
    pub fn reg(&self, reg: Reg) -> i32 {
        self.regs[reg.index()]
    }

    /// Writes a register (writes to `r0` are ignored).
    pub fn set_reg(&mut self, reg: Reg, value: i32) {
        if !reg.is_zero() {
            self.regs[reg.index()] = value;
        }
    }

    /// Loads a word from simulated memory, for inspection in tests and
    /// harnesses.
    ///
    /// # Errors
    ///
    /// Propagates alignment and range errors.
    pub fn load_word(&self, addr: u32) -> Result<i32, VmError> {
        self.mem.load(self.pc, addr)
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(None)` if the machine has already halted.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on invalid memory accesses, invalid computed
    /// jump targets, or a program counter outside the text segment.
    pub fn step(&mut self) -> Result<Option<TraceEvent>, VmError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let instr = *self
            .program
            .text
            .get(pc as usize)
            .ok_or(VmError::BadPc { pc })?;

        let mut event = TraceEvent {
            pc,
            mem_addr: 0,
            value: 0,
            taken: false,
        };
        let mut next_pc = pc + 1;

        match instr {
            Instr::Alu { op, rd, rs, rt } => {
                let value = op.eval(self.reg(rs), self.reg(rt));
                self.set_reg(rd, value);
            }
            Instr::AluI { op, rd, rs, imm } => {
                let value = op.eval(self.reg(rs), imm);
                self.set_reg(rd, value);
            }
            Instr::Li { rd, imm } => self.set_reg(rd, imm),
            Instr::CMovN { rd, rs, rt } => {
                if self.reg(rt) != 0 {
                    let value = self.reg(rs);
                    self.set_reg(rd, value);
                }
            }
            Instr::CMovZ { rd, rs, rt } => {
                if self.reg(rt) == 0 {
                    let value = self.reg(rs);
                    self.set_reg(rd, value);
                }
            }
            Instr::Lw { rd, base, offset } => {
                let addr = (self.reg(base)).wrapping_add(offset) as u32;
                event.mem_addr = addr;
                let value = self.mem.load(pc, addr)?;
                self.set_reg(rd, value);
            }
            Instr::Sw { rs, base, offset } => {
                let addr = (self.reg(base)).wrapping_add(offset) as u32;
                event.mem_addr = addr;
                self.mem.store(pc, addr, self.reg(rs))?;
            }
            Instr::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                let taken = cond.eval(self.reg(rs), self.reg(rt));
                event.taken = taken;
                if taken {
                    next_pc = target;
                }
            }
            Instr::Jump { target } => next_pc = target,
            Instr::JumpR { rs } => {
                next_pc = self.checked_target(pc, self.reg(rs))?;
            }
            Instr::Call { target } => {
                self.set_reg(Reg::RA, (pc + 1) as i32);
                next_pc = target;
            }
            Instr::CallR { rs } => {
                let target = self.checked_target(pc, self.reg(rs))?;
                self.set_reg(Reg::RA, (pc + 1) as i32);
                next_pc = target;
            }
            Instr::Ret => {
                next_pc = self.checked_target(pc, self.reg(Reg::RA))?;
            }
            Instr::Halt => {
                self.halted = true;
                next_pc = pc;
            }
            Instr::Nop => {}
        }

        // Record the produced value for value-prediction training: the
        // architectural state of the destination register after this
        // instruction (a cmov that kept the old value "produces" it too;
        // r0 defs read back 0).
        if let Some(rd) = instr.def() {
            event.value = self.reg(rd) as u32;
        }

        self.pc = next_pc;
        self.executed += 1;
        Ok(Some(event))
    }

    fn checked_target(&self, pc: u32, target: i32) -> Result<u32, VmError> {
        if target < 0 || target as usize >= self.program.text.len() {
            Err(VmError::BadJumpTarget { pc, target })
        } else {
            Ok(target as u32)
        }
    }

    /// Runs until `halt` or until `limit` instructions have executed,
    /// passing every event to `sink`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`VmError`].
    pub fn run_with<F>(&mut self, limit: u64, mut sink: F) -> Result<ExecOutcome, VmError>
    where
        F: FnMut(TraceEvent),
    {
        let stop_at = self.executed.saturating_add(limit);
        while self.executed < stop_at {
            match self.step()? {
                Some(event) => sink(event),
                None => return Ok(ExecOutcome::Halted),
            }
        }
        if self.halted {
            Ok(ExecOutcome::Halted)
        } else {
            Ok(ExecOutcome::LimitReached)
        }
    }

    /// Runs to completion (or `limit`), discarding events.
    ///
    /// # Errors
    ///
    /// Propagates the first [`VmError`].
    pub fn run(&mut self, limit: u64) -> Result<ExecOutcome, VmError> {
        self.run_with(limit, |_| {})
    }

    /// Runs to completion (or `limit`), capturing the full trace.
    ///
    /// # Errors
    ///
    /// Propagates the first [`VmError`].
    pub fn trace(&mut self, limit: u64) -> Result<Trace, VmError> {
        let span = clfp_metrics::trace::span("vm.trace", "vm").arg("limit", limit);
        let mut events = Vec::new();
        self.run_with(limit, |event| events.push(event))?;
        drop(span.arg("events", events.len()));
        Ok(Trace::from_events(events))
    }

    /// Runs to completion (or `limit`), delivering the trace as fixed-size
    /// chunks instead of one materialized vector: every chunk except
    /// possibly the last holds exactly `chunk_events` events, in trace
    /// order. Concatenating the chunks reproduces [`Vm::trace`] exactly,
    /// with memory bounded by one chunk — the streaming producer behind
    /// [`TraceSource`](crate::TraceSource).
    ///
    /// # Errors
    ///
    /// Propagates the first [`VmError`].
    ///
    /// # Panics
    ///
    /// Panics if `chunk_events` is zero.
    pub fn trace_chunks<F>(
        &mut self,
        limit: u64,
        chunk_events: usize,
        mut sink: F,
    ) -> Result<ExecOutcome, VmError>
    where
        F: FnMut(&[TraceEvent]),
    {
        assert!(chunk_events > 0, "chunk size must be non-zero");
        let mut buf: Vec<TraceEvent> = Vec::with_capacity(chunk_events);
        let outcome = self.run_with(limit, |event| {
            buf.push(event);
            if buf.len() == chunk_events {
                sink(&buf);
                buf.clear();
            }
        })?;
        if !buf.is_empty() {
            sink(&buf);
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::{assemble, DATA_BASE};

    fn exec(source: &str) -> (Program, Trace, Vec<i32>) {
        let program = assemble(source).unwrap();
        let mut vm = Vm::new(&program, VmOptions { mem_words: 1 << 16 });
        let trace = vm.trace(1_000_000).unwrap();
        let regs: Vec<i32> = Reg::all().map(|r| vm.reg(r)).collect();
        (program, trace, regs)
    }

    #[test]
    fn arithmetic_and_branches() {
        let (_, trace, regs) = exec(
            r#"
            .text
            main:
                li r8, 0
                li r9, 5
            loop:
                add r8, r8, r9
                addi r9, r9, -1
                bgt r9, r0, loop
                halt
            "#,
        );
        // 5 + 4 + 3 + 2 + 1 = 15
        assert_eq!(regs[8], 15);
        assert_eq!(trace.len(), 2 + 5 * 3 + 1);
    }

    #[test]
    fn loads_and_stores() {
        let (_, trace, regs) = exec(
            r#"
            .data
            x: .word 21
            y: .word 0
            .text
            main:
                li r8, x
                lw r9, 0(r8)
                add r9, r9, r9
                sw r9, 4(r8)
                lw r10, 4(r8)
                halt
            "#,
        );
        assert_eq!(regs[10], 42);
        let load_event = trace.events()[1];
        assert_eq!(load_event.mem_addr, DATA_BASE);
    }

    #[test]
    fn call_and_return() {
        let (_, _, regs) = exec(
            r#"
            .text
            main:
                li a0, 7
                call double
                mv r8, v0
                halt
            double:
                add v0, a0, a0
                ret
            "#,
        );
        assert_eq!(regs[8], 14);
    }

    #[test]
    fn recursion_via_stack() {
        // Computes factorial(5) recursively, spilling ra and a0.
        let (_, _, regs) = exec(
            r#"
            .text
            main:
                li a0, 5
                call fact
                mv r8, v0
                halt
            fact:
                addi sp, sp, -8
                sw ra, 0(sp)
                sw a0, 4(sp)
                li v0, 1
                ble a0, r0, base
                addi a0, a0, -1
                call fact
                lw a0, 4(sp)
                mul v0, v0, a0
            base:
                lw ra, 0(sp)
                addi sp, sp, 8
                ret
            "#,
        );
        assert_eq!(regs[8], 120);
    }

    #[test]
    fn computed_jump() {
        let (_, _, regs) = exec(
            r#"
            .text
            main:
                li r8, target
                jr r8
                li r9, 1
            target:
                li r9, 2
                halt
            "#,
        );
        assert_eq!(regs[9], 2);
    }

    #[test]
    fn branch_events_record_outcome() {
        let (program, trace, _) = exec(
            ".text\nmain: li r8, 1\n beq r8, r0, skip\n nop\nskip: halt",
        );
        let branch = trace
            .iter()
            .find(|e| e.instr(&program).is_cond_branch())
            .unwrap();
        assert!(!branch.taken);
    }

    #[test]
    fn limit_reached() {
        let program = assemble(".text\nmain: j main").unwrap();
        let mut vm = Vm::new(&program, VmOptions { mem_words: 1 << 12 });
        assert_eq!(vm.run(100).unwrap(), ExecOutcome::LimitReached);
        assert_eq!(vm.executed(), 100);
        assert!(!vm.halted());
    }

    #[test]
    fn halted_is_sticky() {
        let program = assemble(".text\nmain: halt").unwrap();
        let mut vm = Vm::new(&program, VmOptions { mem_words: 1 << 12 });
        assert_eq!(vm.run(10).unwrap(), ExecOutcome::Halted);
        assert!(vm.halted());
        assert_eq!(vm.step().unwrap(), None);
    }

    #[test]
    fn bad_computed_jump_reports_error() {
        let program = assemble(".text\nmain: li r8, -3\n jr r8").unwrap();
        let mut vm = Vm::new(&program, VmOptions { mem_words: 1 << 12 });
        let err = vm.run(10).unwrap_err();
        assert_eq!(err, VmError::BadJumpTarget { pc: 1, target: -3 });
    }

    #[test]
    fn cmov_guards() {
        let (_, _, regs) = exec(
            r#"
            .text
            main:
                li r8, 11
                li r9, 22
                li r10, 1          # guard true
                li r11, 0          # guard false
                li r12, 100
                li r13, 100
                cmovn r12, r8, r10 # taken: r12 = 11
                cmovn r13, r8, r11 # not taken: r13 stays 100
                li r14, 100
                li r15, 100
                cmovz r14, r9, r11 # taken: r14 = 22
                cmovz r15, r9, r10 # not taken: r15 stays 100
                halt
            "#,
        );
        assert_eq!(regs[12], 11);
        assert_eq!(regs[13], 100);
        assert_eq!(regs[14], 22);
        assert_eq!(regs[15], 100);
    }

    #[test]
    fn cmov_to_zero_register_is_noop() {
        let (_, _, regs) = exec(
            ".text\nmain: li r8, 5\n li r9, 1\n cmovn r0, r8, r9\n halt",
        );
        assert_eq!(regs[0], 0);
    }

    #[test]
    fn zero_register_is_immutable() {
        let (_, _, regs) = exec(".text\nmain: addi r0, r0, 7\n halt");
        assert_eq!(regs[0], 0);
    }

    #[test]
    fn sp_starts_at_top_of_memory() {
        let program = assemble(".text\nmain: halt").unwrap();
        let vm = Vm::new(&program, VmOptions { mem_words: 1 << 12 });
        assert_eq!(vm.reg(Reg::SP), (1 << 12) * 4);
    }
}
