//! On-disk binary trace cache.
//!
//! Capturing a trace costs two orders of magnitude more than reading it
//! back: the VM interprets every instruction, while a cache hit is a
//! sequential scan of 13-byte records. The original study leaned on the
//! same asymmetry — `pixie` traces were captured once and analyzed many
//! times. [`TraceCache`] makes that workflow automatic: the first run of a
//! workload stores its CLFPTRC2 event stream under a key derived from the
//! program fingerprint, the instruction budget, and the trace format
//! version; later runs stream the file back through [`FileTraceSource`]
//! and skip VM execution entirely.
//!
//! Cache files are *hints, never trusted*: every lookup re-validates an
//! FNV-1a hash over the header and the exact byte length implied by the
//! event count. A stale, truncated, or corrupted file is deleted with a
//! warning and the caller re-executes — a damaged cache can cost time but
//! never correctness.
//!
//! File format (all little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "CLFPCCH1"
//! 8       4     trace format version (TRACE_FORMAT_VERSION)
//! 12      8     program fingerprint (Program::fingerprint)
//! 20      8     max_instrs the trace was captured with
//! 28      8     event count N
//! 36      8     FNV-1a hash of bytes 0..36
//! 44      13*N  events: pc u32, mem_addr u32, value u32, taken u8
//! ```

use std::fmt;
use std::fs;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use clfp_isa::Program;

use crate::{Trace, TraceEvent, TraceSource, Vm, VmError, VmOptions};

const MAGIC: &[u8; 8] = b"CLFPCCH1";
const HEADER_LEN: u64 = 44;
const RECORD_LEN: u64 = 13;

/// Version of the event record layout stored in cache files (the CLFPTRC2
/// 13-byte record). Part of the cache key: bumping it invalidates every
/// cached trace, which is exactly what a record-format change requires.
pub const TRACE_FORMAT_VERSION: u32 = 2;

/// FNV-1a over raw bytes — the same construction as
/// [`Program::fingerprint`], applied to the cache header so that a partial
/// write or bit flip in the key fields is detected before any record is
/// trusted.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn encode_header(fingerprint: u64, max_instrs: u64, events: u64) -> [u8; HEADER_LEN as usize] {
    let mut header = [0u8; HEADER_LEN as usize];
    header[0..8].copy_from_slice(MAGIC);
    header[8..12].copy_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
    header[12..20].copy_from_slice(&fingerprint.to_le_bytes());
    header[20..28].copy_from_slice(&max_instrs.to_le_bytes());
    header[28..36].copy_from_slice(&events.to_le_bytes());
    let hash = fnv1a(&header[0..36]);
    header[36..44].copy_from_slice(&hash.to_le_bytes());
    header
}

/// Why a cache file was rejected (and deleted) at lookup.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CacheFileError {
    /// Wrong magic or header hash — not a cache file, or a damaged one.
    Corrupt,
    /// Written by a different record-format version.
    WrongVersion {
        /// Version stored in the file.
        stored: u32,
    },
    /// Key fields do not match the requested program / budget.
    StaleKey,
    /// File length disagrees with the declared event count.
    Truncated,
}

impl fmt::Display for CacheFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CacheFileError::Corrupt => write!(f, "corrupt cache header"),
            CacheFileError::WrongVersion { stored } => {
                write!(f, "cache format version {stored} (want {TRACE_FORMAT_VERSION})")
            }
            CacheFileError::StaleKey => write!(f, "cache key does not match request"),
            CacheFileError::Truncated => write!(f, "cache file length disagrees with header"),
        }
    }
}

/// A validated cache entry streaming its events back as a [`TraceSource`].
///
/// Constructed only by [`TraceCache::lookup`] / [`TraceCache::store`], so
/// holding one implies the header hash and byte length checked out at open
/// time. The file is re-opened (and its header re-verified) on every
/// [`TraceSource::stream`] call; replay determinism holds because the
/// bytes on disk do not change.
#[derive(Clone, Debug)]
pub struct FileTraceSource {
    path: PathBuf,
    events: u64,
}

impl FileTraceSource {
    /// Path of the underlying cache file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of events stored in the file.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Opens the file and verifies header hash, version, key, and length.
    fn open_checked(
        path: &Path,
        fingerprint: u64,
        max_instrs: u64,
    ) -> io::Result<Result<(BufReader<fs::File>, u64), CacheFileError>> {
        let file = fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut reader = BufReader::new(file);
        let mut header = [0u8; HEADER_LEN as usize];
        if reader.read_exact(&mut header).is_err() {
            return Ok(Err(CacheFileError::Corrupt));
        }
        if &header[0..8] != MAGIC {
            return Ok(Err(CacheFileError::Corrupt));
        }
        let stored_hash = u64::from_le_bytes(header[36..44].try_into().expect("8 bytes"));
        if stored_hash != fnv1a(&header[0..36]) {
            return Ok(Err(CacheFileError::Corrupt));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != TRACE_FORMAT_VERSION {
            return Ok(Err(CacheFileError::WrongVersion { stored: version }));
        }
        let stored_fp = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        let stored_max = u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"));
        if stored_fp != fingerprint || stored_max != max_instrs {
            return Ok(Err(CacheFileError::StaleKey));
        }
        let events = u64::from_le_bytes(header[28..36].try_into().expect("8 bytes"));
        if file_len != HEADER_LEN + RECORD_LEN * events {
            return Ok(Err(CacheFileError::Truncated));
        }
        Ok(Ok((reader, events)))
    }

    /// Materializes the whole file as a [`Trace`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the header was validated at open, so a
    /// failure here means the file changed underneath us.
    pub fn load_trace(&self) -> io::Result<Trace> {
        let file = fs::File::open(&self.path)?;
        let mut reader = BufReader::new(file);
        let mut header = [0u8; HEADER_LEN as usize];
        reader.read_exact(&mut header)?;
        let mut events = Vec::with_capacity((self.events as usize).min(1 << 24));
        let mut record = [0u8; RECORD_LEN as usize];
        for _ in 0..self.events {
            reader.read_exact(&mut record)?;
            events.push(decode_record(&record));
        }
        Ok(Trace::from_events(events))
    }
}

fn decode_record(record: &[u8; RECORD_LEN as usize]) -> TraceEvent {
    TraceEvent {
        pc: u32::from_le_bytes(record[0..4].try_into().expect("4 bytes")),
        mem_addr: u32::from_le_bytes(record[4..8].try_into().expect("4 bytes")),
        value: u32::from_le_bytes(record[8..12].try_into().expect("4 bytes")),
        taken: record[12] != 0,
    }
}

impl TraceSource for FileTraceSource {
    fn stream(
        &self,
        chunk_events: usize,
        sink: &mut dyn FnMut(&[TraceEvent]),
    ) -> Result<(), VmError> {
        assert!(chunk_events > 0, "chunk size must be non-zero");
        // The header (including length) was validated when this source was
        // handed out; a failure now means the file was modified while in
        // use, which the cache does not support.
        let file = fs::File::open(&self.path).expect("cache file disappeared while in use");
        let mut reader = BufReader::with_capacity(1 << 16, file);
        let mut header = [0u8; HEADER_LEN as usize];
        reader
            .read_exact(&mut header)
            .expect("cache file changed while in use");
        let mut buf: Vec<TraceEvent> = Vec::with_capacity(chunk_events);
        let mut bytes = vec![0u8; chunk_events * RECORD_LEN as usize];
        let mut remaining = self.events;
        while remaining > 0 {
            let take = (remaining as usize).min(chunk_events);
            let raw = &mut bytes[..take * RECORD_LEN as usize];
            reader.read_exact(raw).expect("cache file changed while in use");
            buf.clear();
            for record in raw.chunks_exact(RECORD_LEN as usize) {
                buf.push(decode_record(record.try_into().expect("13 bytes")));
            }
            sink(&buf);
            remaining -= take as u64;
        }
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.events)
    }
}

/// One file in the cache directory, as listed by [`TraceCache::entries`].
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// Path of the cache file.
    pub path: PathBuf,
    /// Program fingerprint component of the key.
    pub fingerprint: u64,
    /// Instruction-budget component of the key.
    pub max_instrs: u64,
    /// Number of stored events.
    pub events: u64,
    /// Total file size in bytes.
    pub bytes: u64,
}

/// A directory of cached traces keyed by program fingerprint, instruction
/// budget, and [`TRACE_FORMAT_VERSION`].
#[derive(Clone, Debug)]
pub struct TraceCache {
    dir: PathBuf,
}

impl TraceCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new<P: Into<PathBuf>>(dir: P) -> TraceCache {
        TraceCache { dir: dir.into() }
    }

    /// The default cache directory: `$CLFP_CACHE_DIR` if set, otherwise
    /// `target/clfp-cache/` relative to the working directory.
    pub fn default_dir() -> PathBuf {
        match std::env::var_os("CLFP_CACHE_DIR") {
            Some(dir) if !dir.is_empty() => PathBuf::from(dir),
            _ => PathBuf::from("target").join("clfp-cache"),
        }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, fingerprint: u64, max_instrs: u64) -> PathBuf {
        self.dir
            .join(format!("{fingerprint:016x}-{max_instrs}-v{TRACE_FORMAT_VERSION}.clfpc"))
    }

    /// Looks up a cached trace for `program` at `max_instrs`.
    ///
    /// Returns `None` on a miss. A file that exists but fails validation
    /// (corrupt, truncated, stale, wrong version) is deleted with a
    /// warning on stderr and reported as a miss — it is never trusted.
    pub fn lookup(&self, program: &Program, max_instrs: u64) -> Option<FileTraceSource> {
        let path = self.entry_path(program.fingerprint(), max_instrs);
        if !path.exists() {
            clfp_metrics::trace::tally("cache.miss", "cache", 1);
            return None;
        }
        match FileTraceSource::open_checked(&path, program.fingerprint(), max_instrs) {
            Ok(Ok((_, events))) => {
                clfp_metrics::trace::tally("cache.hit", "cache", 1);
                Some(FileTraceSource { path, events })
            }
            Ok(Err(why)) => {
                clfp_metrics::trace::tally("cache.miss", "cache", 1);
                eprintln!(
                    "warning: discarding invalid trace cache file {} ({why}); re-executing",
                    path.display()
                );
                fs::remove_file(&path).ok();
                None
            }
            Err(err) => {
                clfp_metrics::trace::tally("cache.miss", "cache", 1);
                eprintln!(
                    "warning: cannot read trace cache file {} ({err}); re-executing",
                    path.display()
                );
                None
            }
        }
    }

    /// Stores `trace` for `program` at `max_instrs`, atomically: the file
    /// is written to a temporary sibling and renamed into place, so a
    /// crash mid-write leaves no half-valid entry under the real key.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn store(
        &self,
        program: &Program,
        max_instrs: u64,
        trace: &Trace,
    ) -> io::Result<FileTraceSource> {
        let _span = clfp_metrics::trace::span("cache.store", "cache")
            .arg("fingerprint", format!("{:016x}", program.fingerprint()))
            .arg("events", trace.len());
        fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(program.fingerprint(), max_instrs);
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        {
            let mut out = BufWriter::with_capacity(1 << 16, fs::File::create(&tmp)?);
            let header =
                encode_header(program.fingerprint(), max_instrs, trace.len() as u64);
            out.write_all(&header)?;
            for event in trace.iter() {
                out.write_all(&event.pc.to_le_bytes())?;
                out.write_all(&event.mem_addr.to_le_bytes())?;
                out.write_all(&event.value.to_le_bytes())?;
                out.write_all(&[event.taken as u8])?;
            }
            out.flush()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(FileTraceSource {
            path,
            events: trace.len() as u64,
        })
    }

    /// Returns the cached trace for `program` at `max_instrs`, capturing
    /// and storing it on a miss. The boolean is `true` on a warm hit.
    ///
    /// A store failure (e.g. read-only cache directory) degrades to a
    /// warning: the freshly captured trace is still returned, uncached.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError`] from a cold-path execution.
    pub fn ensure(
        &self,
        program: &Program,
        options: VmOptions,
        max_instrs: u64,
    ) -> Result<(Trace, bool), VmError> {
        if let Some(source) = self.lookup(program, max_instrs) {
            let span = clfp_metrics::trace::span("cache.load", "cache")
                .arg("fingerprint", format!("{:016x}", program.fingerprint()))
                .arg("events", source.events());
            match source.load_trace() {
                Ok(trace) => return Ok((trace, true)),
                Err(err) => {
                    drop(span);
                    eprintln!(
                        "warning: cache file {} vanished mid-read ({err}); re-executing",
                        source.path.display()
                    );
                }
            }
        }
        let trace = Vm::new(program, options).trace(max_instrs)?;
        if let Err(err) = self.store(program, max_instrs, &trace) {
            eprintln!(
                "warning: cannot write trace cache under {} ({err}); continuing uncached",
                self.dir.display()
            );
        }
        Ok((trace, false))
    }

    /// Lists every parseable entry in the cache directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the directory not existing (an
    /// absent directory is an empty cache).
    pub fn entries(&self) -> io::Result<Vec<CacheEntry>> {
        let mut out = Vec::new();
        let dir = match fs::read_dir(&self.dir) {
            Ok(dir) => dir,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(err) => return Err(err),
        };
        for entry in dir {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("clfpc") {
                continue;
            }
            let bytes = entry.metadata()?.len();
            let mut file = match fs::File::open(&path) {
                Ok(file) => file,
                Err(_) => continue,
            };
            let mut header = [0u8; HEADER_LEN as usize];
            if file.read_exact(&mut header).is_err()
                || &header[0..8] != MAGIC
                || u64::from_le_bytes(header[36..44].try_into().expect("8 bytes"))
                    != fnv1a(&header[0..36])
            {
                continue;
            }
            out.push(CacheEntry {
                path,
                fingerprint: u64::from_le_bytes(header[12..20].try_into().expect("8 bytes")),
                max_instrs: u64::from_le_bytes(header[20..28].try_into().expect("8 bytes")),
                events: u64::from_le_bytes(header[28..36].try_into().expect("8 bytes")),
                bytes,
            });
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }

    /// Deletes every cache file, returning how many were removed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the directory not existing.
    pub fn clear(&self) -> io::Result<usize> {
        let mut removed = 0;
        let dir = match fs::read_dir(&self.dir) {
            Ok(dir) => dir,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(err) => return Err(err),
        };
        for entry in dir {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("clfpc") {
                fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::assemble;

    const LOOP: &str = ".text\nmain: li r8, 9\nloop: addi r8, r8, -1\n lw r9, 0x1000(r0)\n sw r8, 0x1004(r0)\n bgt r8, r0, loop\n halt";

    fn temp_cache(tag: &str) -> TraceCache {
        let dir = std::env::temp_dir().join(format!("clfp-cache-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TraceCache::new(dir)
    }

    fn sample() -> (Program, Trace) {
        let program = assemble(LOOP).unwrap();
        let trace = Vm::new(&program, VmOptions::default()).trace(10_000).unwrap();
        (program, trace)
    }

    #[test]
    fn warm_hit_is_bit_identical() {
        let cache = temp_cache("warm");
        let (program, trace) = sample();
        let (cold, warm) = cache.ensure(&program, VmOptions::default(), 10_000).unwrap();
        assert!(!warm, "first run must miss");
        assert_eq!(cold.events(), trace.events());
        let (reloaded, warm) = cache.ensure(&program, VmOptions::default(), 10_000).unwrap();
        assert!(warm, "second run must hit");
        assert_eq!(reloaded.events(), trace.events());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn streamed_chunks_match_trace() {
        let cache = temp_cache("stream");
        let (program, trace) = sample();
        cache.store(&program, 10_000, &trace).unwrap();
        let source = cache.lookup(&program, 10_000).unwrap();
        assert_eq!(source.len_hint(), Some(trace.len() as u64));
        for chunk in [1usize, 7, 4096] {
            let mut events = Vec::new();
            let mut sizes = Vec::new();
            source
                .stream(chunk, &mut |part: &[TraceEvent]| {
                    events.extend_from_slice(part);
                    sizes.push(part.len());
                })
                .unwrap();
            assert_eq!(events, trace.events(), "chunk {chunk}");
            for &size in &sizes[..sizes.len() - 1] {
                assert_eq!(size, chunk, "all but the last chunk must be full");
            }
        }
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn stale_key_misses() {
        let cache = temp_cache("stale");
        let (program, trace) = sample();
        cache.store(&program, 10_000, &trace).unwrap();
        // Different budget → different key → miss.
        assert!(cache.lookup(&program, 20_000).is_none());
        // Different program → different key → miss.
        let other = assemble(".text\nmain: halt").unwrap();
        assert!(cache.lookup(&other, 10_000).is_none());
        // The original entry is untouched by those misses.
        assert!(cache.lookup(&program, 10_000).is_some());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn truncated_file_is_discarded_and_rebuilt() {
        let cache = temp_cache("trunc");
        let (program, trace) = sample();
        let source = cache.store(&program, 10_000, &trace).unwrap();
        let path = source.path().to_path_buf();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        // Truncation detected, file removed, reported as a miss.
        assert!(cache.lookup(&program, 10_000).is_none());
        assert!(!path.exists(), "invalid file must be deleted");
        // The cold path rebuilds a valid entry with identical events.
        let (rebuilt, warm) = cache.ensure(&program, VmOptions::default(), 10_000).unwrap();
        assert!(!warm);
        assert_eq!(rebuilt.events(), trace.events());
        assert!(cache.lookup(&program, 10_000).is_some());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn corrupted_header_is_discarded() {
        let cache = temp_cache("corrupt");
        let (program, trace) = sample();
        let source = cache.store(&program, 10_000, &trace).unwrap();
        let path = source.path().to_path_buf();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xff; // flip a key byte without fixing the hash
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.lookup(&program, 10_000).is_none());
        assert!(!path.exists());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn entries_and_clear() {
        let cache = temp_cache("entries");
        let (program, trace) = sample();
        assert!(cache.entries().unwrap().is_empty(), "absent dir is empty");
        cache.store(&program, 10_000, &trace).unwrap();
        cache.store(&program, 5_000, &trace).unwrap();
        let entries = cache.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|e| e.fingerprint == program.fingerprint()));
        assert_eq!(cache.clear().unwrap(), 2);
        assert!(cache.entries().unwrap().is_empty());
        std::fs::remove_dir_all(cache.dir()).ok();
    }
}
