//! Binary trace files.
//!
//! The original study captured `pixie` traces once and analyzed them many
//! times. This module provides the same workflow: [`Trace::save`] writes a
//! compact binary file carrying a fingerprint of the traced program, and
//! [`Trace::load`] replays it — refusing a trace that was captured from a
//! different binary.
//!
//! Format (all little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "CLFPTRC2"
//! 8       8     program fingerprint (Program::fingerprint)
//! 16      8     event count N
//! 24      13*N  events: pc u32, mem_addr u32, value u32, taken u8
//! ```
//!
//! `CLFPTRC1` files (9-byte records, no produced value) predate the
//! value-prediction axis and are rejected as [`TraceFileError::BadMagic`];
//! recapture the trace to upgrade.

use std::fmt;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use clfp_isa::Program;

use crate::{Trace, TraceEvent};

const MAGIC: &[u8; 8] = b"CLFPTRC2";

/// Error loading a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a clfp trace.
    BadMagic,
    /// The trace was captured from a different program.
    FingerprintMismatch {
        /// Fingerprint stored in the file.
        stored: u64,
        /// Fingerprint of the program supplied for replay.
        expected: u64,
    },
    /// The file ended before the declared event count.
    Truncated,
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(err) => write!(f, "trace i/o error: {err}"),
            TraceFileError::BadMagic => write!(f, "not a clfp trace file"),
            TraceFileError::FingerprintMismatch { stored, expected } => write!(
                f,
                "trace was captured from a different program \
                 (stored {stored:#018x}, expected {expected:#018x})"
            ),
            TraceFileError::Truncated => write!(f, "trace file is truncated"),
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(err: io::Error) -> TraceFileError {
        TraceFileError::Io(err)
    }
}

impl Trace {
    /// Writes the trace to `writer` in the binary trace format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, program: &Program, writer: W) -> io::Result<()> {
        let mut out = BufWriter::new(writer);
        out.write_all(MAGIC)?;
        out.write_all(&program.fingerprint().to_le_bytes())?;
        out.write_all(&(self.len() as u64).to_le_bytes())?;
        for event in self.iter() {
            out.write_all(&event.pc.to_le_bytes())?;
            out.write_all(&event.mem_addr.to_le_bytes())?;
            out.write_all(&event.value.to_le_bytes())?;
            out.write_all(&[event.taken as u8])?;
        }
        out.flush()
    }

    /// Reads a trace from `reader`, verifying it belongs to `program`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError`] on I/O failure, wrong magic, fingerprint
    /// mismatch, or truncation.
    pub fn read_from<R: Read>(program: &Program, reader: R) -> Result<Trace, TraceFileError> {
        let mut input = BufReader::new(reader);
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic).map_err(|_| TraceFileError::BadMagic)?;
        if &magic != MAGIC {
            return Err(TraceFileError::BadMagic);
        }
        let mut word = [0u8; 8];
        input.read_exact(&mut word)?;
        let stored = u64::from_le_bytes(word);
        let expected = program.fingerprint();
        if stored != expected {
            return Err(TraceFileError::FingerprintMismatch { stored, expected });
        }
        input.read_exact(&mut word)?;
        let count = u64::from_le_bytes(word) as usize;
        let mut events = Vec::with_capacity(count.min(1 << 24));
        let mut record = [0u8; 13];
        for _ in 0..count {
            input
                .read_exact(&mut record)
                .map_err(|_| TraceFileError::Truncated)?;
            events.push(TraceEvent {
                pc: u32::from_le_bytes(record[0..4].try_into().expect("4 bytes")),
                mem_addr: u32::from_le_bytes(record[4..8].try_into().expect("4 bytes")),
                value: u32::from_le_bytes(record[8..12].try_into().expect("4 bytes")),
                taken: record[12] != 0,
            });
        }
        Ok(Trace::from_events(events))
    }

    /// Saves the trace to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<P: AsRef<Path>>(&self, program: &Program, path: P) -> io::Result<()> {
        self.write_to(program, std::fs::File::create(path)?)
    }

    /// Loads a trace from a file, verifying it belongs to `program`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError`] as in [`Trace::read_from`].
    pub fn load<P: AsRef<Path>>(program: &Program, path: P) -> Result<Trace, TraceFileError> {
        Trace::read_from(program, std::fs::File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Vm, VmOptions};
    use clfp_isa::assemble;

    fn sample() -> (Program, Trace) {
        let program = assemble(
            ".text\nmain: li r8, 5\nloop: addi r8, r8, -1\n lw r9, 0x1000(r0)\n bgt r8, r0, loop\n halt",
        )
        .unwrap();
        let mut vm = Vm::new(&program, VmOptions { mem_words: 1 << 12 });
        let trace = vm.trace(10_000).unwrap();
        (program, trace)
    }

    #[test]
    fn roundtrip_preserves_events() {
        let (program, trace) = sample();
        let mut buffer = Vec::new();
        trace.write_to(&program, &mut buffer).unwrap();
        let loaded = Trace::read_from(&program, buffer.as_slice()).unwrap();
        assert_eq!(loaded.events(), trace.events());
    }

    #[test]
    fn rejects_wrong_program() {
        let (program, trace) = sample();
        let other = assemble(".text\nmain: halt").unwrap();
        let mut buffer = Vec::new();
        trace.write_to(&program, &mut buffer).unwrap();
        let err = Trace::read_from(&other, buffer.as_slice()).unwrap_err();
        assert!(matches!(err, TraceFileError::FingerprintMismatch { .. }));
        assert!(err.to_string().contains("different program"));
    }

    #[test]
    fn rejects_bad_magic() {
        let (program, _) = sample();
        let err = Trace::read_from(&program, &b"NOTATRACE123456789"[..]).unwrap_err();
        assert!(matches!(err, TraceFileError::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let (program, trace) = sample();
        let mut buffer = Vec::new();
        trace.write_to(&program, &mut buffer).unwrap();
        buffer.truncate(buffer.len() - 5);
        let err = Trace::read_from(&program, buffer.as_slice()).unwrap_err();
        assert!(matches!(err, TraceFileError::Truncated));
    }

    #[test]
    fn file_roundtrip() {
        let (program, trace) = sample();
        let dir = std::env::temp_dir().join(format!("clfp-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.trc");
        trace.save(&program, &path).unwrap();
        let loaded = Trace::load(&program, &path).unwrap();
        assert_eq!(loaded.len(), trace.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
