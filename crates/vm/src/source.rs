//! Streaming trace sources.
//!
//! The materialize-then-analyze pipeline (`Vm::trace` → `Vec<TraceEvent>`
//! → analyzer) hits a memory wall long before the paper's 100M-instruction
//! traces: 12 bytes per event plus the analyzer's per-event metadata. A
//! [`TraceSource`] instead delivers the event sequence as fixed-size
//! chunks, so a consumer's trace-side memory is O(chunk), and — because
//! the VM is deterministic — the same source can be streamed repeatedly,
//! producing the identical sequence every time. That determinism is what
//! lets the analyzer run two passes (profile, then schedule) without ever
//! holding the trace.
//!
//! Implementations:
//!
//! * [`Trace`] — an already-captured trace streams its slice in chunks
//!   (the in-memory path expressed as the degenerate source);
//! * [`ProgramSource`] — a deterministic execution replayed from a fresh
//!   [`Vm`] on every [`TraceSource::stream`] call, optionally
//!   [`repeated`](ProgramSource::repeated) back-to-back to synthesize
//!   paper-length streams from workloads that halt earlier.

use clfp_isa::Program;

use crate::{Trace, TraceEvent, Vm, VmError, VmOptions};

/// A deterministic, replayable producer of a trace-event sequence.
///
/// Every call to [`TraceSource::stream`] must deliver the *identical*
/// event sequence, in order, as chunks of at most `chunk_events` events
/// where every chunk except possibly the last is exactly `chunk_events`
/// long. Consumers rely on replay determinism to make multiple passes
/// (e.g. branch profiling, then scheduling) without materializing events.
pub trait TraceSource {
    /// Streams the event sequence into `sink`, chunk by chunk.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from producing the events.
    fn stream(
        &self,
        chunk_events: usize,
        sink: &mut dyn FnMut(&[TraceEvent]),
    ) -> Result<(), VmError>;

    /// The exact total event count, when known without executing.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

impl TraceSource for Trace {
    fn stream(
        &self,
        chunk_events: usize,
        sink: &mut dyn FnMut(&[TraceEvent]),
    ) -> Result<(), VmError> {
        assert!(chunk_events > 0, "chunk size must be non-zero");
        for chunk in self.events().chunks(chunk_events) {
            sink(chunk);
        }
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.len() as u64)
    }
}

/// A [`TraceSource`] that replays a program's deterministic execution from
/// a fresh [`Vm`] on every stream call, capped at `limit` events — the
/// streaming equivalent of `Vm::trace(limit)` with O(chunk) memory.
///
/// With [`ProgramSource::repeated`], a program that halts before `limit`
/// is re-executed back-to-back until exactly `limit` events have been
/// delivered. Our workloads converge well before 100M instructions; the
/// scaling benchmark uses repetition to measure genuine paper-length
/// streams through the full pipeline (the analyzer is honest about this —
/// repeated execution measures throughput and memory, not new program
/// behavior).
#[derive(Copy, Clone, Debug)]
pub struct ProgramSource<'a> {
    program: &'a Program,
    options: VmOptions,
    limit: u64,
    repeat: bool,
}

impl<'a> ProgramSource<'a> {
    /// A source replaying one execution of `program`, capped at `limit`
    /// events.
    pub fn new(program: &'a Program, options: VmOptions, limit: u64) -> ProgramSource<'a> {
        ProgramSource {
            program,
            options,
            limit,
            repeat: false,
        }
    }

    /// Re-executes the program back-to-back until exactly `limit` events
    /// have been streamed (a program that produces no events at all ends
    /// the stream instead of spinning).
    pub fn repeated(mut self) -> ProgramSource<'a> {
        self.repeat = true;
        self
    }
}

impl TraceSource for ProgramSource<'_> {
    fn stream(
        &self,
        chunk_events: usize,
        sink: &mut dyn FnMut(&[TraceEvent]),
    ) -> Result<(), VmError> {
        assert!(chunk_events > 0, "chunk size must be non-zero");
        if !self.repeat {
            let mut vm = Vm::new(self.program, self.options);
            vm.trace_chunks(self.limit, chunk_events, |chunk| sink(chunk))?;
            return Ok(());
        }
        // Repetition: carry the partial chunk across VM restarts so chunk
        // boundaries stay exact regardless of where executions end.
        let mut buf: Vec<TraceEvent> = Vec::with_capacity(chunk_events);
        let mut remaining = self.limit;
        while remaining > 0 {
            let mut vm = Vm::new(self.program, self.options);
            vm.run_with(remaining, |event| {
                buf.push(event);
                if buf.len() == chunk_events {
                    sink(&buf);
                    buf.clear();
                }
            })?;
            if vm.executed() == 0 {
                break;
            }
            remaining -= vm.executed();
        }
        if !buf.is_empty() {
            sink(&buf);
        }
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        // Exact only when repeating (and the program makes progress); a
        // single execution may halt before the cap.
        self.repeat.then_some(self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::assemble;

    const LOOP: &str =
        ".text\nmain: li r8, 5\nloop: addi r8, r8, -1\n call f\n bgt r8, r0, loop\n halt\nf: ret";

    fn collect(source: &impl TraceSource, chunk: usize) -> (Vec<TraceEvent>, Vec<usize>) {
        let mut events = Vec::new();
        let mut sizes = Vec::new();
        source
            .stream(chunk, &mut |part: &[TraceEvent]| {
                events.extend_from_slice(part);
                sizes.push(part.len());
            })
            .unwrap();
        (events, sizes)
    }

    #[test]
    fn trace_chunks_concatenate_to_trace() {
        let program = assemble(LOOP).unwrap();
        let options = VmOptions { mem_words: 1 << 12 };
        let trace = Vm::new(&program, options).trace(1_000_000).unwrap();
        assert!(!trace.len().is_multiple_of(7), "want a boundary-straddling size");
        for chunk in [1, 7, 4096] {
            let mut vm = Vm::new(&program, options);
            let mut events = Vec::new();
            let mut sizes = Vec::new();
            vm.trace_chunks(1_000_000, chunk, |part| {
                events.extend_from_slice(part);
                sizes.push(part.len());
            })
            .unwrap();
            assert_eq!(events, trace.events(), "chunk {chunk}");
            // Every chunk but the last is full.
            for &size in &sizes[..sizes.len() - 1] {
                assert_eq!(size, chunk);
            }
            assert!(*sizes.last().unwrap() <= chunk);
        }
    }

    #[test]
    fn program_source_matches_vm_trace() {
        let program = assemble(LOOP).unwrap();
        let options = VmOptions { mem_words: 1 << 12 };
        let trace = Vm::new(&program, options).trace(1_000_000).unwrap();
        let source = ProgramSource::new(&program, options, 1_000_000);
        for chunk in [1, 3, 1024] {
            let (events, _) = collect(&source, chunk);
            assert_eq!(events, trace.events(), "chunk {chunk}");
        }
        // Replays are identical.
        assert_eq!(collect(&source, 5).0, collect(&source, 5).0);
    }

    #[test]
    fn trace_is_its_own_source() {
        let program = assemble(LOOP).unwrap();
        let options = VmOptions { mem_words: 1 << 12 };
        let trace = Vm::new(&program, options).trace(1_000_000).unwrap();
        let (events, sizes) = collect(&trace, 7);
        assert_eq!(events, trace.events());
        assert_eq!(sizes.iter().sum::<usize>(), trace.len());
        assert_eq!(trace.len_hint(), Some(trace.len() as u64));
    }

    #[test]
    fn repeated_source_replays_to_exact_limit() {
        let program = assemble(LOOP).unwrap();
        let options = VmOptions { mem_words: 1 << 12 };
        let one_run = Vm::new(&program, options).trace(1_000_000).unwrap();
        let limit = one_run.len() as u64 * 2 + 5;
        let source = ProgramSource::new(&program, options, limit).repeated();
        assert_eq!(source.len_hint(), Some(limit));
        let (events, _) = collect(&source, 16);
        assert_eq!(events.len() as u64, limit);
        // The stream is the one-run sequence tiled back-to-back.
        for (i, event) in events.iter().enumerate() {
            assert_eq!(*event, one_run.events()[i % one_run.len()], "event {i}");
        }
    }

    #[test]
    fn repeated_source_with_limit_under_one_run() {
        let program = assemble(LOOP).unwrap();
        let options = VmOptions { mem_words: 1 << 12 };
        let source = ProgramSource::new(&program, options, 4).repeated();
        let (events, _) = collect(&source, 16);
        assert_eq!(events.len(), 4);
    }
}
