use clfp_isa::{Program, DATA_BASE, WORD};

use crate::VmError;

/// Flat, word-granular simulated memory.
///
/// Addresses are byte addresses; every access must be word-aligned. The
/// layout matches the study's process image:
///
/// ```text
/// 0x0000 .. DATA_BASE   reserved (null guard)
/// DATA_BASE ..          data segment (globals), then heap growing up
///             .. top    stack growing down from the top of memory
/// ```
#[derive(Clone, Debug)]
pub struct Memory {
    words: Vec<i32>,
}

impl Memory {
    /// Creates a memory of `words` 32-bit words, loading the program's data
    /// segment at [`DATA_BASE`].
    ///
    /// # Panics
    ///
    /// Panics if the data segment does not fit.
    pub fn new(words: usize, program: &Program) -> Memory {
        let data_start = (DATA_BASE / WORD) as usize;
        assert!(
            data_start + program.data.len() <= words,
            "data segment ({} words) does not fit in memory ({words} words)",
            program.data.len()
        );
        let mut mem = vec![0i32; words];
        mem[data_start..data_start + program.data.len()].copy_from_slice(&program.data);
        Memory { words: mem }
    }

    /// Total size in bytes; also the initial stack pointer.
    pub fn size_bytes(&self) -> u32 {
        (self.words.len() as u32) * WORD
    }

    fn index(&self, pc: u32, addr: u32) -> Result<usize, VmError> {
        if !addr.is_multiple_of(WORD) {
            return Err(VmError::Unaligned { pc, addr });
        }
        let index = (addr / WORD) as usize;
        if index >= self.words.len() {
            return Err(VmError::OutOfRange { pc, addr });
        }
        Ok(index)
    }

    /// Loads the word at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`VmError::Unaligned`] or [`VmError::OutOfRange`]; `pc` is only used
    /// to report the faulting instruction.
    pub fn load(&self, pc: u32, addr: u32) -> Result<i32, VmError> {
        Ok(self.words[self.index(pc, addr)?])
    }

    /// Stores `value` at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`VmError::Unaligned`] or [`VmError::OutOfRange`].
    pub fn store(&mut self, pc: u32, addr: u32, value: i32) -> Result<(), VmError> {
        let index = self.index(pc, addr)?;
        self.words[index] = value;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program_with_data(data: Vec<i32>) -> Program {
        Program {
            data,
            ..Program::new()
        }
    }

    #[test]
    fn loads_initial_data() {
        let mem = Memory::new(0x1000, &program_with_data(vec![7, 8, 9]));
        assert_eq!(mem.load(0, DATA_BASE).unwrap(), 7);
        assert_eq!(mem.load(0, DATA_BASE + 8).unwrap(), 9);
    }

    #[test]
    fn store_then_load() {
        let mut mem = Memory::new(0x1000, &program_with_data(vec![]));
        mem.store(0, 0x2000, -5).unwrap();
        assert_eq!(mem.load(0, 0x2000).unwrap(), -5);
    }

    #[test]
    fn rejects_unaligned() {
        let mem = Memory::new(0x1000, &program_with_data(vec![]));
        assert_eq!(
            mem.load(3, 0x2001),
            Err(VmError::Unaligned { pc: 3, addr: 0x2001 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut mem = Memory::new(0x1000, &program_with_data(vec![]));
        assert!(matches!(
            mem.store(1, 0x4000, 1),
            Err(VmError::OutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn data_must_fit() {
        let _ = Memory::new(0x400 + 1, &program_with_data(vec![0; 2]));
    }

    #[test]
    fn size_bytes_is_word_multiple() {
        let mem = Memory::new(0x1000, &program_with_data(vec![]));
        assert_eq!(mem.size_bytes(), 0x4000);
    }
}
