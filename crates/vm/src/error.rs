use std::fmt;

/// Runtime error raised by the interpreter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VmError {
    /// The program counter left the text segment.
    BadPc {
        /// The offending instruction index.
        pc: u32,
    },
    /// A load or store touched an address outside the simulated memory.
    OutOfRange {
        /// Instruction index performing the access.
        pc: u32,
        /// Offending byte address.
        addr: u32,
    },
    /// A load or store used an address that is not word-aligned.
    Unaligned {
        /// Instruction index performing the access.
        pc: u32,
        /// Offending byte address.
        addr: u32,
    },
    /// A computed jump or indirect call targeted a negative or out-of-range
    /// instruction index.
    BadJumpTarget {
        /// Instruction index of the jump.
        pc: u32,
        /// The register value used as target.
        target: i32,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VmError::BadPc { pc } => write!(f, "program counter {pc} outside text segment"),
            VmError::OutOfRange { pc, addr } => {
                write!(f, "memory access at {addr:#x} out of range (pc {pc})")
            }
            VmError::Unaligned { pc, addr } => {
                write!(f, "unaligned memory access at {addr:#x} (pc {pc})")
            }
            VmError::BadJumpTarget { pc, target } => {
                write!(f, "computed jump to invalid target {target} (pc {pc})")
            }
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(VmError::BadPc { pc: 9 }.to_string().contains("9"));
        assert!(VmError::OutOfRange { pc: 1, addr: 0xffff_0000 }
            .to_string()
            .contains("out of range"));
        assert!(VmError::Unaligned { pc: 1, addr: 3 }
            .to_string()
            .contains("unaligned"));
        assert!(VmError::BadJumpTarget { pc: 1, target: -2 }
            .to_string()
            .contains("-2"));
    }
}
