//! # clfp-vm
//!
//! A tracing interpreter for the clfp instruction set — the study's
//! equivalent of tracing MIPS binaries with `pixie`.
//!
//! The original experiment captured dynamic instruction traces (up to 100M
//! instructions) recording, for every executed instruction, its static
//! identity, the actual memory address of any load/store, and the actual
//! outcome of any conditional branch. That is exactly what [`Vm`] produces
//! as a stream of [`TraceEvent`]s: everything the limit analyzer in
//! `clfp-limits` consumes.
//!
//! ## Example
//!
//! ```
//! use clfp_isa::assemble;
//! use clfp_vm::{Vm, VmOptions};
//!
//! let program = assemble(
//!     ".text\nmain: li r8, 3\nloop: addi r8, r8, -1\n bgt r8, r0, loop\n halt",
//! )?;
//! let mut vm = Vm::new(&program, VmOptions::default());
//! let trace = vm.trace(u64::MAX)?;
//! // li + 3 × (addi, bgt) + halt
//! assert_eq!(trace.len(), 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cache;
mod error;
mod io;
mod memory;
mod source;
mod trace;
#[allow(clippy::module_inception)]
mod vm;

pub use cache::{CacheEntry, CacheFileError, FileTraceSource, TraceCache, TRACE_FORMAT_VERSION};
pub use error::VmError;
pub use io::TraceFileError;
pub use memory::Memory;
pub use source::{ProgramSource, TraceSource};
pub use trace::{SummaryBuilder, Trace, TraceEvent, TraceSummary};
pub use vm::{ExecOutcome, Vm, VmOptions};
