use clfp_isa::{Instr, Program};

/// One dynamically executed instruction.
///
/// An event identifies the static instruction by index (`pc`); the dynamic
/// facts the limit analyzer needs are the actual memory address of a
/// load/store, the actual outcome of a conditional branch, and the value
/// the instruction wrote to its destination register (the training input
/// for the value-prediction axis). This is the same information `pixie`
/// traces carried in the original study, plus produced values.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Static instruction index into the program's text segment.
    pub pc: u32,
    /// Byte address accessed, valid only for loads and stores.
    pub mem_addr: u32,
    /// Architectural value of the destination register after execution,
    /// valid only for instructions that define a register (0 otherwise).
    pub value: u32,
    /// Branch outcome, valid only for conditional branches.
    pub taken: bool,
}

impl TraceEvent {
    /// Looks up the static instruction this event executed.
    pub fn instr(&self, program: &Program) -> Instr {
        program.text[self.pc as usize]
    }
}

/// A captured instruction trace plus summary statistics.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates a trace from raw events.
    pub fn from_events(events: Vec<TraceEvent>) -> Trace {
        Trace { events }
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The raw events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Iterates over consecutive event pairs — every dynamic control
    /// transfer `(from, to)` the machine performed. The `clfp-verify`
    /// cross-checker walks these to assert each one is an edge the static
    /// CFG predicts.
    pub fn edges(&self) -> impl Iterator<Item = (&TraceEvent, &TraceEvent)> + '_ {
        self.events.windows(2).map(|pair| (&pair[0], &pair[1]))
    }

    /// Computes the instruction-mix summary of this trace.
    pub fn summarize(&self, program: &Program) -> TraceSummary {
        let mut builder = SummaryBuilder::new(program);
        builder.push_chunk(&self.events);
        builder.finish()
    }
}

/// A growable word-granular membership bitmap over memory word indices
/// (`mem_addr >> 2`). Replaces the `HashSet` the summary walk used for
/// `distinct_mem_words`: membership is one shift/mask instead of a hash,
/// and the footprint is one bit per word of the touched address range.
#[derive(Clone, Debug, Default)]
struct WordBitmap {
    bits: Vec<u64>,
    count: u64,
}

impl WordBitmap {
    /// Marks `word` as touched, counting it the first time only.
    #[inline]
    fn insert(&mut self, word: u32) {
        let index = (word / 64) as usize;
        if index >= self.bits.len() {
            self.bits.resize(index + 1, 0);
        }
        let mask = 1u64 << (word % 64);
        if self.bits[index] & mask == 0 {
            self.bits[index] |= mask;
            self.count += 1;
        }
    }
}

/// Incremental [`TraceSummary`] computation that composes per-chunk: feed
/// event chunks in trace order with [`SummaryBuilder::push_chunk`] and
/// [`SummaryBuilder::finish`] at the end. `Trace::summarize` is the
/// whole-trace special case (one chunk), so streaming pipelines get
/// bit-identical summaries without materializing the trace.
#[derive(Clone, Debug)]
pub struct SummaryBuilder<'a> {
    program: &'a Program,
    summary: TraceSummary,
    depth: u64,
    words: WordBitmap,
}

impl<'a> SummaryBuilder<'a> {
    /// Creates an empty builder for a program's trace.
    pub fn new(program: &'a Program) -> SummaryBuilder<'a> {
        SummaryBuilder {
            program,
            summary: TraceSummary::default(),
            depth: 0,
            words: WordBitmap::default(),
        }
    }

    /// Folds one event into the summary.
    #[inline]
    pub fn push(&mut self, event: &TraceEvent) {
        let summary = &mut self.summary;
        summary.total += 1;
        match event.instr(self.program) {
            Instr::Branch { .. } => {
                summary.cond_branches += 1;
                if event.taken {
                    summary.taken_branches += 1;
                }
            }
            Instr::JumpR { .. } => summary.computed_jumps += 1,
            Instr::Jump { .. } => summary.jumps += 1,
            Instr::Call { .. } | Instr::CallR { .. } => {
                summary.calls += 1;
                self.depth += 1;
                summary.max_call_depth = summary.max_call_depth.max(self.depth);
            }
            Instr::Ret => {
                summary.returns += 1;
                self.depth = self.depth.saturating_sub(1);
            }
            Instr::Lw { .. } => {
                summary.loads += 1;
                self.words.insert(event.mem_addr >> 2);
            }
            Instr::Sw { .. } => {
                summary.stores += 1;
                self.words.insert(event.mem_addr >> 2);
            }
            _ => summary.alu += 1,
        }
    }

    /// Folds a chunk of consecutive events into the summary.
    pub fn push_chunk(&mut self, events: &[TraceEvent]) {
        for event in events {
            self.push(event);
        }
    }

    /// The finished summary.
    pub fn finish(self) -> TraceSummary {
        let mut summary = self.summary;
        summary.distinct_mem_words = self.words.count;
        summary
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Trace {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

/// Instruction-mix statistics for a trace (input to the paper's Table 2).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct TraceSummary {
    /// Total dynamic instructions.
    pub total: u64,
    /// Conditional branches executed.
    pub cond_branches: u64,
    /// Conditional branches that were taken.
    pub taken_branches: u64,
    /// Computed jumps executed.
    pub computed_jumps: u64,
    /// Direct unconditional jumps executed.
    pub jumps: u64,
    /// Calls executed (direct and indirect).
    pub calls: u64,
    /// Returns executed.
    pub returns: u64,
    /// Word loads executed.
    pub loads: u64,
    /// Word stores executed.
    pub stores: u64,
    /// All remaining (ALU and immediate) instructions.
    pub alu: u64,
    /// Deepest dynamic call nesting observed (0 for leaf-only traces).
    pub max_call_depth: u64,
    /// Distinct memory words touched by loads and stores — the live
    /// footprint the analyzer's last-write tables must cover.
    pub distinct_mem_words: u64,
}

impl TraceSummary {
    /// Average dynamic instructions between conditional branches — the
    /// right-hand column of the paper's Table 2.
    pub fn instrs_between_branches(&self) -> f64 {
        if self.cond_branches == 0 {
            self.total as f64
        } else {
            self.total as f64 / self.cond_branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::assemble;

    #[test]
    fn summary_counts_classes() {
        let program = assemble(
            r#"
            .text
            main:
                li r8, 1
                beq r8, r0, skip
                lw r9, 0x1000(r0)
                sw r9, 0x1004(r0)
            skip:
                halt
            "#,
        )
        .unwrap();
        let events = vec![
            TraceEvent { pc: 0, mem_addr: 0, value: 0, taken: false },
            TraceEvent { pc: 1, mem_addr: 0, value: 0, taken: false },
            TraceEvent { pc: 2, mem_addr: 0x1000, value: 0, taken: false },
            TraceEvent { pc: 3, mem_addr: 0x1004, value: 0, taken: false },
            TraceEvent { pc: 4, mem_addr: 0, value: 0, taken: false },
        ];
        let trace = Trace::from_events(events);
        let summary = trace.summarize(&program);
        assert_eq!(summary.total, 5);
        assert_eq!(summary.cond_branches, 1);
        assert_eq!(summary.loads, 1);
        assert_eq!(summary.stores, 1);
        assert_eq!(summary.alu, 2); // li + halt both count as "other"
        assert_eq!(summary.max_call_depth, 0);
        assert_eq!(summary.distinct_mem_words, 2); // 0x1000 and 0x1004
    }

    #[test]
    fn summary_tracks_call_depth() {
        let program = assemble(
            r#"
            .text
            main:
                call outer
                halt
            outer:
                call inner
                ret
            inner:
                ret
            "#,
        )
        .unwrap();
        // main -> outer -> inner -> back out.
        let events: Trace = [0u32, 2, 4, 3, 1]
            .into_iter()
            .map(|pc| TraceEvent { pc, mem_addr: 0, value: 0, taken: false })
            .collect();
        let summary = events.summarize(&program);
        assert_eq!(summary.calls, 2);
        assert_eq!(summary.returns, 2);
        assert_eq!(summary.max_call_depth, 2);
        assert_eq!(summary.distinct_mem_words, 0);
    }

    #[test]
    fn instrs_between_branches() {
        let summary = TraceSummary {
            total: 60,
            cond_branches: 10,
            ..TraceSummary::default()
        };
        assert!((summary.instrs_between_branches() - 6.0).abs() < 1e-12);
        let no_branches = TraceSummary {
            total: 42,
            ..TraceSummary::default()
        };
        assert!((no_branches.instrs_between_branches() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn edges_walk_consecutive_pairs() {
        let trace: Trace = (0..3)
            .map(|pc| TraceEvent { pc, mem_addr: 0, value: 0, taken: false })
            .collect();
        let pairs: Vec<(u32, u32)> = trace.edges().map(|(a, b)| (a.pc, b.pc)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2)]);
        let single: Trace = std::iter::once(TraceEvent { pc: 0, mem_addr: 0, value: 0, taken: false })
            .collect();
        assert_eq!(single.edges().count(), 0);
    }

    #[test]
    fn summary_builder_composes_per_chunk() {
        let program = assemble(
            r#"
            .text
            main:
                li r8, 1
                beq r8, r0, skip
                lw r9, 0x1000(r0)
                sw r9, 0x1004(r0)
                call f
            skip:
                halt
            f:
                sw r9, 0x1000(r0)
                ret
            "#,
        )
        .unwrap();
        let events: Vec<TraceEvent> = vec![
            TraceEvent { pc: 0, mem_addr: 0, value: 0, taken: false },
            TraceEvent { pc: 1, mem_addr: 0, value: 0, taken: false },
            TraceEvent { pc: 2, mem_addr: 0x1000, value: 0, taken: false },
            TraceEvent { pc: 3, mem_addr: 0x1004, value: 0, taken: false },
            TraceEvent { pc: 4, mem_addr: 0, value: 0, taken: false },
            TraceEvent { pc: 6, mem_addr: 0x1000, value: 0, taken: false },
            TraceEvent { pc: 7, mem_addr: 0, value: 0, taken: false },
            TraceEvent { pc: 5, mem_addr: 0, value: 0, taken: false },
        ];
        let whole = Trace::from_events(events.clone()).summarize(&program);
        // Every chunking — including sizes that straddle the call and the
        // store revisiting 0x1000 — must produce the identical summary.
        for chunk in [1, 2, 3, 5, events.len()] {
            let mut builder = SummaryBuilder::new(&program);
            for part in events.chunks(chunk) {
                builder.push_chunk(part);
            }
            assert_eq!(builder.finish(), whole, "chunk size {chunk}");
        }
        assert_eq!(whole.distinct_mem_words, 2);
        assert_eq!(whole.max_call_depth, 1);
    }

    #[test]
    fn word_bitmap_counts_first_touch_only() {
        let mut bitmap = WordBitmap::default();
        for word in [0, 63, 64, 65, 0, 64, 1 << 20] {
            bitmap.insert(word);
        }
        assert_eq!(bitmap.count, 5);
    }

    #[test]
    fn trace_collects_from_iterator() {
        let trace: Trace = (0..3)
            .map(|pc| TraceEvent { pc, mem_addr: 0, value: 0, taken: false })
            .collect();
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.iter().count(), 3);
    }
}
