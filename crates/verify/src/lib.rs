//! Static lint diagnostics and static/dynamic consistency checks.
//!
//! The limit study leans on a tower of static analyses — CFG recovery,
//! dominators, control dependence, natural loops, induction variables,
//! inline/unroll ignore masks — and then *trusts* them while scheduling
//! millions of dynamic instructions. This crate is the trust-but-verify
//! layer. It has two halves:
//!
//! * [`lint_program`] — purely static diagnostics over a program and its
//!   [`StaticInfo`]: control transfers that leave `.text`, violations of
//!   the control-dependence structural invariant, unreachable blocks,
//!   reads of maybe-uninitialized registers, and dead stores.
//! * [`TraceChecks`] — a static/dynamic cross-checker that replays a
//!   captured [`Trace`] against the static model and asserts:
//!   1. every dynamic control transfer is an edge the static CFG predicts
//!      ([`TraceChecks::check_edges`]),
//!   2. every controlling branch selected by the analyzer's
//!      control-dependence resolution lies in the executed instruction's
//!      static reverse-dominance-frontier set
//!      ([`TraceChecks::check_cd_sources`]),
//!   3. every induction-variable increment deleted by the perfect-unrolling
//!      mask really updates its register exactly once per observed loop
//!      iteration ([`TraceChecks::check_unroll_masks`]), and
//!   4. the analyzer's sequential instruction count matches an independent
//!      recount of non-ignored trace events
//!      ([`TraceChecks::check_seq_count`]).
//!
//! Every finding is a [`Diagnostic`] with a [`DiagnosticKind`] and a fixed
//! [`Severity`]. Static-model/dynamic-behavior disagreements are always
//! [`Severity::Error`]: they mean the limit numbers cannot be trusted.
//! Code-quality findings (unreachable blocks, uninitialized reads, dead
//! stores) are warnings or notes about the *measured program*, not the
//! analyzer, and may be waived by a reporting layer.

#![deny(missing_docs)]

use std::collections::HashMap;
use std::fmt;

use clfp_cfg::{BlockId, CdViolation, Cfg, Liveness, MaybeUninit, StaticInfo};
use clfp_isa::{AluOp, Instr, Program, Reg};
use clfp_limits::{CdSource, PreparedTrace, Report, ValuePrediction};
use clfp_vm::{Trace, TraceEvent, TraceSource, VmError};

/// How bad a diagnostic is.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Informational: worth a look, never blocks anything.
    Info,
    /// Suspicious code in the measured program; does not invalidate the
    /// analysis.
    Warning,
    /// The static model and the dynamic behavior disagree, or the program
    /// is structurally broken. Limit results are not trustworthy.
    Error,
}

impl Severity {
    /// Lowercase name, as printed in diagnostics and reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a diagnostic is about. Each kind has a fixed [`Severity`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum DiagnosticKind {
    /// A branch, jump, or call targets an instruction outside `.text`.
    BadBranchTarget,
    /// A control-dependence entry is not a block-terminating conditional
    /// branch (the [`clfp_cfg::ControlDeps`] structural invariant).
    CdInvariant,
    /// A basic block can never execute.
    UnreachableBlock,
    /// An instruction may read a register no path has written.
    MaybeUninitRead,
    /// An instruction defines a register that is never read afterwards.
    DeadStore,
    /// A dynamic control transfer is not an edge in the static CFG.
    EdgeViolation,
    /// A resolved control-dependence source is not in the executed
    /// instruction's static RDF branch set.
    CdResolutionViolation,
    /// An induction increment deleted by perfect unrolling did not update
    /// its register exactly once per observed loop iteration.
    UnrollMaskViolation,
    /// The analyzer's sequential instruction count disagrees with an
    /// independent recount of non-ignored trace events.
    SeqCountMismatch,
    /// Two memory accesses dynamically touched the same word, but the
    /// static alias analysis classified the pair no-alias — the `Static`
    /// disambiguation schedule would miss a real dependence.
    AliasSoundnessViolation,
    /// A load's alias regions are never stored to by any instruction; the
    /// value can only come from initialized or zeroed data.
    NeverStoredRegionLoad,
    /// A store's alias regions are never loaded from by any instruction;
    /// at region granularity the stored value is provably unobserved.
    RegionDeadStore,
    /// A stronger value-prediction mode produced a *longer* critical path
    /// than a weaker one on the same machine — the nested-correct-set
    /// theorem (`perfect >= stride >= last-value >= off`) was violated,
    /// so a pipeline diverged from the publish rule.
    ValuePredMonotonicityViolation,
}

impl DiagnosticKind {
    /// Every kind, in severity-then-declaration order.
    pub const ALL: [DiagnosticKind; 13] = [
        DiagnosticKind::BadBranchTarget,
        DiagnosticKind::CdInvariant,
        DiagnosticKind::UnreachableBlock,
        DiagnosticKind::MaybeUninitRead,
        DiagnosticKind::DeadStore,
        DiagnosticKind::EdgeViolation,
        DiagnosticKind::CdResolutionViolation,
        DiagnosticKind::UnrollMaskViolation,
        DiagnosticKind::SeqCountMismatch,
        DiagnosticKind::AliasSoundnessViolation,
        DiagnosticKind::ValuePredMonotonicityViolation,
        DiagnosticKind::NeverStoredRegionLoad,
        DiagnosticKind::RegionDeadStore,
    ];

    /// The fixed severity of this kind.
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticKind::BadBranchTarget
            | DiagnosticKind::CdInvariant
            | DiagnosticKind::EdgeViolation
            | DiagnosticKind::CdResolutionViolation
            | DiagnosticKind::UnrollMaskViolation
            | DiagnosticKind::SeqCountMismatch
            | DiagnosticKind::AliasSoundnessViolation
            | DiagnosticKind::ValuePredMonotonicityViolation => Severity::Error,
            DiagnosticKind::UnreachableBlock | DiagnosticKind::MaybeUninitRead => {
                Severity::Warning
            }
            // Region-level findings are informational: globals may carry
            // compile-time initial data (never-stored loads are legal),
            // and MiniC has no I/O, so result arrays are naturally
            // region-dead.
            DiagnosticKind::DeadStore
            | DiagnosticKind::NeverStoredRegionLoad
            | DiagnosticKind::RegionDeadStore => Severity::Info,
        }
    }

    /// Stable kebab-case name, used in reports and waiver tables.
    pub fn name(self) -> &'static str {
        match self {
            DiagnosticKind::BadBranchTarget => "bad-branch-target",
            DiagnosticKind::CdInvariant => "cd-invariant",
            DiagnosticKind::UnreachableBlock => "unreachable-block",
            DiagnosticKind::MaybeUninitRead => "maybe-uninit-read",
            DiagnosticKind::DeadStore => "dead-store",
            DiagnosticKind::EdgeViolation => "edge-violation",
            DiagnosticKind::CdResolutionViolation => "cd-resolution-violation",
            DiagnosticKind::UnrollMaskViolation => "unroll-mask-violation",
            DiagnosticKind::SeqCountMismatch => "seq-count-mismatch",
            DiagnosticKind::AliasSoundnessViolation => "alias-soundness-violation",
            DiagnosticKind::ValuePredMonotonicityViolation => "valuepred-monotonicity-violation",
            DiagnosticKind::NeverStoredRegionLoad => "never-stored-region-load",
            DiagnosticKind::RegionDeadStore => "region-dead-store",
        }
    }
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint or cross-check finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// What the finding is about.
    pub kind: DiagnosticKind,
    /// The static instruction it anchors to, when one exists.
    pub pc: Option<u32>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    fn new(kind: DiagnosticKind, pc: Option<u32>, message: String) -> Diagnostic {
        Diagnostic { kind, pc, message }
    }

    /// The severity of this diagnostic (fixed per kind).
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity(), self.kind)?;
        if let Some(pc) = self.pc {
            write!(f, " at pc {pc}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Whether any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity() == Severity::Error)
}

/// Checks the value-prediction monotonicity theorem over one workload's
/// per-mode reports: because the predictors' correct sets nest
/// (off = ∅ ⊆ last-value ⊆ stride ⊆ perfect) and every scheduling fold is
/// a monotone max, a stronger mode must never produce a *longer* critical
/// path than a weaker one — pointwise, on every analyzed machine. A
/// violation ([`DiagnosticKind::ValuePredMonotonicityViolation`], always
/// [`Severity::Error`]) means a pipeline diverged from the publish rule.
///
/// `reports` pairs each mode with its report for the same workload and
/// machine list; order is irrelevant (modes are ranked internally by
/// their position in [`ValuePrediction::ALL`], weakest first). Sequential
/// instruction counts must also agree across modes — value speculation
/// changes timing, never instruction counts.
pub fn check_valuepred_monotonicity(
    reports: &[(ValuePrediction, &Report)],
) -> Vec<Diagnostic> {
    let rank = |mode: ValuePrediction| {
        ValuePrediction::ALL
            .iter()
            .position(|&m| m == mode)
            .expect("every mode is in ALL")
    };
    let mut ranked: Vec<&(ValuePrediction, &Report)> = reports.iter().collect();
    ranked.sort_by_key(|(mode, _)| rank(*mode));
    let mut out = Vec::new();
    for pair in ranked.windows(2) {
        let (weak_mode, weak) = *pair[0];
        let (strong_mode, strong) = *pair[1];
        if weak.seq_instrs != strong.seq_instrs {
            out.push(Diagnostic::new(
                DiagnosticKind::ValuePredMonotonicityViolation,
                None,
                format!(
                    "sequential instruction count changed across value-prediction \
                     modes: {} under {}, {} under {}",
                    weak.seq_instrs,
                    weak_mode.name(),
                    strong.seq_instrs,
                    strong_mode.name()
                ),
            ));
        }
        for (w, s) in weak.results.iter().zip(&strong.results) {
            if w.kind != s.kind {
                out.push(Diagnostic::new(
                    DiagnosticKind::ValuePredMonotonicityViolation,
                    None,
                    format!(
                        "machine lists disagree across value-prediction modes: \
                         {} vs {}",
                        w.kind, s.kind
                    ),
                ));
                continue;
            }
            if s.cycles > w.cycles {
                out.push(Diagnostic::new(
                    DiagnosticKind::ValuePredMonotonicityViolation,
                    None,
                    format!(
                        "{}: {} value prediction took {} cycles, beating the \
                         stronger {} mode's {} — the nested-correct-set \
                         theorem is violated",
                        w.kind,
                        weak_mode.name(),
                        w.cycles,
                        strong_mode.name(),
                        s.cycles
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Static lint pass
// ---------------------------------------------------------------------------

/// Runs every static diagnostic over a program and its analyses.
///
/// Diagnostics come out grouped by kind in [`DiagnosticKind::ALL`] order,
/// and by pc within a kind.
///
/// # Example
///
/// ```
/// use clfp_cfg::StaticInfo;
/// use clfp_isa::assemble;
/// use clfp_verify::{has_errors, lint_program};
///
/// let program = assemble(
///     "
///     .text
///     main:
///         li r8, 1
///         halt
///     orphan:
///         addi r8, r8, 1
///         halt
///     ",
/// )
/// .unwrap();
/// let info = StaticInfo::analyze(&program);
/// let diags = lint_program(&program, &info);
/// // The orphaned block is flagged, but only as a warning: the measured
/// // program is suspicious, the analysis is not invalidated.
/// assert!(diags.iter().any(|d| d.kind.name() == "unreachable-block"));
/// assert!(!has_errors(&diags));
/// ```
pub fn lint_program(program: &Program, info: &StaticInfo) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_branch_targets(program, &mut out);
    lint_control_deps(program, info, &mut out);
    lint_unreachable(program, &info.cfg, &mut out);
    lint_maybe_uninit(program, &info.cfg, &mut out);
    lint_dead_stores(program, &info.cfg, &mut out);
    lint_regions(program, info, &mut out);
    out
}

/// Direct control transfers must stay inside `.text` (the same rule as
/// [`Program::validate`], but reporting every offender, not just the
/// first).
fn lint_branch_targets(program: &Program, out: &mut Vec<Diagnostic>) {
    let len = program.text.len() as u32;
    for (pc, instr) in program.text.iter().enumerate() {
        let target = match *instr {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Call { target } => {
                target
            }
            _ => continue,
        };
        if target >= len {
            out.push(Diagnostic::new(
                DiagnosticKind::BadBranchTarget,
                Some(pc as u32),
                format!("`{instr}` targets pc {target}, outside .text (length {len})"),
            ));
        }
    }
    if program.entry >= len && len > 0 {
        out.push(Diagnostic::new(
            DiagnosticKind::BadBranchTarget,
            None,
            format!("entry point {} is outside .text (length {len})", program.entry),
        ));
    }
}

fn lint_control_deps(program: &Program, info: &StaticInfo, out: &mut Vec<Diagnostic>) {
    if let Err(violation) = info.deps.check_detailed(&info.cfg, &program.text) {
        out.push(cd_diagnostic(violation));
    }
}

/// Maps a [`CdViolation`] to a diagnostic. Split out so the mapping is
/// testable without forging a `ControlDeps`.
fn cd_diagnostic(violation: CdViolation) -> Diagnostic {
    Diagnostic::new(
        DiagnosticKind::CdInvariant,
        Some(violation.branch_pc),
        violation.to_string(),
    )
}

/// Over-approximates the set of blocks reachable from the entry point by
/// following CFG edges, direct call targets, and code addresses
/// materialized by `li` (potential indirect-call targets — any immediate
/// that happens to equal a code-symbol address counts, so reachability is
/// conservative and unreachable reports are trustworthy).
fn reachable_blocks(program: &Program, cfg: &Cfg) -> Vec<bool> {
    let mut reached = vec![false; cfg.blocks().len()];
    if program.text.is_empty() {
        return reached;
    }
    let len = program.text.len();
    let mut work = vec![cfg.block_of_instr(program.entry)];
    while let Some(id) = work.pop() {
        if std::mem::replace(&mut reached[id.index()], true) {
            continue;
        }
        let block = cfg.block(id);
        for pc in block.instrs() {
            match program.text[pc as usize] {
                Instr::Call { target } => work.push(cfg.block_of_instr(target)),
                Instr::Li { imm, .. }
                    if imm >= 0
                        && (imm as usize) < len
                        && program.symbols.code_symbols().any(|(_, at)| at == imm as u32) =>
                {
                    work.push(cfg.block_of_instr(imm as u32));
                }
                _ => {}
            }
        }
        work.extend(block.succs.iter().copied());
    }
    reached
}

fn lint_unreachable(program: &Program, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    let reached = reachable_blocks(program, cfg);
    for (index, block) in cfg.blocks().iter().enumerate() {
        if reached[index] {
            continue;
        }
        let context = program
            .symbols
            .nearest_code_label(block.start)
            .map(|(name, _)| format!(" (in `{name}`)"))
            .unwrap_or_default();
        out.push(Diagnostic::new(
            DiagnosticKind::UnreachableBlock,
            Some(block.start),
            format!(
                "block b{index} (pc {}..{}){context} is unreachable from the entry point",
                block.start, block.end
            ),
        ));
    }
}

fn lint_maybe_uninit(program: &Program, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    let uninit = MaybeUninit::compute(program, cfg);
    for read in uninit.reads() {
        out.push(Diagnostic::new(
            DiagnosticKind::MaybeUninitRead,
            Some(read.pc),
            format!(
                "`{}` reads {}, which may be uninitialized on some path",
                program.text[read.pc as usize], read.reg
            ),
        ));
    }
}

fn lint_dead_stores(program: &Program, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    let liveness = Liveness::compute(program, cfg);
    for (pc, reg) in liveness.dead_defs(program, cfg) {
        out.push(Diagnostic::new(
            DiagnosticKind::DeadStore,
            Some(pc),
            format!(
                "`{}` defines {reg}, but the value is never read",
                program.text[pc as usize]
            ),
        ));
    }
}

/// Region-level memory lints over the interprocedural alias analysis:
/// loads whose every reachable region is never stored to (the value can
/// only be initial data), and stores whose every reachable region is
/// never loaded from (provably unobserved at region granularity).
fn lint_regions(program: &Program, info: &StaticInfo, out: &mut Vec<Diagnostic>) {
    let alias = &info.alias;
    let stored = alias.stored_regions(program);
    let loaded = alias.loaded_regions(program);
    let describe = |pc: u32| {
        let regions: Vec<String> = alias.accesses[pc as usize]
            .as_ref()
            .map(|access| {
                access
                    .regions
                    .iter()
                    .map(|r| alias.universe.describe(r as u32, &info.cfg))
                    .collect()
            })
            .unwrap_or_default();
        regions.join(", ")
    };
    for (pc, instr) in program.text.iter().enumerate() {
        let pc = pc as u32;
        let Some(access) = alias.accesses[pc as usize].as_ref() else {
            continue;
        };
        match instr {
            Instr::Lw { .. } => {
                let mut probe = access.regions.clone();
                probe.intersect_with(&stored);
                if probe.is_empty() {
                    out.push(Diagnostic::new(
                        DiagnosticKind::NeverStoredRegionLoad,
                        Some(pc),
                        format!(
                            "`{}` loads from {{{}}}, which no instruction stores to; the \
                             value can only be initial data",
                            program.text[pc as usize],
                            describe(pc)
                        ),
                    ));
                }
            }
            Instr::Sw { .. } => {
                let mut probe = access.regions.clone();
                probe.intersect_with(&loaded);
                if probe.is_empty() {
                    out.push(Diagnostic::new(
                        DiagnosticKind::RegionDeadStore,
                        Some(pc),
                        format!(
                            "`{}` stores to {{{}}}, which no instruction loads from; the \
                             value is unobserved at region granularity",
                            program.text[pc as usize],
                            describe(pc)
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Static/dynamic cross-checker
// ---------------------------------------------------------------------------

/// Replays captured traces against the static model.
///
/// The `StaticInfo` must have been computed for the *same* program the
/// trace was captured from (e.g. via
/// [`clfp_limits::Analyzer::static_info`]).
pub struct TraceChecks<'a> {
    program: &'a Program,
    info: &'a StaticInfo,
}

/// One induction increment watched by [`TraceChecks::check_unroll_masks`].
struct Monitor {
    loop_index: usize,
    reg: Reg,
    increment: u32,
}

/// [`TraceChecks::build_monitors`]'s result: the monitors plus lookup
/// indices by increment PC and by loop-header block.
type MonitorIndex = (
    Vec<Monitor>,
    HashMap<u32, Vec<usize>>,
    HashMap<BlockId, Vec<usize>>,
);

impl<'a> TraceChecks<'a> {
    /// Creates a checker over a program and its static analyses.
    pub fn new(program: &'a Program, info: &'a StaticInfo) -> TraceChecks<'a> {
        TraceChecks { program, info }
    }

    /// Asserts every dynamic control transfer is one the static CFG
    /// predicts: branches go to their target or fall through, straight-line
    /// code advances by one pc (crossing only recorded fall-through edges),
    /// calls land on procedure entries and return to the instruction after
    /// the call, computed jumps land on block leaders, and nothing follows
    /// a halt.
    pub fn check_edges(&self, trace: &Trace) -> Vec<Diagnostic> {
        let mut walker = EdgeWalker::new(self);
        for event in trace.iter() {
            walker.push(*event);
        }
        walker.finish()
    }

    /// [`TraceChecks::check_edges`] over a streamed [`TraceSource`]: the
    /// checker's carried state (the shadow return stack and the previous
    /// event) crosses chunk boundaries, so trace memory stays O(chunk).
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from producing the stream.
    pub fn check_edges_source(
        &self,
        source: &dyn TraceSource,
        chunk_events: usize,
    ) -> Result<Vec<Diagnostic>, VmError> {
        let mut walker = EdgeWalker::new(self);
        source.stream(chunk_events, &mut |chunk| {
            for event in chunk {
                walker.push(*event);
            }
        })?;
        Ok(walker.finish())
    }

    /// Checks the control transfer from one event to the pc of the next.
    fn check_edge(
        &self,
        from: &TraceEvent,
        next: u32,
        shadow: &mut Vec<u32>,
        out: &mut Vec<Diagnostic>,
    ) {
        let cfg = &self.info.cfg;
        let text = &self.program.text;
        let pc = from.pc;
        let mut violation = |pc: u32, message: String| {
            out.push(Diagnostic::new(DiagnosticKind::EdgeViolation, Some(pc), message));
        };
        {
            match text[pc as usize] {
                Instr::Branch { target, .. } => {
                    let expect = if from.taken { target } else { pc + 1 };
                    if next != expect {
                        violation(
                            pc,
                            format!(
                                "branch ({}) continued at pc {next}, expected pc {expect}",
                                if from.taken { "taken" } else { "not taken" }
                            ),
                        );
                    } else if !self.is_static_edge(pc, next) {
                        violation(
                            pc,
                            format!("branch edge to pc {next} is missing from the static CFG"),
                        );
                    }
                }
                Instr::Jump { target } => {
                    if next != target {
                        violation(pc, format!("jump continued at pc {next}, expected pc {target}"));
                    } else if !self.is_static_edge(pc, next) {
                        violation(
                            pc,
                            format!("jump edge to pc {next} is missing from the static CFG"),
                        );
                    }
                }
                Instr::Call { target } => {
                    if next != target {
                        violation(pc, format!("call continued at pc {next}, expected pc {target}"));
                    } else if !self.is_proc_entry(next) {
                        violation(
                            pc,
                            format!("call target pc {next} is not a static procedure entry"),
                        );
                    }
                    shadow.push(pc + 1);
                }
                Instr::CallR { .. } => {
                    // The target is only known dynamically; it must still be
                    // a procedure entry the CFG discovered.
                    if !self.is_proc_entry(next) {
                        violation(
                            pc,
                            format!(
                                "indirect call landed at pc {next}, which is not a static \
                                 procedure entry"
                            ),
                        );
                    }
                    shadow.push(pc + 1);
                }
                Instr::Ret => {
                    // An unmatched return (empty shadow stack) can only
                    // happen on a trace that starts mid-call; skip it.
                    if let Some(expect) = shadow.pop() {
                        if next != expect {
                            violation(
                                pc,
                                format!("return continued at pc {next}, expected pc {expect}"),
                            );
                        }
                    }
                }
                Instr::JumpR { .. } => {
                    // Computed jumps are static procedure exits with no
                    // recorded successors; the weakest sane claim is that
                    // they land on a block leader.
                    let block = cfg.block_of_instr(next);
                    if cfg.block(block).start != next {
                        violation(
                            pc,
                            format!("computed jump landed mid-block at pc {next}"),
                        );
                    }
                }
                Instr::Halt => {
                    violation(pc, format!("halt was followed by an event at pc {next}"));
                }
                _ => {
                    if next != pc + 1 {
                        violation(
                            pc,
                            format!(
                                "straight-line instruction continued at pc {next}, expected \
                                 pc {}",
                                pc + 1
                            ),
                        );
                    } else {
                        let bf = cfg.block_of_instr(pc);
                        let bt = cfg.block_of_instr(next);
                        if bf != bt && !cfg.block(bf).succs.contains(&bt) {
                            violation(
                                pc,
                                format!(
                                    "fall-through edge to pc {next} is missing from the \
                                     static CFG"
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Asserts every control-dependence source the analyzer resolved to a
    /// concrete branch instance lies in the executed instruction's static
    /// RDF branch set. `sources` is the stream from
    /// [`PreparedTrace::cd_sources`], aligned with `trace`.
    pub fn check_cd_sources(
        &self,
        trace: &Trace,
        sources: impl IntoIterator<Item = CdSource>,
    ) -> Vec<Diagnostic> {
        let sources: Vec<CdSource> = sources.into_iter().collect();
        let mut out = Vec::new();
        if sources.len() != trace.len() {
            out.push(Diagnostic::new(
                DiagnosticKind::CdResolutionViolation,
                None,
                format!(
                    "control-dependence stream has {} entries for {} trace events",
                    sources.len(),
                    trace.len()
                ),
            ));
        }
        for (event, source) in trace.iter().zip(&sources) {
            if let CdSource::Branch(branch_pc) = *source {
                let block = self.info.cfg.block_of_instr(event.pc);
                if !self.info.deps.rdf_branches(block).contains(&branch_pc) {
                    out.push(Diagnostic::new(
                        DiagnosticKind::CdResolutionViolation,
                        Some(event.pc),
                        format!(
                            "control dependence resolved to branch pc {branch_pc}, which is \
                             not in the RDF of block b{}",
                            block.index()
                        ),
                    ));
                }
            }
        }
        out
    }

    /// Asserts every induction increment deleted by the perfect-unrolling
    /// mask really updated its register exactly once per observed loop
    /// iteration.
    ///
    /// Iteration boundaries are observed at latch-to-header transfers; a
    /// header entered any other way starts a fresh counting window (so a
    /// trailing partial iteration, or a loop whose latch is a call block,
    /// is conservatively not checked). Counters are keyed by call depth so
    /// a loop re-entered through recursion is counted per invocation.
    pub fn check_unroll_masks(&self, trace: &Trace) -> Vec<Diagnostic> {
        let mut walker = UnrollWalker::new(self);
        for event in trace.iter() {
            walker.push(*event);
        }
        walker.finish()
    }

    /// [`TraceChecks::check_unroll_masks`] over a streamed
    /// [`TraceSource`]; per-invocation iteration counters and the call
    /// depth carry across chunk boundaries.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from producing the stream.
    pub fn check_unroll_masks_source(
        &self,
        source: &dyn TraceSource,
        chunk_events: usize,
    ) -> Result<Vec<Diagnostic>, VmError> {
        let mut walker = UnrollWalker::new(self);
        source.stream(chunk_events, &mut |chunk| {
            for event in chunk {
                walker.push(*event);
            }
        })?;
        Ok(walker.finish())
    }

    /// Builds the increment monitors for [`UnrollWalker`], flagging
    /// increments missing from the unroll ignore mask as it goes.
    fn build_monitors(&self, out: &mut Vec<Diagnostic>) -> MonitorIndex {
        let info = self.info;
        let cfg = &info.cfg;
        let text = &self.program.text;

        // One monitor per (loop, induction register): the unique in-loop
        // increment `addi/subi r, r, c` the unroll mask deletes.
        let mut monitors: Vec<Monitor> = Vec::new();
        let mut by_increment: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut by_header: HashMap<BlockId, Vec<usize>> = HashMap::new();
        for (loop_index, l) in info.loops.loops().iter().enumerate() {
            for &reg in &info.induction.induction_regs()[loop_index] {
                let mut increment = None;
                for &b in &l.blocks {
                    for pc in cfg.block(b).instrs() {
                        if let Instr::AluI { op: AluOp::Add | AluOp::Sub, rd, rs, imm } =
                            text[pc as usize]
                        {
                            if rd == reg && rs == reg && imm != 0 {
                                increment = Some(pc);
                            }
                        }
                    }
                }
                let Some(increment) = increment else { continue };
                if !info.masks.unroll_ignored(increment) {
                    out.push(Diagnostic::new(
                        DiagnosticKind::UnrollMaskViolation,
                        Some(increment),
                        format!(
                            "induction increment `{}` of the loop at b{} is not in the \
                             unroll ignore mask",
                            text[increment as usize],
                            l.header.index()
                        ),
                    ));
                    continue;
                }
                let index = monitors.len();
                monitors.push(Monitor { loop_index, reg, increment });
                by_increment.entry(increment).or_default().push(index);
                by_header.entry(l.header).or_default().push(index);
            }
        }
        (monitors, by_increment, by_header)
    }

    /// Asserts the analyzer's sequential instruction count for the given
    /// unrolling setting equals an independent recount of trace events not
    /// covered by the ignore masks. Assumes perfect inlining was enabled
    /// (the paper's only configuration; the masks apply the inline set
    /// unconditionally).
    pub fn check_seq_count(
        &self,
        trace: &Trace,
        unrolling: bool,
        reported_seq: u64,
    ) -> Vec<Diagnostic> {
        let masks = &self.info.masks;
        let counted = trace
            .iter()
            .filter(|event| !masks.ignored(event.pc, unrolling))
            .count() as u64;
        seq_count_diags(counted, reported_seq, unrolling)
    }

    /// [`TraceChecks::check_seq_count`] over a streamed [`TraceSource`].
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from producing the stream.
    pub fn check_seq_count_source(
        &self,
        source: &dyn TraceSource,
        chunk_events: usize,
        unrolling: bool,
        reported_seq: u64,
    ) -> Result<Vec<Diagnostic>, VmError> {
        let masks = &self.info.masks;
        let mut counted = 0u64;
        source.stream(chunk_events, &mut |chunk| {
            counted += chunk
                .iter()
                .filter(|event| !masks.ignored(event.pc, unrolling))
                .count() as u64;
        })?;
        Ok(seq_count_diags(counted, reported_seq, unrolling))
    }

    /// Asserts the static alias classification is sound against observed
    /// behavior: every dynamic address conflict (two accesses touching
    /// the same word, at least one a store) must involve a pair the
    /// analysis classifies may- or must-alias. A no-alias verdict on a
    /// conflicting pair means the `Static` disambiguation schedule missed
    /// a real dependence — always an [`Severity::Error`].
    ///
    /// Conflicts are observed between each access and the *latest*
    /// earlier access to the same word, matching the last-write semantics
    /// the scheduler keys on; each offending static pair is reported
    /// once.
    pub fn check_alias_soundness(&self, trace: &Trace) -> Vec<Diagnostic> {
        let mut walker = AliasWalker::new(self);
        for event in trace.iter() {
            walker.push(*event);
        }
        walker.finish()
    }

    /// [`TraceChecks::check_alias_soundness`] over a streamed
    /// [`TraceSource`]: the per-word last-access maps and the reported-pair
    /// dedup set carry across chunk boundaries.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from producing the stream.
    pub fn check_alias_soundness_source(
        &self,
        source: &dyn TraceSource,
        chunk_events: usize,
    ) -> Result<Vec<Diagnostic>, VmError> {
        let mut walker = AliasWalker::new(self);
        source.stream(chunk_events, &mut |chunk| {
            for event in chunk {
                walker.push(*event);
            }
        })?;
        Ok(walker.finish())
    }

    /// Runs every dynamic cross-check against a prepared trace: CFG edges,
    /// control-dependence resolution, unroll-mask iteration counts,
    /// alias-classification soundness, and the sequential instruction
    /// count for both unrolling settings.
    ///
    /// Note this re-runs the configured machine passes once per unrolling
    /// setting to obtain the reported counts; callers that already hold
    /// reports should invoke the individual checks instead.
    pub fn check_dynamic(&self, trace: &Trace, prepared: &PreparedTrace<'_, '_>) -> Vec<Diagnostic> {
        let mut out = self.check_edges(trace);
        out.extend(self.check_cd_sources(trace, prepared.cd_sources()));
        out.extend(self.check_unroll_masks(trace));
        out.extend(self.check_alias_soundness(trace));
        for unrolling in [false, true] {
            let report = prepared.report_with_unrolling(unrolling);
            out.extend(self.check_seq_count(trace, unrolling, report.seq_instrs));
        }
        out
    }

    fn is_static_edge(&self, from_pc: u32, to_pc: u32) -> bool {
        let cfg = &self.info.cfg;
        let from = cfg.block_of_instr(from_pc);
        let to = cfg.block_of_instr(to_pc);
        cfg.block(to).start == to_pc && cfg.block(from).succs.contains(&to)
    }

    fn is_proc_entry(&self, pc: u32) -> bool {
        let cfg = &self.info.cfg;
        let block = cfg.block_of_instr(pc);
        cfg.block(block).start == pc
            && cfg.procs()[cfg.proc_of_block(block).index()].entry == block
    }
}

/// Builds the [`DiagnosticKind::SeqCountMismatch`] diagnostic when the
/// recount disagrees with the analyzer (shared by the slice and streaming
/// checkers).
fn seq_count_diags(counted: u64, reported_seq: u64, unrolling: bool) -> Vec<Diagnostic> {
    if counted == reported_seq {
        return Vec::new();
    }
    vec![Diagnostic::new(
        DiagnosticKind::SeqCountMismatch,
        None,
        format!(
            "analyzer reported {reported_seq} sequential instructions with unrolling \
             {}, independent recount found {counted}",
            if unrolling { "on" } else { "off" }
        ),
    )]
}

/// Incremental CFG-edge checker: [`TraceChecks::check_edges`] fed one
/// event at a time. The shadow return-address stack (calls push `pc + 1`,
/// returns must come back to the matching push) and the previous event
/// carry across chunk boundaries.
struct EdgeWalker<'c, 'a> {
    checks: &'c TraceChecks<'a>,
    shadow: Vec<u32>,
    prev: Option<TraceEvent>,
    out: Vec<Diagnostic>,
}

impl<'c, 'a> EdgeWalker<'c, 'a> {
    fn new(checks: &'c TraceChecks<'a>) -> EdgeWalker<'c, 'a> {
        EdgeWalker {
            checks,
            shadow: Vec::new(),
            prev: None,
            out: Vec::new(),
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if let Some(from) = self.prev {
            self.checks
                .check_edge(&from, event.pc, &mut self.shadow, &mut self.out);
        }
        self.prev = Some(event);
    }

    fn finish(self) -> Vec<Diagnostic> {
        self.out
    }
}

/// Incremental unroll-mask checker: [`TraceChecks::check_unroll_masks`]
/// fed one event at a time. Carries the per-(monitor, call depth)
/// iteration counters, the call depth, and the previous pc.
struct UnrollWalker<'c, 'a> {
    checks: &'c TraceChecks<'a>,
    monitors: Vec<Monitor>,
    by_increment: HashMap<u32, Vec<usize>>,
    by_header: HashMap<BlockId, Vec<usize>>,
    counters: HashMap<(usize, usize), u32>,
    depth: usize,
    prev: Option<u32>,
    out: Vec<Diagnostic>,
}

impl<'c, 'a> UnrollWalker<'c, 'a> {
    fn new(checks: &'c TraceChecks<'a>) -> UnrollWalker<'c, 'a> {
        let mut out = Vec::new();
        let (monitors, by_increment, by_header) = checks.build_monitors(&mut out);
        UnrollWalker {
            checks,
            monitors,
            by_increment,
            by_header,
            counters: HashMap::new(),
            depth: 0,
            prev: None,
            out,
        }
    }

    /// Replay step: count increment executions per (monitor, call depth),
    /// checking the count at every latch-to-header back edge.
    fn push(&mut self, event: TraceEvent) {
        if self.monitors.is_empty() {
            return;
        }
        let info = self.checks.info;
        let cfg = &info.cfg;
        let text = &self.checks.program.text;
        let pc = event.pc;
        let block = cfg.block_of_instr(pc);
        if cfg.block(block).start == pc {
            if let Some(watchers) = self.by_header.get(&block) {
                for &index in watchers {
                    let monitor = &self.monitors[index];
                    let l = &info.loops.loops()[monitor.loop_index];
                    let from_latch = self.prev.is_some_and(|p| {
                        let pb = cfg.block_of_instr(p);
                        p == cfg.block(pb).terminator() && l.latches.contains(&pb)
                    });
                    let slot = self.counters.entry((index, self.depth)).or_insert(0);
                    if from_latch && *slot != 1 {
                        self.out.push(Diagnostic::new(
                            DiagnosticKind::UnrollMaskViolation,
                            Some(monitor.increment),
                            format!(
                                "induction increment `{}` (pc {}) of {} in the loop at \
                                 b{} ran {} times in one iteration, expected exactly once",
                                text[monitor.increment as usize],
                                monitor.increment,
                                monitor.reg,
                                l.header.index(),
                                slot
                            ),
                        ));
                    }
                    *slot = 0;
                }
            }
        }
        if let Some(watchers) = self.by_increment.get(&pc) {
            for &index in watchers {
                *self.counters.entry((index, self.depth)).or_insert(0) += 1;
            }
        }
        match text[pc as usize] {
            Instr::Call { .. } | Instr::CallR { .. } => self.depth += 1,
            Instr::Ret => self.depth = self.depth.saturating_sub(1),
            _ => {}
        }
        self.prev = Some(pc);
    }

    fn finish(self) -> Vec<Diagnostic> {
        self.out
    }
}

/// Incremental alias-soundness checker:
/// [`TraceChecks::check_alias_soundness`] fed one event at a time.
/// Carries the per-word latest load/store pcs and the set of already
/// reported static pairs.
struct AliasWalker<'c, 'a> {
    checks: &'c TraceChecks<'a>,
    /// Latest store pc per accessed word address.
    last_store: HashMap<u32, u32>,
    /// Latest load pc per accessed word address.
    last_load: HashMap<u32, u32>,
    /// Static `(earlier pc, later pc)` pairs already reported.
    reported: std::collections::HashSet<(u32, u32)>,
    out: Vec<Diagnostic>,
}

impl<'c, 'a> AliasWalker<'c, 'a> {
    fn new(checks: &'c TraceChecks<'a>) -> AliasWalker<'c, 'a> {
        AliasWalker {
            checks,
            last_store: HashMap::new(),
            last_load: HashMap::new(),
            reported: std::collections::HashSet::new(),
            out: Vec::new(),
        }
    }

    fn push(&mut self, event: TraceEvent) {
        let (is_load, is_store) = match event.instr(self.checks.program) {
            Instr::Lw { .. } => (true, false),
            Instr::Sw { .. } => (false, true),
            _ => return,
        };
        let addr = event.mem_addr;
        if is_load {
            if let Some(&store_pc) = self.last_store.get(&addr) {
                self.check_pair(store_pc, event.pc, addr);
            }
            self.last_load.insert(addr, event.pc);
        }
        if is_store {
            if let Some(&store_pc) = self.last_store.get(&addr) {
                self.check_pair(store_pc, event.pc, addr);
            }
            if let Some(&load_pc) = self.last_load.get(&addr) {
                self.check_pair(load_pc, event.pc, addr);
            }
            self.last_store.insert(addr, event.pc);
        }
    }

    /// Reports the pair if the analysis claims the accesses cannot alias.
    fn check_pair(&mut self, earlier_pc: u32, later_pc: u32, addr: u32) {
        if !self.reported.insert((earlier_pc, later_pc)) {
            return;
        }
        let alias = &self.checks.info.alias;
        if alias.classify(earlier_pc, later_pc) == Some(clfp_cfg::AliasKind::No) {
            let text = &self.checks.program.text;
            self.out.push(Diagnostic::new(
                DiagnosticKind::AliasSoundnessViolation,
                Some(later_pc),
                format!(
                    "`{}` (pc {later_pc}) and `{}` (pc {earlier_pc}) both touched address \
                     {addr:#x}, but the alias analysis classified the pair no-alias",
                    text[later_pc as usize], text[earlier_pc as usize]
                ),
            ));
        }
    }

    fn finish(self) -> Vec<Diagnostic> {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_cfg::CdViolationReason;
    use clfp_isa::assemble;
    use clfp_limits::{AnalysisConfig, Analyzer, MachineKind};
    use clfp_vm::{TraceEvent, Vm, VmOptions};

    const CLEAN: &str = r#"
        .text
        main:
            li a0, 3
            call f
            halt
        f:
            add v0, a0, a0
            ret
    "#;

    const LOOPY: &str = r#"
        .text
        main:
            li r8, 0
            li r9, 5
        loop:
            add r10, r8, r8    # pc 2: header body work
            addi r8, r8, 1     # pc 3: induction increment
            blt r8, r9, loop   # pc 4: latch branch
            halt
    "#;

    fn setup(source: &str) -> (Program, StaticInfo) {
        let program = assemble(source).unwrap();
        let info = StaticInfo::analyze(&program);
        (program, info)
    }

    fn trace_of(program: &Program) -> Trace {
        let mut vm = Vm::new(program, VmOptions::default());
        vm.trace(1_000_000).unwrap()
    }

    fn kinds(diags: &[Diagnostic]) -> Vec<DiagnosticKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn clean_program_lints_clean() {
        let (program, info) = setup(CLEAN);
        let diags = lint_program(&program, &info);
        assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
    }

    #[test]
    fn bad_branch_target_flagged() {
        // Lint the mutated text against analyses of the valid program;
        // the branch-target pass only reads the text.
        let (mut program, info) = setup(CLEAN);
        program.text[1] = Instr::Jump { target: 999 };
        let diags = lint_program(&program, &info);
        let bad: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.kind == DiagnosticKind::BadBranchTarget)
            .collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].pc, Some(1));
        assert_eq!(bad[0].severity(), Severity::Error);
        assert!(bad[0].message.contains("999"));
    }

    #[test]
    fn unreachable_block_warned() {
        let (program, info) = setup(
            r#"
            .text
            main:
                li r8, 1
                halt
            orphan:
                addi r8, r8, 1
                halt
            "#,
        );
        let diags = lint_program(&program, &info);
        let dead: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.kind == DiagnosticKind::UnreachableBlock)
            .collect();
        assert!(!dead.is_empty());
        assert_eq!(dead[0].severity(), Severity::Warning);
        assert!(dead[0].message.contains("unreachable"));
        assert!(dead[0].message.contains("orphan"), "{}", dead[0].message);
    }

    #[test]
    fn maybe_uninit_read_warned() {
        let (program, info) = setup(
            r#"
            .text
            main:
                add r9, r8, r8
                halt
            "#,
        );
        let diags = lint_program(&program, &info);
        let reads: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.kind == DiagnosticKind::MaybeUninitRead)
            .collect();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].pc, Some(0));
        assert_eq!(reads[0].severity(), Severity::Warning);
    }

    #[test]
    fn dead_store_noted() {
        let (program, info) = setup(
            r#"
            .text
            main:
                li r8, 1
                li r8, 2
                halt
            "#,
        );
        let diags = lint_program(&program, &info);
        let dead: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.kind == DiagnosticKind::DeadStore)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].pc, Some(0));
        assert_eq!(dead[0].severity(), Severity::Info);
    }

    #[test]
    fn cd_violation_maps_to_error_diagnostic() {
        let violation = CdViolation {
            block: BlockId(3),
            branch_pc: 7,
            reason: CdViolationReason::NotCondBranch,
        };
        let diag = cd_diagnostic(violation);
        assert_eq!(diag.kind, DiagnosticKind::CdInvariant);
        assert_eq!(diag.pc, Some(7));
        assert_eq!(diag.severity(), Severity::Error);
    }

    #[test]
    fn edge_checks_accept_real_traces() {
        let (program, info) = setup(
            r#"
            .text
            main:
                li r8, 0
                li r9, 5
            loop:
                addi r8, r8, 1
                call bump
                blt r8, r9, loop
                halt
            bump:
                add r10, r8, r0
                ret
            "#,
        );
        let trace = trace_of(&program);
        let checks = TraceChecks::new(&program, &info);
        assert_eq!(checks.check_edges(&trace), Vec::new());
        assert_eq!(checks.check_unroll_masks(&trace), Vec::new());
    }

    #[test]
    fn edge_checks_flag_corrupted_trace() {
        let (program, info) = setup(CLEAN);
        let trace = trace_of(&program);
        let mut events: Vec<TraceEvent> = trace.events().to_vec();
        // Event 1 should be the straight-line successor of event 0.
        events[1].pc += 1;
        let corrupted = Trace::from_events(events);
        let checks = TraceChecks::new(&program, &info);
        let diags = checks.check_edges(&corrupted);
        assert!(kinds(&diags).contains(&DiagnosticKind::EdgeViolation), "{diags:?}");
        assert!(has_errors(&diags));
    }

    #[test]
    fn cd_resolution_cross_check() {
        let (program, info) = setup(LOOPY);
        let config = AnalysisConfig {
            max_instrs: 10_000,
            machines: vec![MachineKind::Base],
            ..AnalysisConfig::default()
        };
        let analyzer = Analyzer::new(&program, config).unwrap();
        let trace = trace_of(&program);
        let prepared = analyzer.prepare(&trace);
        let checks = TraceChecks::new(&program, &info);

        // The analyzer's own resolution is consistent with the static RDF.
        assert_eq!(checks.check_cd_sources(&trace, prepared.cd_sources()), Vec::new());

        // A stream pinning everything on a non-RDF pc is flagged.
        let bogus = vec![CdSource::Branch(0); trace.len()];
        let diags = checks.check_cd_sources(&trace, bogus);
        assert!(kinds(&diags).contains(&DiagnosticKind::CdResolutionViolation));

        // A mis-aligned stream is flagged even when its entries are benign.
        let short = checks.check_cd_sources(&trace, Vec::new());
        assert_eq!(short.len(), 1);
        assert_eq!(short[0].kind, DiagnosticKind::CdResolutionViolation);
    }

    #[test]
    fn unroll_mask_counts_induction_updates() {
        let (program, info) = setup(LOOPY);
        let trace = trace_of(&program);
        let checks = TraceChecks::new(&program, &info);
        assert_eq!(checks.check_unroll_masks(&trace), Vec::new());

        // Duplicate the first execution of the increment (pc 3): the
        // iteration now updates r8 twice, which unrolling must not hide.
        let mut events: Vec<TraceEvent> = trace.events().to_vec();
        let at = events.iter().position(|e| e.pc == 3).unwrap();
        events.insert(at, events[at]);
        let corrupted = Trace::from_events(events);
        let diags = checks.check_unroll_masks(&corrupted);
        assert_eq!(kinds(&diags), vec![DiagnosticKind::UnrollMaskViolation]);
        assert_eq!(diags[0].pc, Some(3));
        assert!(diags[0].message.contains("2 times"), "{}", diags[0].message);
    }

    #[test]
    fn seq_count_cross_check() {
        let (program, _) = setup(LOOPY);
        let config = AnalysisConfig {
            max_instrs: 10_000,
            machines: vec![MachineKind::Base],
            ..AnalysisConfig::default()
        };
        let analyzer = Analyzer::new(&program, config).unwrap();
        let trace = trace_of(&program);
        let prepared = analyzer.prepare(&trace);
        let checks = TraceChecks::new(&program, analyzer.static_info());
        for unrolling in [false, true] {
            let seq = prepared.report_with_unrolling(unrolling).seq_instrs;
            assert_eq!(checks.check_seq_count(&trace, unrolling, seq), Vec::new());
            let diags = checks.check_seq_count(&trace, unrolling, seq + 1);
            assert_eq!(kinds(&diags), vec![DiagnosticKind::SeqCountMismatch]);
        }
    }

    #[test]
    fn streamed_checks_match_slice_checks() {
        // Clean and corrupted traces: the chunked checkers must produce
        // exactly the slice checkers' diagnostics, across chunk sizes that
        // straddle call/branch boundaries.
        let (program, info) = setup(LOOPY);
        let checks = TraceChecks::new(&program, &info);
        let clean = trace_of(&program);
        let mut events: Vec<TraceEvent> = clean.events().to_vec();
        let at = events.iter().position(|e| e.pc == 3).unwrap();
        events.insert(at, events[at]);
        let corrupted = Trace::from_events(events);

        for trace in [&clean, &corrupted] {
            for chunk in [1, 7, 4096] {
                assert_eq!(
                    checks.check_edges_source(trace, chunk).unwrap(),
                    checks.check_edges(trace),
                    "edges chunk={chunk}"
                );
                assert_eq!(
                    checks.check_unroll_masks_source(trace, chunk).unwrap(),
                    checks.check_unroll_masks(trace),
                    "unroll chunk={chunk}"
                );
                assert_eq!(
                    checks.check_alias_soundness_source(trace, chunk).unwrap(),
                    checks.check_alias_soundness(trace),
                    "alias chunk={chunk}"
                );
                for unrolling in [false, true] {
                    for reported in [10u64, 11] {
                        assert_eq!(
                            checks
                                .check_seq_count_source(trace, chunk, unrolling, reported)
                                .unwrap(),
                            checks.check_seq_count(trace, unrolling, reported),
                            "seq chunk={chunk}"
                        );
                    }
                }
            }
        }
    }

    /// Two distinct globals, one stored and one loaded: the ingredients
    /// for both a forged soundness violation and the one-way region
    /// lints.
    const SPLIT_TRAFFIC: &str = r#"
        .data
        a: .space 64
        b: .space 64
        .text
        main:
            li r8, 1
            sw r8, 0x1000(r0)
            lw r9, 0x1040(r0)
            halt
        "#;

    #[test]
    fn alias_soundness_flags_forged_conflict() {
        let (program, info) = setup(SPLIT_TRAFFIC);
        let trace = trace_of(&program);
        let checks = TraceChecks::new(&program, &info);
        assert_eq!(checks.check_alias_soundness(&trace), Vec::new());

        // Forge the load to hit `a` at run time: the analysis still
        // claims the pair cannot alias, which the walker must flag.
        let mut events: Vec<TraceEvent> = trace.events().to_vec();
        let at = events
            .iter()
            .position(|e| matches!(e.instr(&program), Instr::Lw { .. }))
            .unwrap();
        events[at].mem_addr = 0x1000;
        let forged = Trace::from_events(events);
        let diags = checks.check_alias_soundness(&forged);
        assert_eq!(kinds(&diags), vec![DiagnosticKind::AliasSoundnessViolation]);
        assert!(has_errors(&diags));
        assert!(diags[0].message.contains("no-alias"), "{}", diags[0].message);

        // The streamed walker agrees chunk-for-chunk on both traces.
        for trace in [&trace, &forged] {
            for chunk in [1, 7, 4096] {
                assert_eq!(
                    checks.check_alias_soundness_source(trace, chunk).unwrap(),
                    checks.check_alias_soundness(trace),
                    "alias chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn region_lints_note_one_way_traffic() {
        let (program, info) = setup(SPLIT_TRAFFIC);
        let diags = lint_program(&program, &info);
        let kinds = kinds(&diags);
        assert!(kinds.contains(&DiagnosticKind::RegionDeadStore), "{diags:?}");
        assert!(kinds.contains(&DiagnosticKind::NeverStoredRegionLoad), "{diags:?}");
        assert!(!has_errors(&diags));
    }

    #[test]
    fn workload_is_clean_end_to_end() {
        let workload = clfp_workloads::by_name("scan").unwrap();
        let program = workload.compile().unwrap();
        let config = AnalysisConfig {
            max_instrs: 30_000,
            machines: vec![MachineKind::Base],
            ..AnalysisConfig::default()
        };
        let analyzer = Analyzer::new(&program, config).unwrap();
        let mut vm = Vm::new(&program, VmOptions::default());
        let trace = vm.trace(30_000).unwrap();
        let prepared = analyzer.prepare(&trace);
        let checks = TraceChecks::new(&program, analyzer.static_info());
        let diags = checks.check_dynamic(&trace, &prepared);
        assert!(diags.is_empty(), "cross-check violations: {diags:?}");

        let static_diags = lint_program(&program, analyzer.static_info());
        assert!(
            !has_errors(&static_diags),
            "static errors: {static_diags:?}"
        );
    }

    /// A predictable induction chain (stride-friendly), an irregular
    /// squaring chain, and a serial accumulator: enough structure to
    /// strictly separate the value-prediction modes on the base machine.
    const VALUE_CHAINS: &str = r#"
        .text
        main:
            li r8, 0
            li r9, 40
            li r11, 0
        loop:
            addi r8, r8, 1     # stride-predictable induction
            mul r10, r8, r8    # irregular: only perfect predicts squares
            add r11, r11, r10  # serial accumulator on the mul output
            blt r8, r9, loop
            halt
    "#;

    #[test]
    fn valuepred_monotonicity_check_accepts_real_reports_and_flags_forgeries() {
        let (program, _) = setup(VALUE_CHAINS);
        let trace = trace_of(&program);
        let modes = ValuePrediction::ALL;
        let reports: Vec<Report> = modes
            .iter()
            .map(|&mode| {
                let config = AnalysisConfig {
                    max_instrs: 10_000,
                    machines: vec![MachineKind::Base],
                    value_prediction: mode,
                    ..AnalysisConfig::default()
                };
                let analyzer = Analyzer::new(&program, config).unwrap();
                analyzer.prepare(&trace).report_with_unrolling(false)
            })
            .collect();

        // The honest reports satisfy the theorem, in any input order.
        let mut labelled: Vec<(ValuePrediction, &Report)> =
            modes.iter().copied().zip(&reports).collect();
        assert_eq!(check_valuepred_monotonicity(&labelled), Vec::new());
        labelled.reverse();
        assert_eq!(check_valuepred_monotonicity(&labelled), Vec::new());

        // The workload strictly separates off from perfect, so swapping
        // those two labels forges a theorem violation the check must flag.
        let off = &reports[0];
        let perfect = &reports[modes.len() - 1];
        assert!(
            perfect.results[0].cycles < off.results[0].cycles,
            "workload fails to separate modes: perfect {} vs off {}",
            perfect.results[0].cycles,
            off.results[0].cycles
        );
        let forged = [
            (ValuePrediction::Off, perfect),
            (ValuePrediction::Perfect, off),
        ];
        let diags = check_valuepred_monotonicity(&forged);
        assert_eq!(
            kinds(&diags),
            vec![DiagnosticKind::ValuePredMonotonicityViolation]
        );
        assert!(has_errors(&diags));
        assert!(diags[0].message.contains("perfect"), "{}", diags[0].message);
    }
}
