//! Property tests for the iterative dataflow solver: on randomly generated
//! programs (straight-line and arbitrarily branchy, including irreducible
//! loops), the converged [`Liveness`] and [`ReachingDefs`] solutions must
//! satisfy their defining per-block equations, and solving must be
//! deterministic.
//!
//! The per-block recomputation here is an independent reimplementation of
//! the gen/kill transfer from the public `Instr::def`/`Instr::uses`
//! surface, so a solver bug and a test bug would have to coincide exactly
//! to slip through.

// Requires the external `proptest` crate: gated off by default so the
// workspace builds and tests fully offline. Enable with
// `--features external-tests` after restoring the proptest dev-dependency.
#![cfg(feature = "external-tests")]

use std::collections::BTreeSet;

use clfp_cfg::{Cfg, DefSite, Liveness, ReachingDefs};
use clfp_isa::{assemble, Program, Reg};
use proptest::prelude::*;

/// A small register pool keeps collisions (kills) frequent.
const POOL: [u8; 5] = [8, 9, 10, 11, 12];

#[derive(Clone, Debug)]
enum Line {
    /// `add rd, rs, rt` over the pool.
    Alu(u8, u8, u8),
    /// `addi rd, rs, imm` over the pool.
    AluI(u8, u8, i32),
    /// `beq rs, rt, L<target>` — any target, forward or backward.
    Branch(u8, u8, usize),
}

fn arb_line(lines: usize) -> impl Strategy<Value = Line> {
    let reg = || proptest::sample::select(POOL.to_vec());
    prop_oneof![
        3 => (reg(), reg(), reg()).prop_map(|(d, s, t)| Line::Alu(d, s, t)),
        3 => (reg(), reg(), -8i32..8).prop_map(|(d, s, i)| Line::AluI(d, s, i)),
        2 => (reg(), reg(), 0..lines).prop_map(|(s, t, k)| Line::Branch(s, t, k)),
    ]
}

/// Renders lines as labelled assembly: every instruction gets a label so
/// branches can target any pc, giving arbitrary (even irreducible) CFGs.
fn render(lines: &[Line]) -> String {
    let mut out = String::from(".text\nmain:\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str(&format!("L{i}:\n"));
        match *line {
            Line::Alu(d, s, t) => out.push_str(&format!("    add r{d}, r{s}, r{t}\n")),
            Line::AluI(d, s, imm) => out.push_str(&format!("    addi r{d}, r{s}, {imm}\n")),
            Line::Branch(s, t, target) => {
                out.push_str(&format!("    beq r{s}, r{t}, L{target}\n"))
            }
        }
    }
    out.push_str(&format!("L{}:\n    halt\n", lines.len()));
    out
}

fn arb_program() -> impl Strategy<Value = Program> {
    (1usize..24)
        .prop_flat_map(|n| proptest::collection::vec(arb_line(n + 1), n))
        .prop_map(|lines| assemble(&render(&lines)).expect("generated assembly is valid"))
}

fn reg_set(regs: impl Iterator<Item = Reg>) -> BTreeSet<Reg> {
    regs.collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        ..ProptestConfig::default()
    })]

    /// The converged liveness solution satisfies the backward per-block
    /// equation `live_in = gen ∪ (live_out \ kill)`, recomputed here by an
    /// independent backward walk over `Instr::def`/`Instr::uses`.
    #[test]
    fn liveness_satisfies_block_equations(program in arb_program()) {
        let cfg = Cfg::build(&program);
        let live = Liveness::compute(&program, &cfg);
        for (index, block) in cfg.blocks().iter().enumerate() {
            let id = clfp_cfg::BlockId(index as u32);
            let mut expect = reg_set(live.live_out(id));
            for pc in (block.start..block.end).rev() {
                let instr = program.text[pc as usize];
                if let Some(def) = instr.def() {
                    expect.remove(&def);
                }
                for reg in instr.uses() {
                    expect.insert(reg);
                }
            }
            prop_assert_eq!(reg_set(live.live_in(id)), expect, "block b{}", index);
        }
    }

    /// The converged reaching-definitions solution satisfies the forward
    /// per-block equation `reach_out = gen ∪ (reach_in \ kill)`.
    #[test]
    fn reaching_defs_satisfy_block_equations(program in arb_program()) {
        let cfg = Cfg::build(&program);
        let reach = ReachingDefs::compute(&program, &cfg);
        for (index, block) in cfg.blocks().iter().enumerate() {
            let id = clfp_cfg::BlockId(index as u32);
            let mut expect: BTreeSet<DefSite> =
                reach.reaching_in(id).collect();
            for pc in block.start..block.end {
                let instr = program.text[pc as usize];
                let Some(def) = instr.def() else { continue };
                expect.retain(|site| site.reg != def);
                expect.insert(DefSite { pc, reg: def });
            }
            let got: BTreeSet<DefSite> = reach.reaching_out(id).collect();
            prop_assert_eq!(got, expect, "block b{}", index);
        }
    }

    /// Every reaching definition is a real definition site, and solving is
    /// deterministic.
    #[test]
    fn reaching_defs_are_sound_and_deterministic(program in arb_program()) {
        let cfg = Cfg::build(&program);
        let reach = ReachingDefs::compute(&program, &cfg);
        let sites: BTreeSet<DefSite> = reach.sites().iter().copied().collect();
        for (index, _) in cfg.blocks().iter().enumerate() {
            let id = clfp_cfg::BlockId(index as u32);
            for site in reach.reaching_in(id) {
                prop_assert!(sites.contains(&site));
                prop_assert_eq!(
                    program.text[site.pc as usize].def(),
                    Some(site.reg)
                );
            }
        }
        let again = ReachingDefs::compute(&program, &cfg);
        for (index, _) in cfg.blocks().iter().enumerate() {
            let id = clfp_cfg::BlockId(index as u32);
            let a: Vec<DefSite> = reach.reaching_in(id).collect();
            let b: Vec<DefSite> = again.reaching_in(id).collect();
            prop_assert_eq!(a, b);
        }
    }
}
