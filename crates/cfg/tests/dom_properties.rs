//! Property tests for the dominance machinery: the Cooper–Harvey–Kennedy
//! implementation is checked against naive definitional algorithms on
//! random digraphs, and control dependence is checked against its textbook
//! definition on random structured programs.

// Requires the external `proptest` crate: gated off by default so the
// workspace builds and tests fully offline. Enable with
// `--features external-tests` after restoring the proptest dev-dependency.
#![cfg(feature = "external-tests")]

use clfp_cfg::dom::{Digraph, DomTree};
use clfp_cfg::{Cfg, ControlDeps};
use clfp_isa::assemble;
use proptest::prelude::*;

/// Naive dominators: `a` dominates `b` iff removing `a` makes `b`
/// unreachable from the root (or a == b).
fn naive_dominates(graph: &Digraph, root: usize, a: usize, b: usize) -> bool {
    if a == b {
        return true;
    }
    // BFS from root avoiding `a`.
    let mut visited = vec![false; graph.len()];
    let mut queue = vec![root];
    if root != a {
        visited[root] = true;
    } else {
        return reachable(graph, root, b); // removing the root: b unreachable unless b == root
    }
    while let Some(node) = queue.pop() {
        for &succ in graph.succs(node) {
            if succ != a && !visited[succ] {
                visited[succ] = true;
                queue.push(succ);
            }
        }
    }
    // a dominates b iff b was reachable at all but is not without a.
    reachable(graph, root, b) && !visited[b]
}

fn reachable(graph: &Digraph, from: usize, to: usize) -> bool {
    let mut visited = vec![false; graph.len()];
    let mut queue = vec![from];
    visited[from] = true;
    while let Some(node) = queue.pop() {
        if node == to {
            return true;
        }
        for &succ in graph.succs(node) {
            if !visited[succ] {
                visited[succ] = true;
                queue.push(succ);
            }
        }
    }
    false
}

fn arb_digraph() -> impl Strategy<Value = Digraph> {
    (2usize..12).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 0..(n * 3)).prop_map(move |edges| {
            let mut graph = Digraph::new(n);
            // Ensure some connectivity from the root.
            for i in 1..n {
                graph.add_edge(i - 1, i);
            }
            for (from, to) in edges {
                graph.add_edge(from, to);
            }
            graph
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    #[test]
    fn chk_dominators_match_naive(graph in arb_digraph()) {
        let dom = DomTree::compute(&graph, 0);
        for a in 0..graph.len() {
            for b in 0..graph.len() {
                if !reachable(&graph, 0, b) {
                    continue;
                }
                let fast = dom.dominates(a, b);
                let naive = naive_dominates(&graph, 0, a, b);
                prop_assert_eq!(
                    fast, naive,
                    "dominates({}, {}) mismatch (fast {} vs naive {})",
                    a, b, fast, naive
                );
            }
        }
    }

    #[test]
    fn idom_is_the_closest_strict_dominator(graph in arb_digraph()) {
        let dom = DomTree::compute(&graph, 0);
        for node in 1..graph.len() {
            if !reachable(&graph, 0, node) {
                prop_assert_eq!(dom.idom(node), None);
                continue;
            }
            let Some(idom) = dom.idom(node) else {
                // Only the root lacks an idom among reachable nodes.
                prop_assert_eq!(node, 0);
                continue;
            };
            // The idom strictly dominates the node...
            prop_assert!(naive_dominates(&graph, 0, idom, node));
            // ...and every other strict dominator dominates the idom.
            for other in 0..graph.len() {
                if other != node && other != idom && naive_dominates(&graph, 0, other, node) {
                    prop_assert!(
                        naive_dominates(&graph, 0, other, idom),
                        "strict dominator {} of {} must dominate idom {}",
                        other, node, idom
                    );
                }
            }
        }
    }

    #[test]
    fn dominance_frontier_matches_definition(graph in arb_digraph()) {
        let dom = DomTree::compute(&graph, 0);
        let frontier = dom.dominance_frontier(&graph);
        #[allow(clippy::needless_range_loop)]
        for node in 0..graph.len() {
            if !dom.is_reachable(node) {
                continue;
            }
            // DF(node) = { f : node dominates a pred of f, node does not
            // strictly dominate f }.
            for f in 0..graph.len() {
                if !dom.is_reachable(f) {
                    continue;
                }
                let dominates_a_pred = graph
                    .preds(f)
                    .iter()
                    .any(|&p| dom.is_reachable(p) && dom.dominates(node, p));
                let strictly_dominates = node != f && dom.dominates(node, f);
                let expected = dominates_a_pred && !strictly_dominates;
                let actual = frontier[node].contains(&f);
                prop_assert_eq!(
                    actual, expected,
                    "DF({}) membership of {} mismatch", node, f
                );
            }
        }
    }
}

/// Control dependence on a random structured program must match the
/// textbook definition: block B is control dependent on branch block A iff
/// A has a successor S such that B postdominates S (reflexively) but B
/// does not strictly postdominate A.
#[test]
fn control_dependence_matches_definition_on_programs() {
    let sources = [
        // Diamond in a loop, with break.
        r#"
        .text
        main:
            li r8, 4
        loop:
            beq r9, r0, odd
            addi r10, r10, 1
            j join
        odd:
            addi r11, r11, 1
        join:
            addi r8, r8, -1
            bgt r8, r0, loop
            halt
        "#,
        // Nested conditionals with early return shape.
        r#"
        .text
        main:
            bgt r8, r0, a
            halt
        a:
            bgt r9, r0, b
            j c
        b:
            addi r10, r10, 1
        c:
            bgt r10, r0, d
            nop
        d:
            halt
        "#,
    ];
    for source in sources {
        let program = assemble(source).unwrap();
        let cfg = Cfg::build(&program);
        let deps = ControlDeps::compute(&cfg);
        assert!(deps.check(&cfg, &program.text));

        // Build the forward graph over blocks plus virtual exit.
        let n = cfg.blocks().len();
        let exit = n;
        let mut graph = Digraph::new(n + 1);
        for (bi, block) in cfg.blocks().iter().enumerate() {
            if block.succs.is_empty() {
                graph.add_edge(bi, exit);
            } else {
                for succ in &block.succs {
                    graph.add_edge(bi, succ.index());
                }
            }
        }
        let reversed = graph.reversed();
        let pdom = DomTree::compute(&reversed, exit);

        for b in 0..n {
            for a in 0..n {
                if cfg.blocks()[a].succs.len() != 2 {
                    continue; // only two-way branches are CD sources
                }
                let expected = cfg.blocks()[a].succs.iter().any(|s| {
                    pdom.dominates(b, s.index())
                }) && !(b != a && pdom.dominates(b, a));
                let branch_pc = cfg.blocks()[a].terminator();
                let actual = deps
                    .rdf_branches(clfp_cfg::BlockId(b as u32))
                    .contains(&branch_pc);
                assert_eq!(
                    actual, expected,
                    "block {b} control-dependence on branch block {a} mismatch in:\n{source}"
                );
            }
        }
    }
}
