//! Interprocedural memory alias analysis over abstract regions.
//!
//! The limit study assumes *perfectly disambiguated memory*: the
//! scheduler's last-write table is keyed by exact dynamic address, so only
//! true store-to-load chains serialize. A real compiler scheduling the same
//! code statically can only prove what an alias analysis proves. This
//! module computes that static approximation from object code alone:
//!
//! * a whole-program [`CallGraph`] (direct calls plus indirect calls
//!   through address-taken procedures, mirroring the CFG's
//!   `li`-materialized code-symbol rule);
//! * an abstract-region partition of the address space
//!   ([`RegionUniverse`]): one region per data symbol (statically disjoint
//!   address ranges), one region per procedure's stack frame, a small set
//!   of hashed heap partitions for addresses outside both, and a
//!   null-guard region below [`DATA_BASE`];
//! * a flow-insensitive, Andersen-style points-to analysis over those
//!   regions: `li` of a data address seeds a register's points-to set,
//!   add/sub propagate it (pointer arithmetic stays within a region),
//!   loads read region *contents*, stores write them (tracking pointers
//!   spilled through memory), and call/return edges copy argument
//!   (`a0..a3`) and result (`v0`/`v1`) registers across procedures —
//!   per-procedure constraint solving fans out over [`std::thread::scope`]
//!   workers, iterating rounds against a frozen snapshot until the global
//!   fixpoint;
//! * a per-memory-instruction [`MemAccess`] record — the set of regions
//!   the access may touch (a [`BitSet`] over the region universe) and, for
//!   absolute addressing, the exact address — from which
//!   [`AliasAnalysis::classify`] answers no-alias / may-alias / must-alias
//!   for every static load/store pair, and
//!   [`AliasAnalysis::scheduler_class`] derives the merged last-write
//!   classes the `Static` disambiguation mode keys its scheduler on;
//! * an address-taken / escape analysis ([`AliasAnalysis::escaping`]):
//!   stack frames whose region flows into stored values, call arguments,
//!   or returned values.
//!
//! ## Soundness model
//!
//! The classification is judged against *dynamic* traces by the
//! `clfp-verify` soundness gate: every observed address conflict (two
//! accesses to the same word, at least one a store) must fall within a
//! statically may- or must-aliased pair. Two conservatisms make that hold:
//!
//! * **Frame reuse.** Stack frames of different procedures (and different
//!   activations of the same procedure) reuse addresses over time, so any
//!   two stack regions are treated as may-aliased, and all stack regions
//!   share one scheduler class.
//! * **Unknown pointers go to top.** An access through a register with an
//!   empty points-to set is assumed to reach every region.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use clfp_isa::{AluOp, Instr, Program, Reg, DATA_BASE};

use crate::dataflow::BitSet;
use crate::{Cfg, ProcId};

/// Number of hashed heap partitions: addresses outside the data segment
/// and not reached through `sp`/`fp` hash into one of these by 64-byte
/// line. MiniC has no allocator, so these stay empty on compiled
/// workloads; hand-written assembly scratch addresses land here.
const HEAP_PARTS: u32 = 4;

/// Cap on distinct global regions; programs with more data symbols fold
/// symbols into regions round-robin (still sound: folding only merges).
const MAX_GLOBAL_REGIONS: u32 = 64;

/// The abstract-region partition of the simulated address space.
///
/// Region ids are dense: `0` is the null-guard region (addresses below
/// [`DATA_BASE`]), then one region per data symbol (capped at
/// `MAX_GLOBAL_REGIONS` = 64, folding round-robin beyond), then
/// `HEAP_PARTS` = 4 hashed heap partitions, then one stack-frame region per
/// procedure.
#[derive(Clone, Debug)]
pub struct RegionUniverse {
    /// Data symbols as `(start, end, region_id, name)`, sorted by start.
    globals: Vec<(u32, u32, u32, String)>,
    /// First heap-partition region id.
    heap_base: u32,
    /// First stack-frame region id.
    stack_base: u32,
    /// Total region count.
    len: u32,
}

impl RegionUniverse {
    /// Builds the region partition for a program's data symbols and the
    /// CFG's procedure count.
    pub fn build(program: &Program, cfg: &Cfg) -> RegionUniverse {
        let mut by_addr: BTreeMap<u32, (u32, String)> = BTreeMap::new();
        for (name, item) in program.symbols.data_symbols() {
            by_addr.insert(item.addr, (item.size.max(4), name.to_string()));
        }
        let global_regions = (by_addr.len() as u32).min(MAX_GLOBAL_REGIONS);
        let globals: Vec<(u32, u32, u32, String)> = by_addr
            .into_iter()
            .enumerate()
            .map(|(index, (start, (size, name)))| {
                (start, start + size, 1 + (index as u32 % MAX_GLOBAL_REGIONS), name)
            })
            .collect();
        let heap_base = 1 + global_regions;
        let stack_base = heap_base + HEAP_PARTS;
        RegionUniverse {
            globals,
            heap_base,
            stack_base,
            len: stack_base + cfg.procs().len() as u32,
        }
    }

    /// Total number of regions.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the universe is empty (never: the guard region always
    /// exists).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The region containing a concrete byte address: the null guard,
    /// a data symbol's range, or a hashed heap partition. Stack addresses
    /// cannot be recognized statically — callers map `sp`/`fp`-relative
    /// accesses to [`RegionUniverse::stack_region`] instead.
    pub fn region_of_addr(&self, addr: u32) -> u32 {
        if addr < DATA_BASE {
            return 0;
        }
        let at = self.globals.partition_point(|&(start, ..)| start <= addr);
        if at > 0 {
            let (_, end, region, _) = self.globals[at - 1];
            if addr < end {
                return region;
            }
        }
        self.heap_base + (addr >> 6) % HEAP_PARTS
    }

    /// The stack-frame region of a procedure.
    pub fn stack_region(&self, proc: ProcId) -> u32 {
        self.stack_base + proc.0
    }

    /// Whether a region is a stack frame.
    pub fn is_stack(&self, region: u32) -> bool {
        region >= self.stack_base
    }

    /// Human-readable region name (`low`, a data symbol, `heap#k`, or
    /// `stack:<proc>`), for diagnostics and the DOT overlay.
    pub fn describe(&self, region: u32, cfg: &Cfg) -> String {
        if region == 0 {
            return "low".to_string();
        }
        if region < self.heap_base {
            let names: Vec<&str> = self
                .globals
                .iter()
                .filter(|&&(_, _, r, _)| r == region)
                .map(|(_, _, _, name)| name.as_str())
                .collect();
            return names.join("+");
        }
        if region < self.stack_base {
            return format!("heap#{}", region - self.heap_base);
        }
        let proc = &cfg.procs()[(region - self.stack_base) as usize];
        format!("stack:{}", proc.name.as_deref().unwrap_or("anon"))
    }
}

/// The whole-program call graph over the CFG's procedure partition.
///
/// Direct calls contribute exact edges; indirect calls (`callr`)
/// conservatively target every address-taken procedure — the same
/// `li`-materialized code-symbol rule the CFG uses to discover procedure
/// entries.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// Per-procedure callee lists (deduplicated, ascending).
    pub callees: Vec<Vec<ProcId>>,
    /// Per-procedure caller lists (deduplicated, ascending).
    pub callers: Vec<Vec<ProcId>>,
    /// Whether each procedure's address is taken (an indirect-call
    /// target).
    pub address_taken: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph for a program and its CFG.
    pub fn build(program: &Program, cfg: &Cfg) -> CallGraph {
        let procs = cfg.procs().len();
        let text = &program.text;
        let mut address_taken = vec![false; procs];
        for instr in text {
            if let Instr::Li { imm, .. } = *instr {
                if imm >= 0
                    && (imm as usize) < text.len()
                    && program.symbols.code_symbols().any(|(_, at)| at == imm as u32)
                {
                    address_taken[cfg.proc_of_instr(imm as u32).index()] = true;
                }
            }
        }
        let taken: Vec<ProcId> = (0..procs)
            .filter(|&p| address_taken[p])
            .map(|p| ProcId(p as u32))
            .collect();
        let mut callees: Vec<Vec<ProcId>> = vec![Vec::new(); procs];
        let mut callers: Vec<Vec<ProcId>> = vec![Vec::new(); procs];
        for (pi, proc) in cfg.procs().iter().enumerate() {
            for &block in &proc.blocks {
                for pc in cfg.block(block).instrs() {
                    match text[pc as usize] {
                        Instr::Call { target } => {
                            callees[pi].push(cfg.proc_of_instr(target));
                        }
                        Instr::CallR { .. } => callees[pi].extend(taken.iter().copied()),
                        _ => {}
                    }
                }
            }
        }
        for (pi, list) in callees.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            for &callee in list.iter() {
                callers[callee.index()].push(ProcId(pi as u32));
            }
        }
        for list in &mut callers {
            list.sort_unstable();
            list.dedup();
        }
        CallGraph {
            callees,
            callers,
            address_taken,
        }
    }
}

/// Static alias relation between two memory instructions.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AliasKind {
    /// The accesses provably touch disjoint memory.
    No,
    /// The accesses may touch overlapping memory.
    May,
    /// The accesses provably touch the same word.
    Must,
}

/// What the analysis proved about one static load or store.
#[derive(Clone, Debug)]
pub struct MemAccess {
    /// Regions the access may touch.
    pub regions: BitSet,
    /// The exact byte address, when the access uses absolute addressing
    /// (`offset(r0)`).
    pub exact_addr: Option<u32>,
    /// Whether any touched region is a stack frame (precomputed for the
    /// frame-reuse rule).
    pub touches_stack: bool,
    /// Whether the points-to set of the base register was empty and the
    /// access fell back to the full region universe.
    pub unknown: bool,
}

/// One load/store site, kept symbolic so access regions can be
/// re-evaluated against the evolving points-to sets.
#[derive(Copy, Clone, Debug)]
struct MemSite {
    base: u8,
    offset: i32,
}

/// One Andersen constraint within a procedure.
#[derive(Copy, Clone, Debug)]
enum Constraint {
    /// `pts(dst) ∪= {region}` — an address constant flowed into `dst`.
    Seed { dst: u8, region: u32 },
    /// `pts(dst) ⊇ pts(src)` — pointer copy/arithmetic.
    Copy { dst: u8, src: u8 },
    /// `pts(dst) ⊇ contents(r)` for every region `r` of the site.
    Load { dst: u8, site: MemSite },
    /// `contents(r) ⊇ pts(src)` for every region `r` of the site.
    Store { src: u8, site: MemSite },
}

/// Per-round output of one procedure's local solve.
struct ProcDelta {
    proc: usize,
    pts: Vec<BitSet>,
    contents: Vec<(u32, BitSet)>,
}

/// The complete interprocedural memory analysis for one program: region
/// universe, call graph, per-register points-to solution, per-instruction
/// access classification, escape information, and the merged scheduler
/// classes consumed by the `Static` disambiguation mode.
#[derive(Clone, Debug)]
pub struct AliasAnalysis {
    /// The abstract-region partition.
    pub universe: RegionUniverse,
    /// The whole-program call graph.
    pub call_graph: CallGraph,
    /// Per-pc access records (`None` for non-memory instructions).
    pub accesses: Vec<Option<MemAccess>>,
    /// Stack-frame regions whose address escapes their procedure: stored
    /// to memory, passed as a call argument, or returned.
    pub escaping: BitSet,
    /// Merged scheduler class per pc (0 for non-memory instructions).
    class_of_pc: Vec<u32>,
    /// Number of distinct scheduler classes in use.
    num_classes: u32,
}

impl AliasAnalysis {
    /// Runs the analysis: region construction, call-graph recovery,
    /// parallel Andersen solve, per-access classification, and scheduler
    /// class merging.
    pub fn analyze(program: &Program, cfg: &Cfg) -> AliasAnalysis {
        let universe = RegionUniverse::build(program, cfg);
        let call_graph = CallGraph::build(program, cfg);
        let regions = universe.len();
        let procs = cfg.procs().len();
        let text = &program.text;

        // Per-procedure constraint generation (embarrassingly parallel,
        // fanned out with the solve rounds below).
        let constraints: Vec<Vec<Constraint>> = par_map_procs(procs, |pi| {
            gen_constraints(text, cfg, &universe, pi)
        });

        // Interprocedural copy edges: callers' argument registers flow into
        // callees, callees' result registers flow back.
        let mut incoming: Vec<Vec<(usize, u8)>> = vec![Vec::new(); procs];
        for (pi, callees) in call_graph.callees.iter().enumerate() {
            for &callee in callees {
                for arg in [Reg::A0, Reg::A1, Reg::A2, Reg::A3] {
                    incoming[callee.index()].push((pi, arg.index() as u8));
                }
                for ret in [Reg::V0, Reg::V1] {
                    incoming[pi].push((callee.index(), ret.index() as u8));
                }
            }
        }

        // Round-based parallel fixpoint: every round solves each
        // procedure's constraints to a local fixpoint against a frozen
        // snapshot of the global state, then merges the deltas. Monotone
        // over finite sets, so it terminates.
        let mut pts: Vec<BitSet> = (0..procs * 32).map(|_| BitSet::new(regions)).collect();
        let mut contents: Vec<BitSet> = (0..regions).map(|_| BitSet::new(regions)).collect();
        loop {
            let deltas: Vec<ProcDelta> = {
                let pts_snap = &pts;
                let contents_snap = &contents;
                let incoming = &incoming;
                let constraints = &constraints;
                let universe_ref = &universe;
                par_map_procs(procs, move |pi| {
                    solve_proc(
                        pi,
                        &constraints[pi],
                        &incoming[pi],
                        pts_snap,
                        contents_snap,
                        universe_ref,
                    )
                })
            };
            let mut changed = false;
            for delta in deltas {
                for (reg, set) in delta.pts.into_iter().enumerate() {
                    changed |= pts[delta.proc * 32 + reg].union_with(&set);
                }
                for (region, set) in delta.contents {
                    changed |= contents[region as usize].union_with(&set);
                }
            }
            if !changed {
                break;
            }
        }

        // Per-instruction access records.
        let accesses: Vec<Option<MemAccess>> = text
            .iter()
            .enumerate()
            .map(|(pc, instr)| {
                let (base, offset) = match *instr {
                    Instr::Lw { base, offset, .. } | Instr::Sw { base, offset, .. } => {
                        (base, offset)
                    }
                    _ => return None,
                };
                let proc = cfg.proc_of_instr(pc as u32);
                let site = MemSite {
                    base: base.index() as u8,
                    offset,
                };
                let (regions, unknown) = site_regions(&site, proc.index(), &pts, &universe);
                let exact_addr = (base == Reg::ZERO).then_some(offset as u32);
                let touches_stack = regions.iter().any(|r| universe.is_stack(r as u32));
                Some(MemAccess {
                    regions,
                    exact_addr,
                    touches_stack,
                    unknown,
                })
            })
            .collect();

        // Escape analysis: a stack region escapes when it appears in any
        // region's contents (its address was stored), or in the points-to
        // set of an argument or result register (passed or returned).
        let mut escaping = BitSet::new(regions);
        for set in &contents {
            escaping.union_with(set);
        }
        for pi in 0..procs {
            for reg in [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::V0, Reg::V1] {
                escaping.union_with(&pts[pi * 32 + reg.index()]);
            }
        }
        for region in 0..regions {
            if !universe.is_stack(region as u32) {
                escaping.remove(region);
            }
        }

        // Scheduler classes: union-find over regions, merging (a) all stack
        // regions (frame reuse makes them interchangeable over time) and
        // (b) every region co-occurring in one access's region set (a
        // single last-write key must cover the whole set). Every may- or
        // must-aliased pair then shares a class, so keying the last-write
        // table by class serializes exactly the statically unprovable
        // pairs.
        let mut uf = UnionFind::new(regions);
        for region in universe.stack_base..universe.len {
            uf.union(universe.stack_base as usize, region as usize);
        }
        for access in accesses.iter().flatten() {
            let mut first = None;
            for region in access.regions.iter() {
                match first {
                    None => first = Some(region),
                    Some(anchor) => {
                        uf.union(anchor, region);
                    }
                }
            }
        }
        let mut dense: Vec<u32> = vec![u32::MAX; regions];
        let mut num_classes = 0u32;
        let class_of_pc: Vec<u32> = accesses
            .iter()
            .map(|access| {
                let Some(access) = access else { return 0 };
                let root = uf.find(
                    access
                        .regions
                        .iter()
                        .next()
                        .expect("every access touches at least one region"),
                );
                if dense[root] == u32::MAX {
                    dense[root] = num_classes;
                    num_classes += 1;
                }
                dense[root]
            })
            .collect();

        AliasAnalysis {
            universe,
            call_graph,
            accesses,
            escaping,
            class_of_pc,
            num_classes: num_classes.max(1),
        }
    }

    /// The merged last-write class of a memory instruction (0 for
    /// non-memory pcs, which never consult the table).
    #[inline]
    pub fn scheduler_class(&self, pc: u32) -> u32 {
        self.class_of_pc[pc as usize]
    }

    /// Number of distinct scheduler classes (≥ 1).
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// Classifies a static pair of memory instructions. Returns `None`
    /// when either pc is not a load or store.
    pub fn classify(&self, a: u32, b: u32) -> Option<AliasKind> {
        let x = self.accesses[a as usize].as_ref()?;
        let y = self.accesses[b as usize].as_ref()?;
        if let (Some(xa), Some(ya)) = (x.exact_addr, y.exact_addr) {
            return Some(if xa == ya { AliasKind::Must } else { AliasKind::No });
        }
        if x.touches_stack && y.touches_stack {
            // Frame reuse: stack regions share addresses over time.
            return Some(AliasKind::May);
        }
        let mut probe = x.regions.clone();
        probe.intersect_with(&y.regions);
        Some(if probe.is_empty() {
            AliasKind::No
        } else {
            AliasKind::May
        })
    }

    /// Short region label for a memory instruction (`A<class>`), for the
    /// DOT overlay; `None` for non-memory pcs.
    pub fn region_label(&self, pc: u32) -> Option<String> {
        self.accesses[pc as usize]
            .as_ref()
            .map(|_| format!("A{}", self.class_of_pc[pc as usize]))
    }

    /// The union of regions any store may write (for the never-stored-load
    /// lint).
    pub fn stored_regions(&self, program: &Program) -> BitSet {
        let mut stored = BitSet::new(self.universe.len());
        for (pc, instr) in program.text.iter().enumerate() {
            if matches!(instr, Instr::Sw { .. }) {
                if let Some(access) = &self.accesses[pc] {
                    stored.union_with(&access.regions);
                }
            }
        }
        stored
    }

    /// The union of regions any load may read (for the region-dead-store
    /// lint).
    pub fn loaded_regions(&self, program: &Program) -> BitSet {
        let mut loaded = BitSet::new(self.universe.len());
        for (pc, instr) in program.text.iter().enumerate() {
            if matches!(instr, Instr::Lw { .. }) {
                if let Some(access) = &self.accesses[pc] {
                    loaded.union_with(&access.regions);
                }
            }
        }
        loaded
    }
}

/// Generates the Andersen constraints for one procedure.
fn gen_constraints(
    text: &[Instr],
    cfg: &Cfg,
    universe: &RegionUniverse,
    pi: usize,
) -> Vec<Constraint> {
    let proc = &cfg.procs()[pi];
    let stack = universe.stack_region(ProcId(pi as u32));
    let mut out = Vec::new();
    let copy_or_seed = |out: &mut Vec<Constraint>, dst: Reg, src: Reg| {
        if dst == Reg::ZERO || src == Reg::ZERO {
            return;
        }
        if src == Reg::SP || src == Reg::FP {
            // A pointer derived from the frame pointer addresses this
            // procedure's frame.
            out.push(Constraint::Seed {
                dst: dst.index() as u8,
                region: stack,
            });
        } else {
            out.push(Constraint::Copy {
                dst: dst.index() as u8,
                src: src.index() as u8,
            });
        }
    };
    for &block in &proc.blocks {
        for pc in cfg.block(block).instrs() {
            match text[pc as usize] {
                Instr::Li { rd, imm } if rd != Reg::ZERO && imm > 0 && imm as u32 >= DATA_BASE => {
                    out.push(Constraint::Seed {
                        dst: rd.index() as u8,
                        region: universe.region_of_addr(imm as u32),
                    });
                }
                Instr::Alu {
                    op: AluOp::Add | AluOp::Sub,
                    rd,
                    rs,
                    rt,
                } => {
                    copy_or_seed(&mut out, rd, rs);
                    copy_or_seed(&mut out, rd, rt);
                }
                Instr::AluI {
                    op: AluOp::Add | AluOp::Sub,
                    rd,
                    rs,
                    imm,
                } => {
                    copy_or_seed(&mut out, rd, rs);
                    if rd != Reg::ZERO && imm > 0 && imm as u32 >= DATA_BASE {
                        out.push(Constraint::Seed {
                            dst: rd.index() as u8,
                            region: universe.region_of_addr(imm as u32),
                        });
                    }
                }
                Instr::CMovN { rd, rs, .. } | Instr::CMovZ { rd, rs, .. } => {
                    copy_or_seed(&mut out, rd, rs);
                }
                Instr::Lw { rd, base, offset } if rd != Reg::ZERO => {
                    out.push(Constraint::Load {
                        dst: rd.index() as u8,
                        site: MemSite {
                            base: base.index() as u8,
                            offset,
                        },
                    });
                }
                Instr::Sw { rs, base, offset } if rs != Reg::ZERO => {
                    out.push(Constraint::Store {
                        src: rs.index() as u8,
                        site: MemSite {
                            base: base.index() as u8,
                            offset,
                        },
                    });
                }
                _ => {}
            }
        }
    }
    out
}

/// The regions one memory site may touch, against a points-to state.
/// Returns the set and whether it fell back to top (unknown base).
fn site_regions(
    site: &MemSite,
    proc: usize,
    pts: &[BitSet],
    universe: &RegionUniverse,
) -> (BitSet, bool) {
    let regions = universe.len();
    let base = Reg::new(site.base);
    if base == Reg::ZERO {
        // Absolute addressing: the exact region of the constant address.
        let mut set = BitSet::new(regions);
        set.insert(universe.region_of_addr(site.offset as u32) as usize);
        return (set, false);
    }
    if base == Reg::SP || base == Reg::FP {
        let mut set = BitSet::new(regions);
        set.insert(universe.stack_region(ProcId(proc as u32)) as usize);
        return (set, false);
    }
    let mut set = pts[proc * 32 + base.index()].clone();
    if site.offset > 0 && site.offset as u32 >= DATA_BASE {
        // Scaled-index global addressing: the base register holds a small
        // scaled index and the displacement carries the data address
        // (MiniC's `slli rD, idx, 2; lw rX, GADDR(rD)` idiom).
        set.insert(universe.region_of_addr(site.offset as u32) as usize);
    }
    if set.is_empty() {
        // Unknown pointer: assume it can reach anything.
        return (BitSet::full(regions), true);
    }
    (set, false)
}

/// Solves one procedure's constraints to a local fixpoint against frozen
/// global state, returning the procedure's new points-to sets and its
/// proposed region-contents additions.
fn solve_proc(
    pi: usize,
    constraints: &[Constraint],
    incoming: &[(usize, u8)],
    pts_snap: &[BitSet],
    contents_snap: &[BitSet],
    universe: &RegionUniverse,
) -> ProcDelta {
    let regions = universe.len();
    let mut local: Vec<BitSet> = pts_snap[pi * 32..(pi + 1) * 32].to_vec();
    // Interprocedural in-edges read the frozen snapshot once per round.
    for &(src_proc, reg) in incoming {
        let set = pts_snap[src_proc * 32 + reg as usize].clone();
        local[reg as usize].union_with(&set);
    }
    let mut delta: Vec<Option<BitSet>> = vec![None; regions];
    loop {
        let mut changed = false;
        for constraint in constraints {
            match *constraint {
                Constraint::Seed { dst, region } => {
                    changed |= local[dst as usize].insert(region as usize);
                }
                Constraint::Copy { dst, src } => {
                    let set = local[src as usize].clone();
                    changed |= local[dst as usize].union_with(&set);
                }
                Constraint::Load { dst, site } => {
                    let (touched, _) = site_regions(&site, pi, &snapshot_view(pts_snap, pi, &local), universe);
                    for region in touched.iter() {
                        changed |= local[dst as usize].union_with(&contents_snap[region]);
                    }
                }
                Constraint::Store { src, site } => {
                    let (touched, _) = site_regions(&site, pi, &snapshot_view(pts_snap, pi, &local), universe);
                    for region in touched.iter() {
                        let slot =
                            delta[region].get_or_insert_with(|| BitSet::new(regions));
                        changed |= slot.union_with(&local[src as usize]);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    ProcDelta {
        proc: pi,
        pts: local,
        contents: delta
            .into_iter()
            .enumerate()
            .filter_map(|(region, set)| set.map(|set| (region as u32, set)))
            .collect(),
    }
}

/// Builds the register view `site_regions` reads for procedure `pi`:
/// the evolving local sets spliced over the frozen snapshot. Cheap — it
/// clones only the 32 per-register sets of one procedure.
fn snapshot_view(pts_snap: &[BitSet], pi: usize, local: &[BitSet]) -> Vec<BitSet> {
    // `site_regions` indexes `pts[pi * 32 + reg]`; hand it a slice whose
    // window for `pi` is the local state. Procedures only read their own
    // window, so splice just that.
    let mut view = pts_snap.to_vec();
    view[pi * 32..(pi + 1) * 32].clone_from_slice(local);
    view
}

/// Claims procedure indices off an atomic counter across scoped workers —
/// the same fan-out shape as the benchmark suite's pool. Falls back to a
/// plain loop when one worker suffices.
fn par_map_procs<T, F>(procs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(procs);
    if workers <= 1 {
        return (0..procs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<Option<T>>> = Mutex::new((0..procs).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let pi = next.fetch_add(1, Ordering::Relaxed);
                if pi >= procs {
                    break;
                }
                let result = f(pi);
                out.lock().unwrap()[pi] = Some(result);
            });
        }
    });
    out.into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("every procedure solved"))
        .collect()
}

/// Minimal union-find over region indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(len: usize) -> UnionFind {
        UnionFind {
            parent: (0..len).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb.max(ra)] = ra.min(rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::assemble;

    fn analyze(source: &str) -> (Program, Cfg, AliasAnalysis) {
        let program = assemble(source).unwrap();
        let cfg = Cfg::build(&program);
        let alias = AliasAnalysis::analyze(&program, &cfg);
        (program, cfg, alias)
    }

    #[test]
    fn distinct_globals_do_not_alias() {
        let (_, _, alias) = analyze(
            r#"
            .data
            a: .space 16
            b: .space 16
            .text
            main:
                sw r8, 0x1000(r0)  # pc 0: a
                lw r9, 0x1010(r0)  # pc 1: b
                lw r10, 0x1000(r0) # pc 2: a
                halt
            "#,
        );
        assert_eq!(alias.classify(0, 1), Some(AliasKind::No));
        assert_eq!(alias.classify(0, 2), Some(AliasKind::Must));
        assert_ne!(alias.scheduler_class(0), alias.scheduler_class(1));
        assert_eq!(alias.scheduler_class(0), alias.scheduler_class(2));
        assert!(alias.classify(0, 3).is_none(), "halt is not a memory access");
    }

    #[test]
    fn exact_addresses_classify_must_and_no() {
        let (_, _, alias) = analyze(
            r#"
            .text
            main:
                sw r8, 0x2000(r0)  # pc 0
                lw r9, 0x2000(r0)  # pc 1
                lw r10, 0x2004(r0) # pc 2
                halt
            "#,
        );
        assert_eq!(alias.classify(0, 1), Some(AliasKind::Must));
        // Same heap partition, but exact disjoint words.
        assert_eq!(alias.classify(0, 2), Some(AliasKind::No));
    }

    #[test]
    fn pointer_through_register_reaches_its_global() {
        let (_, _, alias) = analyze(
            r#"
            .data
            buf: .space 64
            other: .space 64
            .text
            main:
                li r8, buf         # pc 0
                addi r9, r8, 8     # pc 1
                sw r10, 0(r9)      # pc 2: store through derived pointer
                lw r11, 0x1040(r0) # pc 3: other
                lw r12, 0x1000(r0) # pc 4: buf
                halt
            "#,
        );
        assert_eq!(alias.classify(2, 3), Some(AliasKind::No));
        assert_eq!(alias.classify(2, 4), Some(AliasKind::May));
        assert_eq!(alias.scheduler_class(2), alias.scheduler_class(4));
    }

    #[test]
    fn pointer_argument_flows_into_callee() {
        let (_, _, alias) = analyze(
            r#"
            .data
            buf: .space 64
            other: .space 64
            .text
            main:
                li a0, buf         # pc 0
                call write         # pc 1
                lw r9, 0x1040(r0)  # pc 2: other
                lw r10, 0x1000(r0) # pc 3: buf
                halt
            write:
                sw r8, 0(a0)       # pc 5
                ret
            "#,
        );
        // The callee's store through a0 reaches `buf`, not `other`.
        assert_eq!(alias.classify(5, 2), Some(AliasKind::No));
        assert_eq!(alias.classify(5, 3), Some(AliasKind::May));
    }

    #[test]
    fn stack_frames_may_alias_across_procedures() {
        let (_, _, alias) = analyze(
            r#"
            .text
            main:
                sw r8, 4(sp)       # pc 0
                call f             # pc 1
                halt
            f:
                sw r9, 8(sp)       # pc 3
                lw r10, 4(sp)      # pc 4
                ret
            "#,
        );
        // Frame reuse: every stack pair is may-aliased, one shared class.
        assert_eq!(alias.classify(0, 3), Some(AliasKind::May));
        assert_eq!(alias.classify(0, 4), Some(AliasKind::May));
        assert_eq!(alias.scheduler_class(0), alias.scheduler_class(3));
    }

    #[test]
    fn stack_and_global_do_not_alias() {
        let (_, _, alias) = analyze(
            r#"
            .data
            g: .space 16
            .text
            main:
                sw r8, 4(sp)       # pc 0
                lw r9, 0x1000(r0)  # pc 1: g
                halt
            "#,
        );
        assert_eq!(alias.classify(0, 1), Some(AliasKind::No));
        assert_ne!(alias.scheduler_class(0), alias.scheduler_class(1));
    }

    #[test]
    fn unknown_pointer_goes_to_top() {
        let (_, _, alias) = analyze(
            r#"
            .data
            g: .space 16
            .text
            main:
                lw r8, 0(r9)       # pc 0: r9 never defined — unknown base
                sw r10, 0x1000(r0) # pc 1: g
                halt
            "#,
        );
        let access = alias.accesses[0].as_ref().unwrap();
        assert!(access.unknown);
        assert_eq!(alias.classify(0, 1), Some(AliasKind::May));
    }

    #[test]
    fn call_graph_resolves_direct_and_indirect() {
        let (_, cfg, alias) = analyze(
            r#"
            .text
            main:
                call f             # pc 0
                li r8, g           # pc 1
                callr r8           # pc 2
                halt
            f:
                ret
            g:
                ret
            "#,
        );
        let main = cfg.proc_of_instr(0).index();
        let f = cfg.proc_of_instr(4).index();
        let g = cfg.proc_of_instr(5).index();
        let callees: Vec<usize> = alias.call_graph.callees[main]
            .iter()
            .map(|p| p.index())
            .collect();
        assert!(callees.contains(&f));
        assert!(callees.contains(&g));
        assert!(alias.call_graph.address_taken[g]);
        assert!(!alias.call_graph.address_taken[f]);
        assert_eq!(alias.call_graph.callers[f], vec![ProcId(main as u32)]);
    }

    #[test]
    fn escaping_frame_detected() {
        let (_, cfg, alias) = analyze(
            r#"
            .text
            main:
                addi a0, sp, 8     # pc 0: frame address passed as argument
                call f             # pc 1
                halt
            f:
                sw r8, 0(a0)       # pc 3
                ret
            "#,
        );
        let main_stack = alias.universe.stack_region(cfg.proc_of_instr(0));
        assert!(alias.escaping.contains(main_stack as usize));
        // The callee's store through the escaped pointer reaches a stack
        // region, so it may alias main's frame accesses.
        let (_, _, alias2) = analyze(
            r#"
            .text
            main:
                addi a0, sp, 8
                sw r9, 8(sp)       # pc 1
                call f             # pc 2
                halt
            f:
                sw r8, 0(a0)       # pc 4
                ret
            "#,
        );
        assert_eq!(alias2.classify(1, 4), Some(AliasKind::May));
    }

    #[test]
    fn pointer_spilled_and_reloaded_keeps_its_region() {
        let (_, _, alias) = analyze(
            r#"
            .data
            buf: .space 64
            other: .space 64
            .text
            main:
                li r8, buf         # pc 0
                sw r8, 4(sp)       # pc 1: spill the pointer
                lw r9, 4(sp)       # pc 2: reload it
                sw r10, 0(r9)      # pc 3: store through the reload
                lw r11, 0x1040(r0) # pc 4: other
                halt
            "#,
        );
        assert_eq!(alias.classify(3, 4), Some(AliasKind::No));
        let access = alias.accesses[3].as_ref().unwrap();
        assert!(!access.unknown, "reloaded pointer should be tracked");
    }

    #[test]
    fn region_universe_partitions_addresses() {
        let (program, cfg, alias) = analyze(
            r#"
            .data
            a: .space 8
            b: .space 8
            .text
            main:
                halt
            "#,
        );
        let u = &alias.universe;
        assert_eq!(u.region_of_addr(0), 0, "null guard");
        let ra = u.region_of_addr(DATA_BASE);
        let rb = u.region_of_addr(DATA_BASE + 8);
        assert_ne!(ra, rb);
        assert_eq!(u.region_of_addr(DATA_BASE + 4), ra);
        let heap = u.region_of_addr(program.data_end() + 0x100);
        assert!(heap >= u.heap_base && heap < u.stack_base);
        assert!(u.is_stack(u.stack_region(ProcId(0))));
        assert_eq!(u.len(), u.stack_base as usize + cfg.procs().len());
        assert!(u.describe(ra, &cfg).contains('a'));
        assert!(u.describe(u.stack_region(ProcId(0)), &cfg).starts_with("stack:"));
    }

    #[test]
    fn stored_and_loaded_region_summaries() {
        let (program, _, alias) = analyze(
            r#"
            .data
            in: .space 16
            out: .space 16
            .text
            main:
                lw r8, 0x1000(r0)  # pc 0: `in` is loaded, never stored
                sw r8, 0x1010(r0)  # pc 1: `out` is stored, never loaded
                halt
            "#,
        );
        let stored = alias.stored_regions(&program);
        let loaded = alias.loaded_regions(&program);
        let r_in = alias.universe.region_of_addr(DATA_BASE) as usize;
        let r_out = alias.universe.region_of_addr(DATA_BASE + 16) as usize;
        assert!(loaded.contains(r_in) && !stored.contains(r_in));
        assert!(stored.contains(r_out) && !loaded.contains(r_out));
    }

    #[test]
    fn minic_workload_is_fully_tracked() {
        // Compiled MiniC passes array base addresses as plain integers
        // (`qsort(p, lo, hi)`); the interprocedural solve must keep those
        // accesses off the top fallback.
        let program = clfp_lang::compile(
            r#"
            var data: int[64];
            var out: int[64];
            fn kernel(p: int, n: int) -> int {
                var s: int = 0;
                for (var i: int = 0; i < n; i = i + 1) {
                    s = s + p[i];
                    out[i] = s;
                }
                return s;
            }
            fn main() -> int {
                for (var i: int = 0; i < 64; i = i + 1) {
                    data[i] = i * 7 % 13;
                }
                return kernel(data, 64);
            }
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&program);
        let alias = AliasAnalysis::analyze(&program, &cfg);
        let unknown = alias
            .accesses
            .iter()
            .flatten()
            .filter(|access| access.unknown)
            .count();
        assert_eq!(unknown, 0, "no access should fall back to top");
        assert!(alias.num_classes() >= 2, "globals and stack must separate");
    }
}
