//! Generic iterative dataflow analysis over basic blocks.
//!
//! The paper leans on "iterative data flow analysis" (Section 4.2) for its
//! induction-variable discovery; this module supplies the reusable engine
//! that analysis always implied: a gen/kill worklist solver over a
//! [`Digraph`] with bitset lattices, forward and backward directions, and
//! union or intersection meets, converging in reverse-postorder.
//!
//! Three client analyses are provided:
//!
//! * [`ReachingDefs`] — which definition sites may reach each block entry
//!   (forward, union).
//! * [`Liveness`] — which registers may be read before their next write
//!   (backward, union), plus a [`Liveness::dead_defs`] query for register
//!   writes that are never read.
//! * [`MaybeUninit`] — which register reads may observe a register that no
//!   program instruction has written (forward, union).
//!
//! All three operate per procedure on the intra-procedural flow graph from
//! [`Cfg::proc_digraph`]; calls are modeled by the caller-visible register
//! convention ([`induction::CALL_DEFS`](crate::induction::CALL_DEFS)):
//! allocatable registers are callee-saved by the MiniC compiler and survive
//! calls unchanged.

use std::collections::HashMap;

use clfp_isa::{Instr, Program, Reg};

use crate::dom::Digraph;
use crate::induction::CALL_DEFS;
use crate::{BlockId, Cfg};

/// Argument registers a call may read from the caller's perspective.
pub const CALL_USES: [Reg; 4] = [Reg::A0, Reg::A1, Reg::A2, Reg::A3];

/// A fixed-size bitset over `0..len`, the lattice element of every analysis
/// here.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// The empty set over a universe of `len` elements.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over a universe of `len` elements.
    pub fn full(len: usize) -> BitSet {
        let mut set = BitSet {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        set.mask_tail();
        set
    }

    /// Clears any bits beyond `len` so word-wise equality is exact.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether `index` is in the set.
    pub fn contains(&self, index: usize) -> bool {
        debug_assert!(index < self.len);
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Inserts `index`; returns whether the set changed.
    pub fn insert(&mut self, index: usize) -> bool {
        debug_assert!(index < self.len);
        let word = &mut self.words[index / 64];
        let bit = 1u64 << (index % 64);
        let changed = *word & bit == 0;
        *word |= bit;
        changed
    }

    /// Removes `index`; returns whether the set changed.
    pub fn remove(&mut self, index: usize) -> bool {
        debug_assert!(index < self.len);
        let word = &mut self.words[index / 64];
        let bit = 1u64 << (index % 64);
        let changed = *word & bit != 0;
        *word &= !bit;
        changed
    }

    /// `self |= other`; returns whether the set changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let new = *w | o;
            changed |= new != *w;
            *w = new;
        }
        changed
    }

    /// `self &= other`; returns whether the set changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let new = *w & o;
            changed |= new != *w;
            *w = new;
        }
        changed
    }

    /// `self &= !other` (set difference).
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

/// Direction information flows through the graph.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow along edges (reaching definitions, maybe-uninit).
    Forward,
    /// Facts flow against edges (liveness).
    Backward,
}

/// How facts from multiple flow predecessors combine.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Meet {
    /// May-analysis: a fact holds on *some* path.
    Union,
    /// Must-analysis: a fact holds on *every* path.
    Intersect,
}

/// A node's transfer function: `out = (in \ kill) ∪ gen`.
#[derive(Clone, Debug)]
pub struct GenKill {
    /// Facts this node creates.
    pub gen: BitSet,
    /// Facts this node destroys.
    pub kill: BitSet,
}

impl GenKill {
    /// The identity transfer over a universe of `len` facts.
    pub fn identity(len: usize) -> GenKill {
        GenKill {
            gen: BitSet::new(len),
            kill: BitSet::new(len),
        }
    }

    fn apply(&self, input: &BitSet) -> BitSet {
        let mut out = input.clone();
        out.subtract(&self.kill);
        out.union_with(&self.gen);
        out
    }
}

/// A dataflow problem over a [`Digraph`].
pub struct Problem<'g> {
    /// The flow graph (one node per basic block).
    pub graph: &'g Digraph,
    /// Flow direction.
    pub direction: Direction,
    /// Meet operator.
    pub meet: Meet,
    /// Per-node transfer functions, indexed by node.
    pub transfers: Vec<GenKill>,
    /// The value flowing into boundary nodes (graph entries for
    /// [`Direction::Forward`], graph exits for [`Direction::Backward`]).
    pub boundary: BitSet,
    /// Boundary node indices. These always meet [`Problem::boundary`] into
    /// their input, *in addition to* any flow predecessors — a procedure
    /// entry can also be a loop header.
    pub entries: Vec<usize>,
    /// Number of facts in the universe.
    pub universe: usize,
}

/// The fixed point of a [`Problem`].
pub struct Solution {
    /// Per node: facts at the flow input (block entry for forward problems,
    /// block exit for backward problems).
    pub inputs: Vec<BitSet>,
    /// Per node: facts at the flow output.
    pub outputs: Vec<BitSet>,
    /// Number of node visits until convergence (diagnostic).
    pub passes: usize,
}

/// Solves a dataflow problem with a reverse-postorder worklist.
///
/// Nodes unreachable in the flow direction still receive defined values
/// (the meet identity transformed by their transfer function).
pub fn solve(problem: &Problem<'_>) -> Solution {
    let n = problem.graph.len();
    assert_eq!(problem.transfers.len(), n, "one transfer per node");
    assert_eq!(problem.boundary.len(), problem.universe);

    let flow_succs = |node: usize| -> &[usize] {
        match problem.direction {
            Direction::Forward => problem.graph.succs(node),
            Direction::Backward => problem.graph.preds(node),
        }
    };
    let flow_preds = |node: usize| -> &[usize] {
        match problem.direction {
            Direction::Forward => problem.graph.preds(node),
            Direction::Backward => problem.graph.succs(node),
        }
    };

    // Reverse postorder over the flow direction, seeded from the boundary
    // nodes; stragglers (flow-unreachable nodes) are appended so every node
    // is visited at least once.
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n];
    for &entry in &problem.entries {
        if state[entry] != 0 {
            continue;
        }
        state[entry] = 1;
        let mut stack = vec![(entry, 0usize)];
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < flow_succs(node).len() {
                let succ = flow_succs(node)[*next];
                *next += 1;
                if state[succ] == 0 {
                    state[succ] = 1;
                    stack.push((succ, 0));
                }
            } else {
                state[node] = 2;
                order.push(node);
                stack.pop();
            }
        }
    }
    order.reverse();
    for (node, &mark) in state.iter().enumerate() {
        if mark == 0 {
            order.push(node);
        }
    }

    let top = || match problem.meet {
        Meet::Union => BitSet::new(problem.universe),
        Meet::Intersect => BitSet::full(problem.universe),
    };
    let mut is_entry = vec![false; n];
    for &entry in &problem.entries {
        is_entry[entry] = true;
    }

    let mut inputs: Vec<BitSet> = vec![top(); n];
    let mut outputs: Vec<BitSet> = vec![top(); n];
    let mut on_list = vec![true; n];
    let mut worklist: std::collections::VecDeque<usize> = order.iter().copied().collect();
    let mut passes = 0usize;

    while let Some(node) = worklist.pop_front() {
        on_list[node] = false;
        passes += 1;

        let mut input = top();
        let mut met_any = false;
        if is_entry[node] {
            match problem.meet {
                Meet::Union => {
                    input.union_with(&problem.boundary);
                }
                Meet::Intersect => {
                    input.intersect_with(&problem.boundary);
                }
            }
            met_any = true;
        }
        for &pred in flow_preds(node) {
            match problem.meet {
                Meet::Union => {
                    input.union_with(&outputs[pred]);
                }
                Meet::Intersect => {
                    input.intersect_with(&outputs[pred]);
                }
            }
            met_any = true;
        }
        let _ = met_any; // flow-unreachable non-entries keep the meet identity

        let output = problem.transfers[node].apply(&input);
        inputs[node] = input;
        if output != outputs[node] {
            outputs[node] = output;
            for &succ in flow_succs(node) {
                if !on_list[succ] {
                    on_list[succ] = true;
                    worklist.push_back(succ);
                }
            }
        }
    }

    Solution {
        inputs,
        outputs,
        passes,
    }
}

/// The registers an instruction defines, with calls expanded to the
/// caller-visible convention.
fn instr_defs(instr: Instr) -> impl Iterator<Item = Reg> {
    let (call, single) = match instr {
        Instr::Call { .. } | Instr::CallR { .. } => (true, None),
        other => (false, other.def()),
    };
    CALL_DEFS
        .into_iter()
        .filter(move |_| call)
        .chain(single)
}

/// The registers an instruction may read, with calls expanded to the
/// argument registers the callee may consume.
fn instr_reads(instr: Instr) -> impl Iterator<Item = Reg> {
    let call = matches!(instr, Instr::Call { .. } | Instr::CallR { .. });
    instr
        .uses()
        .chain(CALL_USES.into_iter().filter(move |_| call))
}

// ---------------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------------

/// One definition site: instruction `pc` writes register `reg`.
///
/// Calls contribute one site per caller-visible register they may clobber.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DefSite {
    /// Defining instruction.
    pub pc: u32,
    /// Register written.
    pub reg: Reg,
}

/// Reaching definitions: which [`DefSite`]s may reach each block boundary
/// (forward may-analysis).
pub struct ReachingDefs {
    sites: Vec<DefSite>,
    reach_in: Vec<BitSet>,
    reach_out: Vec<BitSet>,
}

impl ReachingDefs {
    /// Computes reaching definitions for every procedure of `cfg`.
    pub fn compute(program: &Program, cfg: &Cfg) -> ReachingDefs {
        let text = &program.text;

        // Enumerate definition sites program-wide so site indices are
        // stable across procedures.
        let mut sites = Vec::new();
        let mut sites_of_reg: Vec<Vec<usize>> = vec![Vec::new(); Reg::COUNT];
        for (pc, &instr) in text.iter().enumerate() {
            for reg in instr_defs(instr) {
                sites_of_reg[reg.index()].push(sites.len());
                sites.push(DefSite {
                    pc: pc as u32,
                    reg,
                });
            }
        }
        let universe = sites.len();

        let empty = BitSet::new(universe);
        let mut reach_in = vec![empty.clone(); cfg.blocks().len()];
        let mut reach_out = vec![empty.clone(); cfg.blocks().len()];

        for proc in cfg.procs() {
            let (graph, local_of_block) = cfg.proc_digraph(proc);
            let mut transfers = Vec::with_capacity(proc.blocks.len());
            for &block_id in &proc.blocks {
                let mut gen = BitSet::new(universe);
                let mut kill = BitSet::new(universe);
                // Walk the block in order: a later def of the same register
                // kills an earlier one, so gen keeps only the last site per
                // register while kill accumulates every site of every
                // defined register (the block's own gen is unioned back in
                // after the kill).
                let mut last_site_of_reg: HashMap<Reg, usize> = HashMap::new();
                let mut site_cursor = 0usize;
                for pc in cfg.block(block_id).instrs() {
                    // Advance to this pc's sites (sites are in pc order).
                    while site_cursor < sites.len() && sites[site_cursor].pc < pc {
                        site_cursor += 1;
                    }
                    for reg in instr_defs(text[pc as usize]) {
                        let site = (site_cursor..sites.len())
                            .find(|&s| sites[s].pc == pc && sites[s].reg == reg)
                            .expect("site enumerated for this def");
                        last_site_of_reg.insert(reg, site);
                        for &other in &sites_of_reg[reg.index()] {
                            kill.insert(other);
                        }
                    }
                }
                for (_, site) in last_site_of_reg {
                    gen.insert(site);
                }
                transfers.push(GenKill { gen, kill });
            }
            let solution = solve(&Problem {
                graph: &graph,
                direction: Direction::Forward,
                meet: Meet::Union,
                transfers,
                boundary: BitSet::new(universe),
                entries: vec![local_of_block[&proc.entry]],
                universe,
            });
            for (local, &block_id) in proc.blocks.iter().enumerate() {
                reach_in[block_id.index()] = solution.inputs[local].clone();
                reach_out[block_id.index()] = solution.outputs[local].clone();
            }
        }

        ReachingDefs {
            sites,
            reach_in,
            reach_out,
        }
    }

    /// All definition sites, in pc order.
    pub fn sites(&self) -> &[DefSite] {
        &self.sites
    }

    /// Definition sites that may reach the entry of `block`.
    pub fn reaching_in(&self, block: BlockId) -> impl Iterator<Item = DefSite> + '_ {
        self.reach_in[block.index()].iter().map(|s| self.sites[s])
    }

    /// Definition sites that may reach the exit of `block`.
    pub fn reaching_out(&self, block: BlockId) -> impl Iterator<Item = DefSite> + '_ {
        self.reach_out[block.index()].iter().map(|s| self.sites[s])
    }
}

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

/// Register liveness: which registers may be read before their next write
/// (backward may-analysis over the 32-register universe).
pub struct Liveness {
    live_in: Vec<BitSet>,
    live_out: Vec<BitSet>,
}

impl Liveness {
    /// Computes liveness with the ABI exit boundary: at a procedure exit the
    /// return values (`v0`, `v1`), the stack registers (`sp`, `fp`), and
    /// every callee-saved allocatable register are live (`ra` is covered by
    /// `ret`'s own use).
    pub fn compute(program: &Program, cfg: &Cfg) -> Liveness {
        let mut exit_live = vec![Reg::V0, Reg::V1, Reg::SP, Reg::FP];
        for index in Reg::FIRST_ALLOCATABLE..Reg::LAST_ALLOCATABLE {
            exit_live.push(Reg::new(index));
        }
        Liveness::compute_with_exit(program, cfg, &exit_live)
    }

    /// Computes liveness with an explicit set of registers live at every
    /// procedure exit.
    pub fn compute_with_exit(program: &Program, cfg: &Cfg, exit_live: &[Reg]) -> Liveness {
        let text = &program.text;
        let universe = Reg::COUNT;
        let mut boundary = BitSet::new(universe);
        for &reg in exit_live {
            boundary.insert(reg.index());
        }

        let empty = BitSet::new(universe);
        let mut live_in = vec![empty.clone(); cfg.blocks().len()];
        let mut live_out = vec![empty; cfg.blocks().len()];

        for proc in cfg.procs() {
            let (graph, _) = cfg.proc_digraph(proc);
            let mut transfers = Vec::with_capacity(proc.blocks.len());
            for &block_id in &proc.blocks {
                // gen = upward-exposed uses, kill = defs.
                let mut gen = BitSet::new(universe);
                let mut kill = BitSet::new(universe);
                for pc in cfg.block(block_id).instrs() {
                    let instr = text[pc as usize];
                    for reg in instr_reads(instr) {
                        if !kill.contains(reg.index()) {
                            gen.insert(reg.index());
                        }
                    }
                    for reg in instr_defs(instr) {
                        kill.insert(reg.index());
                    }
                }
                transfers.push(GenKill { gen, kill });
            }
            // Backward boundary nodes are the flow entries of the reversed
            // graph: blocks with no intra-procedural successors (returns,
            // computed jumps, halts).
            let entries: Vec<usize> = (0..graph.len())
                .filter(|&local| graph.succs(local).is_empty())
                .collect();
            let solution = solve(&Problem {
                graph: &graph,
                direction: Direction::Backward,
                meet: Meet::Union,
                transfers,
                boundary: boundary.clone(),
                entries,
                universe,
            });
            // For a backward problem the flow input is the block *exit*.
            for (local, &block_id) in proc.blocks.iter().enumerate() {
                live_out[block_id.index()] = solution.inputs[local].clone();
                live_in[block_id.index()] = solution.outputs[local].clone();
            }
        }

        Liveness { live_in, live_out }
    }

    /// Registers live at the entry of `block`.
    pub fn live_in(&self, block: BlockId) -> impl Iterator<Item = Reg> + '_ {
        self.live_in[block.index()]
            .iter()
            .map(|index| Reg::new(index as u8))
    }

    /// Registers live at the exit of `block`.
    pub fn live_out(&self, block: BlockId) -> impl Iterator<Item = Reg> + '_ {
        self.live_out[block.index()]
            .iter()
            .map(|index| Reg::new(index as u8))
    }

    /// Whether `reg` is live at the entry of `block`.
    pub fn is_live_in(&self, block: BlockId, reg: Reg) -> bool {
        self.live_in[block.index()].contains(reg.index())
    }

    /// Register writes whose value is never read: `(pc, reg)` pairs where
    /// no path from `pc` reads `reg` before its next write.
    ///
    /// Calls are never reported (their `ra` write is control bookkeeping,
    /// not a data value).
    pub fn dead_defs(&self, program: &Program, cfg: &Cfg) -> Vec<(u32, Reg)> {
        let text = &program.text;
        let mut dead = Vec::new();
        for (index, block) in cfg.blocks().iter().enumerate() {
            let mut live = self.live_out[index].clone();
            for pc in (block.start..block.end).rev() {
                let instr = text[pc as usize];
                let is_call = matches!(instr, Instr::Call { .. } | Instr::CallR { .. });
                if !is_call {
                    if let Some(reg) = instr.def() {
                        if !live.contains(reg.index()) {
                            dead.push((pc, reg));
                        }
                    }
                }
                for reg in instr_defs(instr) {
                    live.remove(reg.index());
                }
                for reg in instr_reads(instr) {
                    live.insert(reg.index());
                }
            }
        }
        dead.sort_unstable_by_key(|&(pc, reg)| (pc, reg));
        dead
    }
}

// ---------------------------------------------------------------------------
// Maybe-uninitialized reads
// ---------------------------------------------------------------------------

/// A register read that may observe a value no program instruction wrote.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct UninitRead {
    /// Reading instruction.
    pub pc: u32,
    /// Register read.
    pub reg: Reg,
}

/// Maybe-uninitialized register analysis (forward may-analysis): a register
/// is *maybe uninitialized* at a point if some path from the procedure
/// entry reaches it without a write to that register.
///
/// At every procedure entry the allocatable registers are maybe
/// uninitialized from the procedure's own perspective (their incoming
/// values belong to the caller; the callee-save spill idiom is exempted
/// from read reporting). The program entry procedure additionally treats
/// the argument/return/link registers as uninitialized, since nothing ran
/// before it. `sp`/`fp` are always machine-initialized.
pub struct MaybeUninit {
    maybe_in: Vec<BitSet>,
    reads: Vec<UninitRead>,
}

impl MaybeUninit {
    /// Runs the analysis over every procedure of `cfg` and collects flagged
    /// reads.
    pub fn compute(program: &Program, cfg: &Cfg) -> MaybeUninit {
        let text = &program.text;
        let universe = Reg::COUNT;
        let entry_proc = cfg.proc_of_instr(program.entry);

        let empty = BitSet::new(universe);
        let mut maybe_in = vec![empty; cfg.blocks().len()];
        let mut reads = Vec::new();

        for (proc_index, proc) in cfg.procs().iter().enumerate() {
            let mut boundary = BitSet::new(universe);
            for index in Reg::FIRST_ALLOCATABLE..Reg::LAST_ALLOCATABLE {
                boundary.insert(Reg::new(index).index());
            }
            if proc_index == entry_proc.index() {
                for reg in [Reg::V0, Reg::V1, Reg::RA]
                    .into_iter()
                    .chain(CALL_USES)
                {
                    boundary.insert(reg.index());
                }
            }

            let (graph, local_of_block) = cfg.proc_digraph(proc);
            let mut transfers = Vec::with_capacity(proc.blocks.len());
            for &block_id in &proc.blocks {
                // gen = ∅ (nothing un-initializes a register), kill = defs.
                let mut kill = BitSet::new(universe);
                for pc in cfg.block(block_id).instrs() {
                    for reg in instr_defs(text[pc as usize]) {
                        kill.insert(reg.index());
                    }
                }
                transfers.push(GenKill {
                    gen: BitSet::new(universe),
                    kill,
                });
            }
            let solution = solve(&Problem {
                graph: &graph,
                direction: Direction::Forward,
                meet: Meet::Union,
                transfers,
                boundary,
                entries: vec![local_of_block[&proc.entry]],
                universe,
            });

            // Walk each block with the converged entry state to flag reads.
            for (local, &block_id) in proc.blocks.iter().enumerate() {
                maybe_in[block_id.index()] = solution.inputs[local].clone();
                let mut state = solution.inputs[local].clone();
                for pc in cfg.block(block_id).instrs() {
                    let instr = text[pc as usize];
                    for reg in instr.uses() {
                        if state.contains(reg.index()) && !is_spill_read(instr, reg) {
                            reads.push(UninitRead { pc, reg });
                        }
                    }
                    for reg in instr_defs(instr) {
                        state.remove(reg.index());
                    }
                }
            }
        }

        // An instruction can read the same register in both operand
        // slots (`add r9, r8, r8`); report each (pc, reg) pair once.
        reads.sort_unstable_by_key(|r| (r.pc, r.reg));
        reads.dedup();
        MaybeUninit { maybe_in, reads }
    }

    /// Registers maybe-uninitialized at the entry of `block`.
    pub fn maybe_in(&self, block: BlockId) -> impl Iterator<Item = Reg> + '_ {
        self.maybe_in[block.index()]
            .iter()
            .map(|index| Reg::new(index as u8))
    }

    /// All flagged reads, in pc order.
    pub fn reads(&self) -> &[UninitRead] {
        &self.reads
    }
}

/// Whether a read of `reg` by `instr` is the callee-save spill idiom
/// (`sw reg, off(sp|fp)`), which legitimately stores a caller-owned value.
fn is_spill_read(instr: Instr, reg: Reg) -> bool {
    matches!(
        instr,
        Instr::Sw { rs, base, .. }
            if rs == reg && (base == Reg::SP || base == Reg::FP)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::assemble;

    fn build(source: &str) -> (Program, Cfg) {
        let program = assemble(source).unwrap();
        let cfg = Cfg::build(&program);
        (program, cfg)
    }

    #[test]
    fn bitset_basics() {
        let mut set = BitSet::new(70);
        assert!(set.is_empty());
        assert!(set.insert(0));
        assert!(set.insert(69));
        assert!(!set.insert(69));
        assert!(set.contains(0));
        assert!(set.contains(69));
        assert!(!set.contains(1));
        assert_eq!(set.count(), 2);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 69]);
        assert!(set.remove(0));
        assert!(!set.remove(0));
        assert_eq!(set.count(), 1);
        assert_eq!(BitSet::full(70).count(), 70);
        assert_eq!(BitSet::full(64).count(), 64);
        let mut a = BitSet::full(70);
        a.subtract(&BitSet::full(70));
        assert!(a.is_empty());
        assert_eq!(BitSet::full(70), BitSet::full(70));
    }

    #[test]
    fn solver_reaches_fixed_point_on_diamond() {
        // Diamond with a "def of x" in node 1 and "def of x" in node 2:
        // both reach node 3 under union.
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let universe = 2; // fact 0 = def in node 1, fact 1 = def in node 2
        let mut transfers = vec![GenKill::identity(universe); 4];
        transfers[1].gen.insert(0);
        transfers[1].kill.insert(1);
        transfers[2].gen.insert(1);
        transfers[2].kill.insert(0);
        let solution = solve(&Problem {
            graph: &g,
            direction: Direction::Forward,
            meet: Meet::Union,
            transfers,
            boundary: BitSet::new(universe),
            entries: vec![0],
            universe,
        });
        assert_eq!(solution.inputs[3].iter().collect::<Vec<_>>(), vec![0, 1]);
        assert!(solution.inputs[1].is_empty());
        // Under intersection, neither def reaches node 3 on *every* path.
        let mut transfers = vec![GenKill::identity(universe); 4];
        transfers[1].gen.insert(0);
        transfers[2].gen.insert(1);
        let must = solve(&Problem {
            graph: &g,
            direction: Direction::Forward,
            meet: Meet::Intersect,
            transfers,
            boundary: BitSet::new(universe),
            entries: vec![0],
            universe,
        });
        assert!(must.inputs[3].is_empty());
    }

    #[test]
    fn solver_loop_converges() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3; node 2 gens fact 0. It must reach the
        // header input via the back edge.
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(2, 3);
        let mut transfers = vec![GenKill::identity(1); 4];
        transfers[2].gen.insert(0);
        let solution = solve(&Problem {
            graph: &g,
            direction: Direction::Forward,
            meet: Meet::Union,
            transfers,
            boundary: BitSet::new(1),
            entries: vec![0],
            universe: 1,
        });
        assert!(solution.inputs[1].contains(0));
        assert!(solution.inputs[3].contains(0));
        assert!(solution.inputs[0].is_empty());
    }

    // --- hand-checked program 1: straight line -------------------------

    #[test]
    fn straight_line_reaching_and_liveness() {
        let (program, cfg) = build(
            r#"
            .text
            main:
                li r8, 1           # pc 0
                li r9, 2           # pc 1
                add r10, r8, r9    # pc 2
                li r8, 3           # pc 3  (redefines r8)
                halt               # pc 4
            "#,
        );
        let reach = ReachingDefs::compute(&program, &cfg);
        // One block: nothing reaches its entry, the *last* def of each
        // register reaches its exit.
        let block = cfg.block_of_instr(0);
        assert_eq!(reach.reaching_in(block).count(), 0);
        let out: Vec<DefSite> = reach.reaching_out(block).collect();
        assert!(out.contains(&DefSite { pc: 3, reg: Reg::new(8) }));
        assert!(out.contains(&DefSite { pc: 1, reg: Reg::new(9) }));
        assert!(out.contains(&DefSite { pc: 2, reg: Reg::new(10) }));
        assert!(!out.contains(&DefSite { pc: 0, reg: Reg::new(8) }));

        // Liveness with an explicit exit set: only r10 live at exit, so the
        // redefinition at pc 3 is dead.
        let live = Liveness::compute_with_exit(&program, &cfg, &[Reg::new(10)]);
        assert!(!live.is_live_in(block, Reg::new(8)));
        let dead = live.dead_defs(&program, &cfg);
        assert_eq!(dead, vec![(3, Reg::new(8))]);
    }

    // --- hand-checked program 2: diamond -------------------------------

    #[test]
    fn diamond_reaching_and_liveness() {
        let (program, cfg) = build(
            r#"
            .text
            main:
                beq a0, r0, else   # pc 0
                li r8, 1           # pc 1 (then)
                j join             # pc 2
            else:
                li r8, 2           # pc 3
            join:
                add r9, r8, r8     # pc 4
                halt               # pc 5
            "#,
        );
        let reach = ReachingDefs::compute(&program, &cfg);
        let join = cfg.block_of_instr(4);
        let reaching: Vec<DefSite> = reach.reaching_in(join).collect();
        // Both arms' defs of r8 reach the join.
        assert!(reaching.contains(&DefSite { pc: 1, reg: Reg::new(8) }));
        assert!(reaching.contains(&DefSite { pc: 3, reg: Reg::new(8) }));

        let live = Liveness::compute_with_exit(&program, &cfg, &[Reg::new(9)]);
        // r8 is live into the join and out of both arms; a0 is live into
        // the entry (the branch reads it).
        assert!(live.is_live_in(join, Reg::new(8)));
        let then_block = cfg.block_of_instr(1);
        assert!(live.live_out(then_block).any(|r| r == Reg::new(8)));
        assert!(live.is_live_in(cfg.block_of_instr(0), Reg::A0));
        // r9 is not live anywhere before its def.
        assert!(!live.is_live_in(join, Reg::new(9)));
        assert!(live.dead_defs(&program, &cfg).is_empty());
    }

    // --- hand-checked program 3: loop -----------------------------------

    #[test]
    fn loop_reaching_and_liveness() {
        let (program, cfg) = build(
            r#"
            .text
            main:
                li r8, 0           # pc 0: i = 0
                li r9, 10          # pc 1: n = 10
            loop:
                addi r8, r8, 1     # pc 2: i++
                blt r8, r9, loop   # pc 3
                halt               # pc 4
            "#,
        );
        let reach = ReachingDefs::compute(&program, &cfg);
        let header = cfg.block_of_instr(2);
        let reaching: Vec<DefSite> = reach.reaching_in(header).collect();
        // Both the initial def (pc 0) and the back-edge def (pc 2) of r8
        // reach the loop header.
        assert!(reaching.contains(&DefSite { pc: 0, reg: Reg::new(8) }));
        assert!(reaching.contains(&DefSite { pc: 2, reg: Reg::new(8) }));
        // Inside the loop the increment kills the initial def.
        let out: Vec<DefSite> = reach.reaching_out(header).collect();
        assert!(out.contains(&DefSite { pc: 2, reg: Reg::new(8) }));
        assert!(!out.contains(&DefSite { pc: 0, reg: Reg::new(8) }));

        let live = Liveness::compute_with_exit(&program, &cfg, &[]);
        // r8 and r9 are live around the back edge.
        assert!(live.is_live_in(header, Reg::new(8)));
        assert!(live.is_live_in(header, Reg::new(9)));
        // Nothing is live after the loop (empty exit set).
        assert!(live.live_out(cfg.block_of_instr(4)).next().is_none());
    }

    #[test]
    fn call_clobbers_and_uses_convention_regs() {
        let (program, cfg) = build(
            r#"
            .text
            main:
                li a0, 1           # pc 0
                li v0, 7           # pc 1  (clobbered by the call: dead)
                call f             # pc 2
                add r8, v0, r0     # pc 3  (reads the call's v0, not pc 1's)
                halt               # pc 4
            f:
                add v0, a0, a0     # pc 5
                ret                # pc 6
            "#,
        );
        let live = Liveness::compute_with_exit(&program, &cfg, &[Reg::new(8), Reg::V0]);
        let dead = live.dead_defs(&program, &cfg);
        assert_eq!(dead, vec![(1, Reg::V0)]);
        // The arg setup stays live (calls use a0..a3).
        assert!(!dead.iter().any(|&(pc, _)| pc == 0));

        let reach = ReachingDefs::compute(&program, &cfg);
        let after_call = cfg.block_of_instr(3);
        let reaching: Vec<DefSite> = reach.reaching_in(after_call).collect();
        // The call's v0 site reaches pc 3; the li at pc 1 does not.
        assert!(reaching.contains(&DefSite { pc: 2, reg: Reg::V0 }));
        assert!(!reaching.contains(&DefSite { pc: 1, reg: Reg::V0 }));
    }

    #[test]
    fn maybe_uninit_flags_read_before_write() {
        let (program, cfg) = build(
            r#"
            .text
            main:
                add r9, r8, r0     # pc 0: r8 never written
                li r8, 1           # pc 1
                add r10, r8, r0    # pc 2: fine
                halt
            "#,
        );
        let uninit = MaybeUninit::compute(&program, &cfg);
        assert_eq!(
            uninit.reads(),
            &[UninitRead { pc: 0, reg: Reg::new(8) }]
        );
    }

    #[test]
    fn maybe_uninit_exempts_callee_save_spill() {
        let (program, cfg) = build(
            r#"
            .text
            main:
                li a0, 1
                call f
                halt
            f:
                subi sp, sp, 8     # frame
                sw r8, 0(sp)       # spill caller's r8: exempt
                li r8, 5
                sw r8, 4(sp)       # store of a defined value: fine
                lw r8, 0(sp)       # restore
                addi sp, sp, 8
                ret
            "#,
        );
        let uninit = MaybeUninit::compute(&program, &cfg);
        assert!(uninit.reads().is_empty(), "flagged: {:?}", uninit.reads());
    }

    #[test]
    fn maybe_uninit_joins_paths() {
        // r8 is written on only one arm of a diamond: the join read is
        // flagged.
        let (program, cfg) = build(
            r#"
            .text
            main:
                beq a0, r0, skip   # pc 0 (a0 uninit read in entry proc)
                li r8, 1           # pc 1
            skip:
                add r9, r8, r0     # pc 2
                halt
            "#,
        );
        let uninit = MaybeUninit::compute(&program, &cfg);
        assert!(uninit
            .reads()
            .contains(&UninitRead { pc: 2, reg: Reg::new(8) }));
        // The entry procedure also flags the a0 read: nothing ran before
        // main.
        assert!(uninit
            .reads()
            .contains(&UninitRead { pc: 0, reg: Reg::A0 }));
    }

    #[test]
    fn maybe_uninit_args_defined_for_callees() {
        // A non-entry procedure may read its argument registers freely.
        let (program, cfg) = build(
            r#"
            .text
            main:
                li a0, 1
                call f
                halt
            f:
                add v0, a0, a0
                ret
            "#,
        );
        let uninit = MaybeUninit::compute(&program, &cfg);
        assert!(uninit.reads().is_empty(), "flagged: {:?}", uninit.reads());
    }

    #[test]
    fn liveness_default_boundary_keeps_callee_saved() {
        // With the default ABI boundary, restoring a callee-saved register
        // before `ret` is NOT a dead def.
        let (program, cfg) = build(
            r#"
            .text
            main:
                call f
                halt
            f:
                subi sp, sp, 4
                sw r8, 0(sp)
                li r8, 5
                lw r8, 0(sp)       # restore: live because r8 is in the
                addi sp, sp, 4     # default exit set
                ret
            "#,
        );
        let live = Liveness::compute(&program, &cfg);
        let dead = live.dead_defs(&program, &cfg);
        // The restore (`lw r8`, pc 5) stays live thanks to the ABI exit
        // boundary; the only dead def is `li r8, 5` (pc 4), overwritten by
        // the restore before any read.
        assert_eq!(dead, vec![(4, Reg::new(8))]);
    }
}
