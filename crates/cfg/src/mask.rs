use clfp_isa::{Instr, Program, Reg};

use crate::{AliasAnalysis, Cfg, ControlDeps, InductionInfo, LoopForest};

/// Return-address saves/restores through the frame are call overhead:
/// inlined code has no return address, so perfect inlining deletes them
/// along with the call itself. (Keeping them would thread an artificial
/// serial chain through every same-depth call, since the `call` that
/// defines `ra` is itself deleted.)
fn is_ra_spill(instr: Instr) -> bool {
    match instr {
        Instr::Sw { rs, base, .. } => rs == Reg::RA && (base == Reg::SP || base == Reg::FP),
        Instr::Lw { rd, base, .. } => rd == Reg::RA && (base == Reg::SP || base == Reg::FP),
        _ => false,
    }
}

/// The per-instruction "ignore" sets that implement the paper's two trace
/// transformations (Section 4.2):
///
/// * **Perfect inlining** — always applied: calls, returns, and
///   stack-pointer arithmetic vanish from traces, removing the serial
///   stack-pointer dependence chain and call-overhead instructions.
/// * **Perfect unrolling** — optional (Table 4 compares both settings):
///   loop-index increments, loop-index comparisons against invariants, and
///   the branches on those comparisons vanish, removing the serial
///   iteration-counter chain.
///
/// Ignored instructions do not execute, do not update last-write state, and
/// do not count toward sequential time.
#[derive(Clone, Debug)]
pub struct IgnoreMasks {
    inline: Vec<bool>,
    unroll: Vec<bool>,
}

impl IgnoreMasks {
    /// Computes both masks for a program, running loop discovery and
    /// induction-variable analysis internally.
    pub fn compute(program: &Program, cfg: &Cfg) -> IgnoreMasks {
        let forest = LoopForest::find(cfg);
        let induction = InductionInfo::analyze(program, cfg, &forest);
        IgnoreMasks::from_parts(program, &induction)
    }

    /// Builds the masks from an existing induction analysis.
    pub fn from_parts(program: &Program, induction: &InductionInfo) -> IgnoreMasks {
        let inline = program
            .text
            .iter()
            .map(|instr| {
                instr.is_call_or_ret() || instr.is_sp_manip() || is_ra_spill(*instr)
            })
            .collect();
        IgnoreMasks {
            inline,
            unroll: induction.mask().to_vec(),
        }
    }

    /// Whether instruction `pc` is removed by perfect inlining.
    pub fn inline_ignored(&self, pc: u32) -> bool {
        self.inline[pc as usize]
    }

    /// Whether instruction `pc` is removed by perfect unrolling.
    pub fn unroll_ignored(&self, pc: u32) -> bool {
        self.unroll[pc as usize]
    }

    /// Whether instruction `pc` is removed under the given unrolling
    /// setting (inlining is always applied).
    pub fn ignored(&self, pc: u32, unrolling: bool) -> bool {
        self.inline_ignored(pc) || (unrolling && self.unroll_ignored(pc))
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.inline.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.inline.is_empty()
    }
}

/// Bundles every static analysis the limit analyzer needs for one program.
#[derive(Clone, Debug)]
pub struct StaticInfo {
    /// The control-flow graph.
    pub cfg: Cfg,
    /// Control dependences (reverse dominance frontiers).
    pub deps: ControlDeps,
    /// Natural loops.
    pub loops: LoopForest,
    /// Induction variables.
    pub induction: InductionInfo,
    /// Trace-transformation masks.
    pub masks: IgnoreMasks,
    /// Interprocedural memory alias analysis.
    pub alias: AliasAnalysis,
}

impl StaticInfo {
    /// Runs all static analyses on a program.
    pub fn analyze(program: &Program) -> StaticInfo {
        let cfg = Cfg::build(program);
        let deps = ControlDeps::compute(&cfg);
        let loops = LoopForest::find(&cfg);
        let induction = InductionInfo::analyze(program, &cfg, &loops);
        let masks = IgnoreMasks::from_parts(program, &induction);
        let alias = AliasAnalysis::analyze(program, &cfg);
        StaticInfo {
            cfg,
            deps,
            loops,
            induction,
            masks,
            alias,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::assemble;

    #[test]
    fn inline_mask_covers_calls_and_sp() {
        let program = assemble(
            r#"
            .text
            main:
                call f             # pc 0
                halt               # pc 1
            f:
                addi sp, sp, -8    # pc 2
                sw ra, 0(sp)       # pc 3
                lw ra, 0(sp)       # pc 4
                addi sp, sp, 8     # pc 5
                ret                # pc 6
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&program);
        let masks = IgnoreMasks::compute(&program, &cfg);
        assert!(masks.inline_ignored(0)); // call
        assert!(!masks.inline_ignored(1)); // halt
        assert!(masks.inline_ignored(2)); // sp -= 8
        assert!(masks.inline_ignored(3)); // ra spill is call overhead
        assert!(masks.inline_ignored(4)); // ra restore is call overhead
        assert!(masks.inline_ignored(5)); // sp += 8
        assert!(masks.inline_ignored(6)); // ret
        assert_eq!(masks.len(), 7);
        assert!(!masks.is_empty());
    }

    #[test]
    fn ignored_combines_masks() {
        let program = assemble(
            r#"
            .text
            main:
                li r8, 0
            loop:
                addi r8, r8, 1     # pc 1
                blt r8, r9, loop   # pc 2
                ret                # pc 3
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&program);
        let masks = IgnoreMasks::compute(&program, &cfg);
        assert!(masks.ignored(1, true));
        assert!(!masks.ignored(1, false));
        assert!(masks.ignored(3, false)); // ret ignored regardless
    }

    #[test]
    fn static_info_is_consistent() {
        let program = assemble(
            ".text\nmain: li r8, 5\nloop: addi r8, r8, -1\n bgt r8, r0, loop\n halt",
        )
        .unwrap();
        let info = StaticInfo::analyze(&program);
        assert_eq!(info.cfg.blocks().len(), 3);
        assert_eq!(info.loops.loops().len(), 1);
        assert!(info.deps.check(&info.cfg, &program.text));
        assert_eq!(info.masks.len(), program.text.len());
    }
}
