//! Natural-loop discovery from dominator back edges.
//!
//! The study analyzed the object code to "discover the loops in the
//! program" (Section 4.2) before running its induction-variable data-flow
//! analysis. This module finds natural loops per procedure: a back edge is
//! an edge `latch -> header` where `header` dominates `latch`; the loop
//! body is everything that reaches the latch without passing through the
//! header.

use std::collections::HashMap;

use crate::dom::DomTree;
use crate::{BlockId, Cfg};

/// One natural loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Loop {
    /// The loop header block.
    pub header: BlockId,
    /// Sources of back edges into the header.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including the header.
    pub blocks: Vec<BlockId>,
}

impl Loop {
    /// Whether the loop contains a block.
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.contains(&block)
    }
}

/// All natural loops of a program, with containment queries.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// For each block, indices into `loops` of every loop containing it,
    /// innermost (smallest) first.
    containing: Vec<Vec<usize>>,
}

impl LoopForest {
    /// Finds all natural loops in every procedure of `cfg`.
    ///
    /// Loops sharing a header are merged (as natural-loop theory
    /// prescribes). Irreducible cycles (which our compiler never emits) are
    /// simply not reported as loops — a conservative choice: their
    /// induction variables are not removed by perfect unrolling.
    pub fn find(cfg: &Cfg) -> LoopForest {
        let mut loops: Vec<Loop> = Vec::new();

        for proc in cfg.procs() {
            let (graph, local_of_block) = cfg.proc_digraph(proc);
            let entry = local_of_block[&proc.entry];
            let dom = DomTree::compute(&graph, entry);

            // Collect back edges grouped by header.
            let mut by_header: HashMap<usize, Vec<usize>> = HashMap::new();
            for latch in 0..graph.len() {
                if !dom.is_reachable(latch) {
                    continue;
                }
                for &succ in graph.succs(latch) {
                    if dom.dominates(succ, latch) {
                        by_header.entry(succ).or_default().push(latch);
                    }
                }
            }

            let mut headers: Vec<usize> = by_header.keys().copied().collect();
            headers.sort_unstable();
            for header in headers {
                let latches = &by_header[&header];
                // Natural loop: header + all nodes reaching a latch without
                // passing through the header.
                let mut in_loop = vec![false; graph.len()];
                in_loop[header] = true;
                let mut stack: Vec<usize> = Vec::new();
                for &latch in latches {
                    if !in_loop[latch] {
                        in_loop[latch] = true;
                        stack.push(latch);
                    }
                }
                while let Some(node) = stack.pop() {
                    for &pred in graph.preds(node) {
                        if !in_loop[pred] && dom.is_reachable(pred) {
                            in_loop[pred] = true;
                            stack.push(pred);
                        }
                    }
                }
                let blocks: Vec<BlockId> = (0..graph.len())
                    .filter(|&local| in_loop[local])
                    .map(|local| proc.blocks[local])
                    .collect();
                loops.push(Loop {
                    header: proc.blocks[header],
                    latches: latches.iter().map(|&l| proc.blocks[l]).collect(),
                    blocks,
                });
            }
        }

        let mut containing: Vec<Vec<usize>> = vec![Vec::new(); cfg.blocks().len()];
        for (li, l) in loops.iter().enumerate() {
            for block in &l.blocks {
                containing[block.index()].push(li);
            }
        }
        // Innermost (fewest blocks) first.
        for list in &mut containing {
            list.sort_by_key(|&li| loops[li].blocks.len());
        }

        LoopForest { loops, containing }
    }

    /// All loops.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Indices of loops containing `block`, innermost first.
    pub fn loops_containing(&self, block: BlockId) -> &[usize] {
        &self.containing[block.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::assemble;

    fn forest(source: &str) -> (Cfg, LoopForest) {
        let program = assemble(source).unwrap();
        let cfg = Cfg::build(&program);
        let forest = LoopForest::find(&cfg);
        (cfg, forest)
    }

    #[test]
    fn single_loop() {
        let (cfg, forest) = forest(
            ".text\nmain: li r8, 3\nloop: addi r8, r8, -1\n bgt r8, r0, loop\n halt",
        );
        assert_eq!(forest.loops().len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, cfg.block_of_instr(1));
        assert_eq!(l.blocks.len(), 1);
        assert_eq!(l.latches, vec![cfg.block_of_instr(1)]);
    }

    #[test]
    fn nested_loops() {
        let (cfg, forest) = forest(
            r#"
            .text
            main:
                li r8, 3           # pc 0
            outer:
                li r9, 3           # pc 1
            inner:
                addi r9, r9, -1    # pc 2
                bgt r9, r0, inner  # pc 3
                addi r8, r8, -1    # pc 4
                bgt r8, r0, outer  # pc 5
                halt               # pc 6
            "#,
        );
        assert_eq!(forest.loops().len(), 2);
        let inner_block = cfg.block_of_instr(2);
        let containing = forest.loops_containing(inner_block);
        assert_eq!(containing.len(), 2);
        // Innermost first.
        let innermost = &forest.loops()[containing[0]];
        assert_eq!(innermost.header, cfg.block_of_instr(2));
        let outermost = &forest.loops()[containing[1]];
        assert_eq!(outermost.header, cfg.block_of_instr(1));
        assert!(outermost.blocks.len() > innermost.blocks.len());
    }

    #[test]
    fn no_loops_in_straight_line() {
        let (_, forest) = forest(".text\nmain: li r8, 1\n halt");
        assert!(forest.loops().is_empty());
    }

    #[test]
    fn while_loop_with_header_test() {
        // Header contains the test; body is separate; classic while shape.
        let (cfg, forest) = forest(
            r#"
            .text
            main:
                li r8, 5           # pc 0
            head:
                ble r8, r0, done   # pc 1
                addi r8, r8, -1    # pc 2
                j head             # pc 3
            done:
                halt               # pc 4
            "#,
        );
        assert_eq!(forest.loops().len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, cfg.block_of_instr(1));
        assert_eq!(l.blocks.len(), 2);
        assert!(l.contains(cfg.block_of_instr(2)));
        assert!(!l.contains(cfg.block_of_instr(4)));
    }

    #[test]
    fn loops_in_separate_procedures() {
        let (_, forest) = forest(
            r#"
            .text
            main:
                call f
            m1: addi r8, r8, -1
                bgt r8, r0, m1
                halt
            f:
            f1: addi r9, r9, -1
                bgt r9, r0, f1
                ret
            "#,
        );
        assert_eq!(forest.loops().len(), 2);
    }
}
