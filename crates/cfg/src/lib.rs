//! # clfp-cfg
//!
//! Static analyses on clfp object code, reproducing Section 4 of Lam &
//! Wilson (ISCA 1992):
//!
//! * **Control-flow graphs** recovered from the binary ([`Cfg`]): basic
//!   blocks, successor edges, and a partition of blocks into procedures
//!   (the paper used `pixie` block boundaries plus object-code decoding).
//! * **Dominators and postdominators** via the Cooper–Harvey–Kennedy
//!   iterative algorithm ([`dom`]).
//! * **Control dependence** as the reverse dominance frontier of each basic
//!   block ([`ControlDeps`]), the paper's citation \[3\] (Cytron et al.).
//! * **Natural loops** found from dominator back edges ([`loops`]).
//! * **Induction-variable analysis** ([`induction`]): registers incremented
//!   by a constant exactly once per loop iteration, the comparisons of such
//!   registers against loop invariants, and the branches on those
//!   comparisons — the instructions deleted by the study's *perfect loop
//!   unrolling*.
//! * **Ignore masks** ([`IgnoreMasks`]): the per-instruction sets removed
//!   from traces by perfect inlining (calls, returns, stack-pointer
//!   arithmetic) and by perfect unrolling.
//! * **Iterative dataflow** ([`dataflow`]): a generic gen/kill worklist
//!   solver with bitset lattices, plus reaching definitions, register
//!   liveness, and maybe-uninitialized-read client analyses used by the
//!   `clfp-verify` lint pass.
//! * **Interprocedural alias analysis** ([`alias`]): whole-program call
//!   graph, abstract-region partition of the address space, Andersen-style
//!   points-to with per-procedure parallel solving, and the per-access
//!   alias classification behind the `Static` memory-disambiguation mode.
//!
//! ## Example
//!
//! ```
//! use clfp_isa::assemble;
//! use clfp_cfg::{Cfg, ControlDeps};
//!
//! let program = assemble(
//!     ".text\nmain: li r8, 10\nloop: addi r8, r8, -1\n bgt r8, r0, loop\n halt",
//! )?;
//! let cfg = Cfg::build(&program);
//! assert_eq!(cfg.blocks().len(), 3);
//! let deps = ControlDeps::compute(&cfg);
//! // The loop body is control dependent on the loop branch (pc 2).
//! let body = cfg.block_of_instr(1);
//! assert_eq!(deps.rdf_branches(body), &[2]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod alias;
mod controldep;
pub mod dataflow;
pub mod dom;
mod graph;
pub mod induction;
pub mod loops;
mod mask;

pub use alias::{AliasAnalysis, AliasKind, CallGraph, MemAccess, RegionUniverse};
pub use controldep::{CdViolation, CdViolationReason, ControlDeps};
pub use dataflow::{BitSet, DefSite, Liveness, MaybeUninit, ReachingDefs, UninitRead};
pub use graph::{Block, BlockId, Cfg, Proc, ProcId};
pub use induction::InductionInfo;
pub use loops::{Loop, LoopForest};
pub use mask::{IgnoreMasks, StaticInfo};
