//! Dominator trees and dominance frontiers.
//!
//! Implements the Cooper–Harvey–Kennedy iterative dominance algorithm over
//! an abstract directed graph. The same code computes *postdominators* when
//! run on the reversed graph — which is how [`crate::ControlDeps`] obtains
//! reverse dominance frontiers (control dependences).

/// A small adjacency-list digraph over `usize` node ids.
#[derive(Clone, Debug, Default)]
pub struct Digraph {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl Digraph {
    /// Creates a graph with `nodes` nodes and no edges.
    pub fn new(nodes: usize) -> Digraph {
        Digraph {
            succs: vec![Vec::new(); nodes],
            preds: vec![Vec::new(); nodes],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Adds an edge `from -> to` (duplicates are allowed and harmless).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        self.succs[from].push(to);
        self.preds[to].push(from);
    }

    /// Successors of a node.
    pub fn succs(&self, node: usize) -> &[usize] {
        &self.succs[node]
    }

    /// Predecessors of a node.
    pub fn preds(&self, node: usize) -> &[usize] {
        &self.preds[node]
    }

    /// The graph with every edge reversed.
    pub fn reversed(&self) -> Digraph {
        Digraph {
            succs: self.preds.clone(),
            preds: self.succs.clone(),
        }
    }
}

/// A dominator tree over a [`Digraph`].
#[derive(Clone, Debug)]
pub struct DomTree {
    idom: Vec<Option<usize>>,
    rpo_index: Vec<usize>,
    root: usize,
}

impl DomTree {
    /// Computes the dominator tree of `graph` rooted at `root`.
    ///
    /// Nodes unreachable from the root have no immediate dominator and are
    /// reported as not dominated by anything ([`DomTree::idom`] returns
    /// `None`; the root also returns `None`).
    pub fn compute(graph: &Digraph, root: usize) -> DomTree {
        let n = graph.len();
        // Reverse postorder.
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 in progress, 2 done
        let mut stack = vec![(root, 0usize)];
        state[root] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < graph.succs(node).len() {
                let succ = graph.succs(node)[*next];
                *next += 1;
                if state[succ] == 0 {
                    state[succ] = 1;
                    stack.push((succ, 0));
                }
            } else {
                state[node] = 2;
                order.push(node);
                stack.pop();
            }
        }
        order.reverse(); // now reverse postorder, root first

        let mut rpo_index = vec![usize::MAX; n];
        for (i, &node) in order.iter().enumerate() {
            rpo_index[node] = i;
        }

        let mut idom: Vec<Option<usize>> = vec![None; n];
        idom[root] = Some(root);
        let mut changed = true;
        while changed {
            changed = false;
            for &node in order.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &pred in graph.preds(node) {
                    if idom[pred].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => pred,
                        Some(current) => intersect(&idom, &rpo_index, pred, current),
                    });
                }
                if new_idom.is_some() && idom[node] != new_idom {
                    idom[node] = new_idom;
                    changed = true;
                }
            }
        }
        // Normalize: the root's idom is conventionally itself internally,
        // but we report None for it.
        DomTree {
            idom,
            rpo_index,
            root,
        }
    }

    /// The immediate dominator of `node`, or `None` for the root and
    /// unreachable nodes.
    pub fn idom(&self, node: usize) -> Option<usize> {
        match self.idom[node] {
            Some(d) if d == node => None,
            other => other,
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut node = b;
        loop {
            if node == a {
                return true;
            }
            match self.idom(node) {
                Some(parent) => node = parent,
                None => return false,
            }
        }
    }

    /// Whether `node` is reachable from the root.
    pub fn is_reachable(&self, node: usize) -> bool {
        self.idom[node].is_some()
    }

    /// Computes the dominance frontier of every node.
    ///
    /// `frontier[b]` is the set of nodes `f` such that `b` dominates a
    /// predecessor of `f` but does not strictly dominate `f` — when run on
    /// the reversed CFG, this is exactly the set of control dependences.
    pub fn dominance_frontier(&self, graph: &Digraph) -> Vec<Vec<usize>> {
        let n = graph.len();
        let mut frontier: Vec<Vec<usize>> = vec![Vec::new(); n];
        for node in 0..n {
            if !self.is_reachable(node) {
                continue;
            }
            // Walk each predecessor's dominator chain up to (excluding)
            // the node's immediate dominator. Unlike the textbook CHK
            // presentation there is no `preds >= 2` shortcut: a
            // single-pred walk stops immediately (the pred *is* the idom),
            // while a self-loop on the root correctly yields a
            // self-frontier.
            let stop = self.idom(node);
            for &pred in graph.preds(node) {
                if !self.is_reachable(pred) {
                    continue;
                }
                let mut runner = pred;
                loop {
                    if Some(runner) == stop {
                        break;
                    }
                    if !frontier[runner].contains(&node) {
                        frontier[runner].push(node);
                    }
                    match self.idom(runner) {
                        Some(parent) => runner = parent,
                        None => break,
                    }
                }
            }
        }
        frontier
    }

    /// Reverse-postorder index of a node (`usize::MAX` if unreachable).
    pub fn rpo_index(&self, node: usize) -> usize {
        self.rpo_index[node]
    }

    /// The root the tree was computed from.
    pub fn root(&self) -> usize {
        self.root
    }
}

fn intersect(
    idom: &[Option<usize>],
    rpo_index: &[usize],
    mut a: usize,
    mut b: usize,
) -> usize {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a].expect("processed node has idom");
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b].expect("processed node has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the classic diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
    fn diamond() -> Digraph {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn diamond_dominators() {
        let g = diamond();
        let dom = DomTree::compute(&g, 0);
        assert_eq!(dom.idom(0), None);
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(0));
        assert_eq!(dom.idom(3), Some(0));
        assert!(dom.dominates(0, 3));
        assert!(!dom.dominates(1, 3));
        assert!(dom.dominates(3, 3));
    }

    #[test]
    fn diamond_frontier() {
        let g = diamond();
        let dom = DomTree::compute(&g, 0);
        let df = dom.dominance_frontier(&g);
        assert_eq!(df[1], vec![3]);
        assert_eq!(df[2], vec![3]);
        assert!(df[0].is_empty());
        assert!(df[3].is_empty());
    }

    #[test]
    fn loop_dominators() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(2, 3);
        let dom = DomTree::compute(&g, 0);
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(1));
        assert_eq!(dom.idom(3), Some(2));
        let df = dom.dominance_frontier(&g);
        // The loop body (2) and header (1) both have the header in their
        // frontier because of the back edge.
        assert!(df[2].contains(&1));
        assert!(df[1].contains(&1));
    }

    #[test]
    fn unreachable_nodes() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        // node 2 is unreachable
        let dom = DomTree::compute(&g, 0);
        assert!(dom.is_reachable(1));
        assert!(!dom.is_reachable(2));
        assert_eq!(dom.idom(2), None);
        assert!(!dom.dominates(0, 2));
    }

    #[test]
    fn postdominators_via_reversal() {
        // if-then-else: 0 -> {1,2} -> 3 (exit)
        let g = diamond();
        let rev = g.reversed();
        let pdom = DomTree::compute(&rev, 3);
        assert_eq!(pdom.idom(0), Some(3));
        assert_eq!(pdom.idom(1), Some(3));
        assert_eq!(pdom.idom(2), Some(3));
        // Control dependence: nodes 1 and 2 are control dependent on 0.
        let rdf = pdom.dominance_frontier(&rev);
        assert_eq!(rdf[1], vec![0]);
        assert_eq!(rdf[2], vec![0]);
        assert!(rdf[3].is_empty());
        assert!(rdf[0].is_empty());
    }

    #[test]
    fn irreducible_graph_terminates() {
        // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1 (irreducible-ish)
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        let dom = DomTree::compute(&g, 0);
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(0));
    }

    #[test]
    fn single_node() {
        let g = Digraph::new(1);
        let dom = DomTree::compute(&g, 0);
        assert_eq!(dom.idom(0), None);
        assert!(dom.dominates(0, 0));
    }
}
