//! Induction-variable analysis for *perfect loop unrolling*.
//!
//! Section 4.2 of the paper: "we use iterative data flow analysis to
//! identify registers that are incremented by a constant exactly once per
//! loop iteration. [...] the analysis marks all instructions that increment
//! loop index and induction variables, comparisons of loop indices with
//! loop invariant values, and branches based on the results of such
//! comparisons. These instructions are ignored when they occur in the
//! trace."
//!
//! A register `r` is an induction variable of loop `L` when:
//!
//! 1. `L` contains exactly one definition of `r`,
//! 2. that definition is `addi r, r, c` (equivalently `subi`) with a
//!    nonzero constant, and
//! 3. its block dominates every latch of `L` (so it executes exactly once
//!    per complete iteration).
//!
//! Calls conservatively define the caller-visible registers (`v0`, `v1`,
//! `a0`–`a3`, `ra`); allocatable registers are callee-saved by the MiniC
//! compiler, so they survive calls.

use std::collections::HashMap;

use clfp_isa::{AluOp, Instr, Program, Reg};

use crate::dom::DomTree;
use crate::{BlockId, Cfg, LoopForest, ProcId};

/// Registers a call may redefine from the caller's perspective.
/// Allocatable registers are callee-saved by the MiniC compiler and
/// survive calls; everything else the caller must assume clobbered.
pub const CALL_DEFS: [Reg; 7] = [
    Reg::V0,
    Reg::V1,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::RA,
];

const COMPARE_OPS: [AluOp; 5] = [AluOp::Slt, AluOp::Sltu, AluOp::Sle, AluOp::Seq, AluOp::Sne];

/// Result of induction-variable analysis.
#[derive(Clone, Debug)]
pub struct InductionInfo {
    unroll_ignored: Vec<bool>,
    induction_regs: Vec<Vec<Reg>>,
}

impl InductionInfo {
    /// Runs the analysis over every loop found by `forest`.
    pub fn analyze(program: &Program, cfg: &Cfg, forest: &LoopForest) -> InductionInfo {
        let text = &program.text;
        let mut unroll_ignored = vec![false; text.len()];
        let mut induction_regs = Vec::with_capacity(forest.loops().len());

        // Per-procedure dominator trees, computed lazily.
        let mut dom_cache: HashMap<ProcId, (DomTree, HashMap<BlockId, usize>)> = HashMap::new();

        for l in forest.loops() {
            let proc_id = cfg.proc_of_block(l.header);
            let (dom, local_of_block) = dom_cache.entry(proc_id).or_insert_with(|| {
                let proc = cfg.proc(proc_id);
                let (graph, local_of_block) = cfg.proc_digraph(proc);
                (DomTree::compute(&graph, local_of_block[&proc.entry]), local_of_block)
            });

            // Definitions of each register within the loop.
            let mut defs: HashMap<Reg, Vec<u32>> = HashMap::new();
            for &block in &l.blocks {
                for pc in cfg.block(block).instrs() {
                    match text[pc as usize] {
                        Instr::Call { .. } | Instr::CallR { .. } => {
                            for reg in CALL_DEFS {
                                defs.entry(reg).or_default().push(pc);
                            }
                        }
                        instr => {
                            if let Some(reg) = instr.def() {
                                defs.entry(reg).or_default().push(pc);
                            }
                        }
                    }
                }
            }
            let invariant = |reg: Reg| reg.is_zero() || !defs.contains_key(&reg);

            // Find the induction registers of this loop.
            let mut regs = Vec::new();
            let mut increments = Vec::new();
            for (&reg, reg_defs) in &defs {
                let [pc] = reg_defs[..] else { continue };
                let Instr::AluI { op, rd, rs, imm } = text[pc as usize] else {
                    continue;
                };
                let is_inc = match op {
                    AluOp::Add => imm != 0,
                    AluOp::Sub => imm != 0,
                    _ => false,
                };
                if !(is_inc && rd == reg && rs == reg) {
                    continue;
                }
                // The increment must execute exactly once per iteration:
                // its block dominates every latch.
                let def_block = cfg.block_of_instr(pc);
                let def_local = local_of_block[&def_block];
                let once_per_iter = l
                    .latches
                    .iter()
                    .all(|latch| dom.dominates(def_local, local_of_block[latch]));
                if once_per_iter {
                    regs.push(reg);
                    increments.push(pc);
                }
            }
            regs.sort_unstable();

            for pc in increments {
                unroll_ignored[pc as usize] = true;
            }

            // Mark loop-index comparisons against invariants, remembering
            // the compare destinations so branches on them can be marked.
            let mut compare_results: Vec<Reg> = Vec::new();
            for &block in &l.blocks {
                for pc in cfg.block(block).instrs() {
                    match text[pc as usize] {
                        Instr::Alu { op, rd, rs, rt } if COMPARE_OPS.contains(&op) => {
                            let ind_vs_inv = (regs.contains(&rs) && invariant(rt))
                                || (regs.contains(&rt) && invariant(rs));
                            if ind_vs_inv {
                                unroll_ignored[pc as usize] = true;
                                if defs.get(&rd).map(Vec::len) == Some(1) {
                                    compare_results.push(rd);
                                }
                            }
                        }
                        Instr::AluI { op, rd, rs, .. } if COMPARE_OPS.contains(&op)
                            && regs.contains(&rs) => {
                                unroll_ignored[pc as usize] = true;
                                if defs.get(&rd).map(Vec::len) == Some(1) {
                                    compare_results.push(rd);
                                }
                            }
                        _ => {}
                    }
                }
            }

            // Mark branches on loop indices or on marked compare results.
            for &block in &l.blocks {
                for pc in cfg.block(block).instrs() {
                    let Instr::Branch { rs, rt, .. } = text[pc as usize] else {
                        continue;
                    };
                    let operand_ok = |a: Reg, b: Reg| {
                        (regs.contains(&a) && invariant(b))
                            || (compare_results.contains(&a) && invariant(b))
                    };
                    if operand_ok(rs, rt) || operand_ok(rt, rs) {
                        unroll_ignored[pc as usize] = true;
                    }
                }
            }

            induction_regs.push(regs);
        }

        InductionInfo {
            unroll_ignored,
            induction_regs,
        }
    }

    /// Whether instruction `pc` is deleted from traces by perfect
    /// unrolling.
    pub fn is_unroll_ignored(&self, pc: u32) -> bool {
        self.unroll_ignored[pc as usize]
    }

    /// The per-instruction ignore mask (indexed by pc).
    pub fn mask(&self) -> &[bool] {
        &self.unroll_ignored
    }

    /// Induction registers of each loop, parallel to
    /// [`LoopForest::loops`](crate::LoopForest::loops).
    pub fn induction_regs(&self) -> &[Vec<Reg>] {
        &self.induction_regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::assemble;

    fn analyze(source: &str) -> (Program, Cfg, LoopForest, InductionInfo) {
        let program = assemble(source).unwrap();
        let cfg = Cfg::build(&program);
        let forest = LoopForest::find(&cfg);
        let info = InductionInfo::analyze(&program, &cfg, &forest);
        (program, cfg, forest, info)
    }

    #[test]
    fn simple_counted_loop() {
        let (_, _, forest, info) = analyze(
            r#"
            .text
            main:
                li r8, 0           # pc 0: i = 0
                li r9, 100         # pc 1: n = 100
            loop:
                lw r10, 0x1000(r0) # pc 2: body work
                addi r8, r8, 1     # pc 3: i++
                blt r8, r9, loop   # pc 4: i < n
                halt               # pc 5
            "#,
        );
        assert_eq!(forest.loops().len(), 1);
        assert_eq!(info.induction_regs()[0], vec![Reg::new(8)]);
        assert!(info.is_unroll_ignored(3)); // increment
        assert!(info.is_unroll_ignored(4)); // loop branch
        assert!(!info.is_unroll_ignored(2)); // body survives
        assert!(!info.is_unroll_ignored(0));
    }

    #[test]
    fn compare_result_branch() {
        let (_, _, _, info) = analyze(
            r#"
            .text
            main:
                li r8, 0           # pc 0
                li r9, 10          # pc 1
            loop:
                addi r8, r8, 1     # pc 2
                slt r10, r8, r9    # pc 3: t = i < n
                bne r10, r0, loop  # pc 4: branch on t
                halt               # pc 5
            "#,
        );
        assert!(info.is_unroll_ignored(2));
        assert!(info.is_unroll_ignored(3));
        assert!(info.is_unroll_ignored(4));
    }

    #[test]
    fn data_dependent_branch_not_marked() {
        let (_, _, _, info) = analyze(
            r#"
            .text
            main:
                li r8, 0
            loop:
                lw r10, 0x1000(r0) # pc 1: data load
                addi r8, r8, 1     # pc 2
                bgt r10, r0, loop  # pc 3: branch on DATA, not index
                halt
            "#,
        );
        assert!(info.is_unroll_ignored(2)); // increment still removed
        assert!(!info.is_unroll_ignored(3)); // data-dependent branch kept
    }

    #[test]
    fn multiple_defs_disqualify() {
        let (_, _, _, info) = analyze(
            r#"
            .text
            main:
                li r8, 0
            loop:
                addi r8, r8, 1     # pc 1
                addi r8, r8, 1     # pc 2: second def of r8
                blt r8, r9, loop   # pc 3
                halt
            "#,
        );
        assert!(!info.is_unroll_ignored(1));
        assert!(!info.is_unroll_ignored(2));
        assert!(!info.is_unroll_ignored(3));
    }

    #[test]
    fn conditional_increment_disqualifies() {
        // The increment is guarded by a data branch, so it does not execute
        // every iteration: not an induction variable.
        let (_, _, _, info) = analyze(
            r#"
            .text
            main:
                li r8, 0
            loop:
                lw r10, 0x1000(r0) # pc 1
                beq r10, r0, skip  # pc 2
                addi r8, r8, 1     # pc 3: conditional increment
            skip:
                bgt r10, r0, loop  # pc 4 (latch)
                halt
            "#,
        );
        assert!(!info.is_unroll_ignored(3));
    }

    #[test]
    fn nested_loops_have_independent_induction_vars() {
        let (_, _, forest, info) = analyze(
            r#"
            .text
            main:
                li r8, 0           # pc 0: i
            outer:
                li r9, 0           # pc 1: j = 0 (redefined per outer iter)
            inner:
                addi r9, r9, 1     # pc 2: j++
                blt r9, r12, inner # pc 3
                addi r8, r8, 1     # pc 4: i++
                blt r8, r11, outer # pc 5
                halt
            "#,
        );
        assert_eq!(forest.loops().len(), 2);
        // Both increments and both branches are removed.
        for pc in [2, 3, 4, 5] {
            assert!(info.is_unroll_ignored(pc), "pc {pc} should be ignored");
        }
        // j is NOT an induction var of the outer loop (two defs there:
        // `li` and the increment), but it is of the inner loop.
        let inner_idx = forest
            .loops()
            .iter()
            .position(|l| l.blocks.len() == 1)
            .unwrap();
        assert_eq!(info.induction_regs()[inner_idx], vec![Reg::new(9)]);
    }

    #[test]
    fn call_in_loop_clobbers_caller_visible_regs() {
        let (_, _, _, info) = analyze(
            r#"
            .text
            main:
                li v0, 0
            loop:
                call f             # pc 1
                addi v0, v0, 1     # pc 2: v0 also defined by the call
                blt v0, r9, loop   # pc 3
                halt
            f:
                ret
            "#,
        );
        // v0 has two defs in the loop (call + addi): not induction.
        assert!(!info.is_unroll_ignored(2));
        assert!(!info.is_unroll_ignored(3));
    }
}
