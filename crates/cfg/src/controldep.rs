use std::fmt;

use clfp_isa::Instr;

use crate::dom::{Digraph, DomTree};
use crate::{BlockId, Cfg};

/// Why a reported control dependence fails the structural invariant.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CdViolationReason {
    /// The dependence pc is not the terminator of its block.
    NotBlockTerminator,
    /// The dependence pc is not a conditional branch instruction.
    NotCondBranch,
}

/// A control-dependence entry that violates the structural invariant:
/// every reported dependence must be a block-terminating conditional
/// branch. Produced by [`ControlDeps::check_detailed`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CdViolation {
    /// The block whose dependence list contains the offending entry.
    pub block: BlockId,
    /// The offending branch pc.
    pub branch_pc: u32,
    /// What is wrong with it.
    pub reason: CdViolationReason,
}

impl fmt::Display for CdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.reason {
            CdViolationReason::NotBlockTerminator => "is not its block's terminator",
            CdViolationReason::NotCondBranch => "is not a conditional branch",
        };
        write!(
            f,
            "control dependence of block b{} on pc {} {what}",
            self.block.0, self.branch_pc
        )
    }
}

/// Control-dependence information for every basic block, computed per
/// procedure as the *reverse dominance frontier* (Section 4.4.1 of the
/// paper; algorithm of Cytron et al., their citation \[3\]).
///
/// For each block, [`ControlDeps::rdf_branches`] lists the instruction
/// indices of the conditional branches the block is immediately control
/// dependent on. A block with an empty list depends only on its procedure's
/// invocation (interprocedural control dependence, handled dynamically by
/// the trace analyzer).
#[derive(Clone, Debug)]
pub struct ControlDeps {
    /// Per block: terminator pcs of the RDF blocks.
    rdf_branches: Vec<Vec<u32>>,
}

impl ControlDeps {
    /// Computes control dependences for every procedure of `cfg`.
    ///
    /// A virtual exit node is appended to each procedure; return, computed
    /// jump, and halt blocks get edges to it. Blocks that cannot reach the
    /// exit (infinite loops) are connected to it directly so postdominators
    /// are defined everywhere — a conservative completion that cannot
    /// remove real control dependences.
    pub fn compute(cfg: &Cfg) -> ControlDeps {
        let mut rdf_branches: Vec<Vec<u32>> = vec![Vec::new(); cfg.blocks().len()];

        for proc in cfg.procs() {
            // Local index space: procedure blocks then the virtual exit.
            let local_count = proc.blocks.len() + 1;
            let exit = local_count - 1;
            let mut local_of_block = std::collections::HashMap::new();
            for (local, &block) in proc.blocks.iter().enumerate() {
                local_of_block.insert(block, local);
            }
            let mut graph = Digraph::new(local_count);
            for (local, &block) in proc.blocks.iter().enumerate() {
                let succs = &cfg.block(block).succs;
                let mut any = false;
                for succ in succs {
                    // Successors leaving the procedure (possible only from
                    // unreachable orphan blocks) count as exits.
                    if let Some(&succ_local) = local_of_block.get(succ) {
                        graph.add_edge(local, succ_local);
                        any = true;
                    }
                }
                if !any {
                    graph.add_edge(local, exit);
                }
            }
            // Connect exit-unreachable blocks (infinite loops) to the exit.
            let mut reaches_exit = vec![false; local_count];
            reaches_exit[exit] = true;
            let mut stack = vec![exit];
            while let Some(node) = stack.pop() {
                for &pred in graph.preds(node).iter() {
                    if !reaches_exit[pred] {
                        reaches_exit[pred] = true;
                        stack.push(pred);
                    }
                }
            }
            for (local, reaches) in reaches_exit.iter_mut().enumerate().take(local_count - 1) {
                if !*reaches {
                    graph.add_edge(local, exit);
                    *reaches = true;
                }
            }

            // Postdominators: dominators of the reversed graph rooted at the
            // exit.
            let reversed = graph.reversed();
            let pdom = DomTree::compute(&reversed, exit);
            let rdf = pdom.dominance_frontier(&reversed);

            for (local, &block) in proc.blocks.iter().enumerate() {
                for &dep_local in &rdf[local] {
                    if dep_local == exit {
                        continue;
                    }
                    let dep_block = proc.blocks[dep_local];
                    // Only genuine two-way branches are control-dependence
                    // sources; blocks that gained an artificial exit edge
                    // (infinite loops) are not. Dropping them preserves the
                    // upper-bound property, exactly like the paper's
                    // recursion cutoff.
                    if cfg.block(dep_block).succs.len() == 2 {
                        rdf_branches[block.index()].push(cfg.block(dep_block).terminator());
                    }
                }
                rdf_branches[block.index()].sort_unstable();
                rdf_branches[block.index()].dedup();
            }
        }

        ControlDeps { rdf_branches }
    }

    /// Instruction indices of the conditional branches block `id` is
    /// immediately control dependent on.
    pub fn rdf_branches(&self, id: BlockId) -> &[u32] {
        &self.rdf_branches[id.index()]
    }

    /// Checks the structural invariant that every reported dependence is a
    /// block-terminating conditional branch. Used by tests and debug
    /// assertions; [`ControlDeps::check_detailed`] reports *which* entry
    /// disagrees.
    pub fn check(&self, cfg: &Cfg, text: &[Instr]) -> bool {
        self.check_detailed(cfg, text).is_ok()
    }

    /// Like [`ControlDeps::check`], but on failure reports the first
    /// offending block/branch pair and the reason it is invalid.
    pub fn check_detailed(&self, cfg: &Cfg, text: &[Instr]) -> Result<(), CdViolation> {
        for (index, branches) in self.rdf_branches.iter().enumerate() {
            let block = BlockId(index as u32);
            for &pc in branches {
                let branch_block = cfg.block_of_instr(pc);
                if cfg.block(branch_block).terminator() != pc {
                    return Err(CdViolation {
                        block,
                        branch_pc: pc,
                        reason: CdViolationReason::NotBlockTerminator,
                    });
                }
                if !text[pc as usize].is_cond_branch() {
                    return Err(CdViolation {
                        block,
                        branch_pc: pc,
                        reason: CdViolationReason::NotCondBranch,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::assemble;

    fn deps(source: &str) -> (clfp_isa::Program, Cfg, ControlDeps) {
        let program = assemble(source).unwrap();
        let cfg = Cfg::build(&program);
        let deps = ControlDeps::compute(&cfg);
        assert!(deps.check(&cfg, &program.text));
        (program, cfg, deps)
    }

    #[test]
    fn if_then_else() {
        let (_, cfg, deps) = deps(
            r#"
            .text
            main:
                beq r8, r0, else   # pc 0
                li r9, 1           # pc 1 (then)
                j join             # pc 2
            else:
                li r9, 2           # pc 3
            join:
                halt               # pc 4
            "#,
        );
        let then_block = cfg.block_of_instr(1);
        let else_block = cfg.block_of_instr(3);
        let join_block = cfg.block_of_instr(4);
        assert_eq!(deps.rdf_branches(then_block), &[0]);
        assert_eq!(deps.rdf_branches(else_block), &[0]);
        // The join is control independent: it executes either way.
        assert!(deps.rdf_branches(join_block).is_empty());
        // The entry block depends on nothing.
        assert!(deps.rdf_branches(cfg.block_of_instr(0)).is_empty());
    }

    #[test]
    fn loop_body_depends_on_loop_branch() {
        let (_, cfg, deps) = deps(
            r#"
            .text
            main:
                li r8, 10          # pc 0
            loop:
                addi r8, r8, -1    # pc 1
                bgt r8, r0, loop   # pc 2
                halt               # pc 3
            "#,
        );
        let body = cfg.block_of_instr(1);
        // The loop body is control dependent on its own branch (it runs
        // again only if the branch is taken).
        assert_eq!(deps.rdf_branches(body), &[2]);
        // Code after the loop is control independent of the loop.
        assert!(deps.rdf_branches(cfg.block_of_instr(3)).is_empty());
        // The entry is control independent.
        assert!(deps.rdf_branches(cfg.block_of_instr(0)).is_empty());
    }

    #[test]
    fn nested_if_inside_loop() {
        // for (...) { if (c) x; }  — paper's Section 2.2 example shape.
        let (_, cfg, deps) = deps(
            r#"
            .text
            main:
                li r8, 10          # pc 0
            loop:
                beq r9, r0, skip   # pc 1
                li r10, 1          # pc 2  (the `foo()` call site)
            skip:
                addi r8, r8, -1    # pc 3
                bgt r8, r0, loop   # pc 4
                halt               # pc 5  (the `bar()` call site)
            "#,
        );
        let foo = cfg.block_of_instr(2);
        // foo depends only on the inner condition.
        assert_eq!(deps.rdf_branches(foo), &[1]);
        // The inner condition block depends on the loop branch.
        let cond = cfg.block_of_instr(1);
        assert_eq!(deps.rdf_branches(cond), &[4]);
        // bar (after the loop) is independent of everything in the loop.
        assert!(deps.rdf_branches(cfg.block_of_instr(5)).is_empty());
    }

    #[test]
    fn check_detailed_reports_offending_entry() {
        let (program, cfg, deps) = deps(
            r#"
            .text
            main:
                li r8, 10          # pc 0
            loop:
                addi r8, r8, -1    # pc 1
                bgt r8, r0, loop   # pc 2
                halt               # pc 3
            "#,
        );
        assert_eq!(deps.check_detailed(&cfg, &program.text), Ok(()));
        // Forge corrupted dependence tables to exercise both failure modes.
        let blocks = cfg.blocks().len();
        // pc 0 (`li`) terminates its single-instruction block but is no
        // conditional branch.
        let bad = ControlDeps {
            rdf_branches: vec![vec![0]; blocks],
        };
        let violation = bad.check_detailed(&cfg, &program.text).unwrap_err();
        assert_eq!(violation.block, BlockId(0));
        assert_eq!(violation.branch_pc, 0);
        assert_eq!(violation.reason, CdViolationReason::NotCondBranch);
        assert!(!bad.check(&cfg, &program.text));
        // pc 1 (`addi`) sits mid-block: not a terminator.
        let bad = ControlDeps {
            rdf_branches: vec![vec![1]; blocks],
        };
        let violation = bad.check_detailed(&cfg, &program.text).unwrap_err();
        assert_eq!(violation.reason, CdViolationReason::NotBlockTerminator);
        assert!(violation.to_string().contains("terminator"));
    }

    #[test]
    fn infinite_loop_is_handled() {
        let (_, cfg, deps) = deps(".text\nmain: j main");
        // No panic; the single block exists and has some defined RDF.
        let block = cfg.block_of_instr(0);
        assert!(deps.rdf_branches(block).is_empty());
    }

    #[test]
    fn separate_procedures_are_independent() {
        let (_, cfg, deps) = deps(
            r#"
            .text
            main:
                beq r8, r0, end    # pc 0
                call f             # pc 1
            end:
                halt               # pc 2
            f:
                beq a0, r0, fend   # pc 3
                li r9, 1           # pc 4
            fend:
                ret                # pc 5
            "#,
        );
        // Inside f, block at pc 4 depends on f's own branch only —
        // interprocedural dependence on pc 0 is handled dynamically.
        let inner = cfg.block_of_instr(4);
        assert_eq!(deps.rdf_branches(inner), &[3]);
        let call_block = cfg.block_of_instr(1);
        assert_eq!(deps.rdf_branches(call_block), &[0]);
    }
}
