use std::collections::BTreeSet;

use clfp_isa::{Instr, Program};

/// Identifier of a basic block within a [`Cfg`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a procedure within a [`Cfg`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The procedure's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A basic block: a maximal straight-line instruction sequence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// Index of the first instruction.
    pub start: u32,
    /// One past the index of the last instruction.
    pub end: u32,
    /// Intra-procedural successor blocks (call edges excluded; the
    /// fall-through after a call is a successor).
    pub succs: Vec<BlockId>,
    /// Intra-procedural predecessor blocks.
    pub preds: Vec<BlockId>,
}

impl Block {
    /// Index of the block's terminator instruction (its last instruction).
    pub fn terminator(&self) -> u32 {
        self.end - 1
    }

    /// Iterates over the instruction indices in this block.
    pub fn instrs(&self) -> impl Iterator<Item = u32> {
        self.start..self.end
    }
}

/// A procedure: an entry block and the set of blocks reachable from it via
/// intra-procedural edges.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Proc {
    /// Entry block.
    pub entry: BlockId,
    /// All blocks belonging to this procedure, in discovery order.
    pub blocks: Vec<BlockId>,
    /// Name, if the entry carries a code symbol.
    pub name: Option<String>,
}

/// The control-flow graph of a whole program: basic blocks, edges, and a
/// procedure partition — the structures the study recovered from MIPS object
/// code with `pixie` plus its own decoder (Section 4.4.1).
///
/// Computed jumps (`jr`) are treated as procedure exits: their targets are
/// statically unknown, which matches the paper's conservative treatment
/// (they are also never predicted).
#[derive(Clone, Debug)]
pub struct Cfg {
    blocks: Vec<Block>,
    block_of_instr: Vec<BlockId>,
    procs: Vec<Proc>,
    proc_of_block: Vec<Option<ProcId>>,
}

impl Cfg {
    /// Recovers the CFG from a program's text segment.
    ///
    /// Procedure entry points are the program entry, every direct call
    /// target, and every code address materialized by `li` (function
    /// pointers for indirect calls).
    pub fn build(program: &Program) -> Cfg {
        let text = &program.text;
        let len = text.len();
        assert!(len > 0, "cannot build a CFG for an empty program");

        // --- Pass 1: block leaders ---------------------------------------
        let mut leaders = BTreeSet::new();
        leaders.insert(0);
        leaders.insert(program.entry);
        let mut proc_entries = BTreeSet::new();
        proc_entries.insert(program.entry);
        for (index, instr) in text.iter().enumerate() {
            match *instr {
                Instr::Branch { target, .. } => {
                    leaders.insert(target);
                    if index + 1 < len {
                        leaders.insert(index as u32 + 1);
                    }
                }
                Instr::Jump { target } => {
                    leaders.insert(target);
                    if index + 1 < len {
                        leaders.insert(index as u32 + 1);
                    }
                }
                Instr::Call { target } => {
                    leaders.insert(target);
                    proc_entries.insert(target);
                    if index + 1 < len {
                        leaders.insert(index as u32 + 1);
                    }
                }
                Instr::CallR { .. } | Instr::Ret | Instr::JumpR { .. } | Instr::Halt
                    if index + 1 < len => {
                        leaders.insert(index as u32 + 1);
                    }
                Instr::Li { imm, .. }
                    // Code addresses taken as constants are potential
                    // indirect-call targets.
                    if imm >= 0 && (imm as usize) < len && is_code_symbol(program, imm as u32) => {
                        leaders.insert(imm as u32);
                        proc_entries.insert(imm as u32);
                    }
                _ => {}
            }
        }

        // --- Pass 2: blocks ----------------------------------------------
        let leader_list: Vec<u32> = leaders.into_iter().filter(|&l| (l as usize) < len).collect();
        let mut blocks = Vec::new();
        let mut block_of_instr = vec![BlockId(0); len];
        for (bi, &start) in leader_list.iter().enumerate() {
            // A block ends at the next leader or the first terminator.
            let hard_end = leader_list.get(bi + 1).copied().unwrap_or(len as u32);
            let mut end = start;
            while end < hard_end {
                end += 1;
                if text[(end - 1) as usize].ends_block() {
                    break;
                }
            }
            // `end` may be less than hard_end when a terminator appears
            // before the next leader; the instructions in between are
            // unreachable padding and become their own block(s) below.
            let id = BlockId(blocks.len() as u32);
            for pc in start..end {
                block_of_instr[pc as usize] = id;
            }
            blocks.push(Block {
                start,
                end,
                succs: Vec::new(),
                preds: Vec::new(),
            });
            // Unreachable tail between `end` and `hard_end` (e.g. code after
            // an unconditional jump with no label): give it a block so every
            // instruction is covered.
            let mut tail_start = end;
            while tail_start < hard_end {
                let mut tail_end = tail_start;
                while tail_end < hard_end {
                    tail_end += 1;
                    if text[(tail_end - 1) as usize].ends_block() {
                        break;
                    }
                }
                let tail_id = BlockId(blocks.len() as u32);
                for pc in tail_start..tail_end {
                    block_of_instr[pc as usize] = tail_id;
                }
                blocks.push(Block {
                    start: tail_start,
                    end: tail_end,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                tail_start = tail_end;
            }
        }

        // --- Pass 3: edges -------------------------------------------------
        let block_count = blocks.len();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (bi, block) in blocks.iter().enumerate() {
            let last = text[block.terminator() as usize];
            match last {
                Instr::Branch { target, .. } => {
                    edges.push((bi, block_of_instr[target as usize].index()));
                    if (block.end as usize) < len {
                        edges.push((bi, block_of_instr[block.end as usize].index()));
                    }
                }
                Instr::Jump { target } => {
                    edges.push((bi, block_of_instr[target as usize].index()));
                }
                // Calls: intra-procedural fall-through edge only.
                Instr::Call { .. } | Instr::CallR { .. } => {
                    if (block.end as usize) < len {
                        edges.push((bi, block_of_instr[block.end as usize].index()));
                    }
                }
                // Returns, computed jumps, halts: procedure exits.
                Instr::Ret | Instr::JumpR { .. } | Instr::Halt => {}
                // Straight-line block split by a leader.
                _ => {
                    if (block.end as usize) < len {
                        edges.push((bi, block_of_instr[block.end as usize].index()));
                    }
                }
            }
        }
        let mut seen = BTreeSet::new();
        for (from, to) in edges {
            if seen.insert((from, to)) {
                blocks[from].succs.push(BlockId(to as u32));
                blocks[to].preds.push(BlockId(from as u32));
            }
        }
        let _ = block_count;

        // --- Pass 4: procedure partition -----------------------------------
        let mut proc_of_block = vec![None; blocks.len()];
        let mut procs = Vec::new();
        for &entry_pc in &proc_entries {
            if entry_pc as usize >= len {
                continue;
            }
            let entry = block_of_instr[entry_pc as usize];
            if proc_of_block[entry.index()].is_some() {
                continue;
            }
            let proc_id = ProcId(procs.len() as u32);
            let mut worklist = vec![entry];
            let mut members = Vec::new();
            while let Some(block) = worklist.pop() {
                if proc_of_block[block.index()].is_some() {
                    continue;
                }
                proc_of_block[block.index()] = Some(proc_id);
                members.push(block);
                for &succ in &blocks[block.index()].succs {
                    if proc_of_block[succ.index()].is_none() {
                        worklist.push(succ);
                    }
                }
            }
            let name = program
                .symbols
                .code_symbols()
                .find(|&(_, at)| at == entry_pc)
                .map(|(name, _)| name.to_string());
            procs.push(Proc {
                entry,
                blocks: members,
                name,
            });
        }
        // Orphan blocks (unreachable padding): give each its own procedure
        // so every block has an owner.
        for (bi, owner) in proc_of_block.iter_mut().enumerate() {
            if owner.is_none() {
                let proc_id = ProcId(procs.len() as u32);
                *owner = Some(proc_id);
                procs.push(Proc {
                    entry: BlockId(bi as u32),
                    blocks: vec![BlockId(bi as u32)],
                    name: None,
                });
            }
        }

        Cfg {
            blocks,
            block_of_instr,
            procs,
            proc_of_block,
        }
    }

    /// All basic blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block containing instruction `pc`.
    pub fn block_of_instr(&self, pc: u32) -> BlockId {
        self.block_of_instr[pc as usize]
    }

    /// Accesses a block by id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// All procedures.
    pub fn procs(&self) -> &[Proc] {
        &self.procs
    }

    /// Accesses a procedure by id.
    pub fn proc(&self, id: ProcId) -> &Proc {
        &self.procs[id.index()]
    }

    /// The procedure owning a block.
    pub fn proc_of_block(&self, id: BlockId) -> ProcId {
        self.proc_of_block[id.index()].expect("every block is assigned a procedure")
    }

    /// The procedure owning instruction `pc`.
    pub fn proc_of_instr(&self, pc: u32) -> ProcId {
        self.proc_of_block(self.block_of_instr(pc))
    }

    /// Builds `proc`'s intra-procedural flow graph in a local index space
    /// (positions within `proc.blocks`), returning the graph and the
    /// block-to-local-index map. Successor edges leaving the procedure
    /// (possible only from unreachable orphan blocks) are dropped.
    pub fn proc_digraph(
        &self,
        proc: &Proc,
    ) -> (crate::dom::Digraph, std::collections::HashMap<BlockId, usize>) {
        let mut local_of_block = std::collections::HashMap::new();
        for (local, &block) in proc.blocks.iter().enumerate() {
            local_of_block.insert(block, local);
        }
        let mut graph = crate::dom::Digraph::new(proc.blocks.len());
        for (local, &block) in proc.blocks.iter().enumerate() {
            for succ in &self.block(block).succs {
                if let Some(&succ_local) = local_of_block.get(succ) {
                    graph.add_edge(local, succ_local);
                }
            }
        }
        (graph, local_of_block)
    }

    /// Renders the CFG in Graphviz DOT format: one cluster per procedure,
    /// one node per basic block labeled with its instruction range.
    pub fn to_dot(&self, program: &Program) -> String {
        self.to_dot_with(program, None)
    }

    /// Like [`Cfg::to_dot`], optionally overlaying control dependences as
    /// dashed gray edges from each controlling branch's block to the
    /// dependent block — useful for visualizing `clfp-verify` findings.
    pub fn to_dot_with(&self, program: &Program, deps: Option<&crate::ControlDeps>) -> String {
        self.to_dot_with_overlays(program, deps, None)
    }

    /// Like [`Cfg::to_dot_with`], additionally annotating each memory
    /// instruction with its alias scheduler class (`·A<class>`) and
    /// appending a dashed legend cluster mapping classes to region names,
    /// matching the CD-edge overlay style.
    pub fn to_dot_with_overlays(
        &self,
        program: &Program,
        deps: Option<&crate::ControlDeps>,
        alias: Option<&crate::AliasAnalysis>,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph cfg {\n  node [shape=box, fontname=monospace];\n");
        for (pi, proc) in self.procs.iter().enumerate() {
            let name = proc.name.as_deref().unwrap_or("anon");
            let _ = writeln!(out, "  subgraph cluster_{pi} {{");
            let _ = writeln!(out, "    label=\"{name}\";");
            for &block_id in &proc.blocks {
                let block = self.block(block_id);
                let mut label = String::new();
                for pc in block.instrs() {
                    let _ = write!(label, "{pc}: {}", program.text[pc as usize]);
                    if let Some(mark) =
                        alias.and_then(|alias| alias.region_label(pc))
                    {
                        let _ = write!(label, "  \u{b7}{mark}");
                    }
                    label.push_str("\\l");
                }
                let _ = writeln!(out, "    b{} [label=\"{label}\"];", block_id.0);
            }
            let _ = writeln!(out, "  }}");
        }
        if let Some(alias) = alias {
            // Legend: one line per scheduler class, listing the regions it
            // merges, rendered as a dashed gray cluster like the CD edges.
            let mut merged: Vec<Option<crate::BitSet>> =
                vec![None; alias.num_classes() as usize];
            for pc in 0..program.text.len() as u32 {
                let Some(access) = alias.accesses[pc as usize].as_ref() else {
                    continue;
                };
                let class = alias.scheduler_class(pc) as usize;
                merged[class]
                    .get_or_insert_with(|| crate::BitSet::new(alias.universe.len()))
                    .union_with(&access.regions);
            }
            let mut lines: Vec<String> = Vec::new();
            for (class, set) in merged.iter().enumerate() {
                let Some(set) = set else { continue };
                let regions: Vec<String> = set
                    .iter()
                    .map(|r| alias.universe.describe(r as u32, self))
                    .collect();
                lines.push(format!("A{class}: {}\\l", regions.join(", ")));
            }
            if !lines.is_empty() {
                let _ = writeln!(out, "  subgraph cluster_alias {{");
                let _ = writeln!(
                    out,
                    "    label=\"alias regions\"; style=dashed; color=gray;"
                );
                let _ = writeln!(
                    out,
                    "    alias_legend [shape=note, color=gray, label=\"{}\"];",
                    lines.concat()
                );
                let _ = writeln!(out, "  }}");
            }
        }
        for (bi, block) in self.blocks.iter().enumerate() {
            for succ in &block.succs {
                let _ = writeln!(out, "  b{bi} -> b{};", succ.0);
            }
        }
        if let Some(deps) = deps {
            for bi in 0..self.blocks.len() {
                for &branch_pc in deps.rdf_branches(BlockId(bi as u32)) {
                    let from = self.block_of_instr(branch_pc);
                    let _ = writeln!(
                        out,
                        "  b{} -> b{bi} [style=dashed, color=gray, constraint=false];",
                        from.0
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

fn is_code_symbol(program: &Program, index: u32) -> bool {
    program.symbols.code_symbols().any(|(_, at)| at == index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::assemble;

    fn build(source: &str) -> (Program, Cfg) {
        let program = assemble(source).unwrap();
        let cfg = Cfg::build(&program);
        (program, cfg)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, cfg) = build(".text\nmain: li r8, 1\n li r9, 2\n halt");
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].start, 0);
        assert_eq!(cfg.blocks()[0].end, 3);
        assert!(cfg.blocks()[0].succs.is_empty());
    }

    #[test]
    fn diamond_has_four_blocks() {
        let (_, cfg) = build(
            r#"
            .text
            main:
                beq r8, r0, else
                li r9, 1
                j join
            else:
                li r9, 2
            join:
                halt
            "#,
        );
        assert_eq!(cfg.blocks().len(), 4);
        let entry = cfg.block_of_instr(0);
        assert_eq!(cfg.block(entry).succs.len(), 2);
        let join = cfg.block_of_instr(4);
        assert_eq!(cfg.block(join).preds.len(), 2);
    }

    #[test]
    fn loop_back_edge() {
        let (_, cfg) = build(
            ".text\nmain: li r8, 3\nloop: addi r8, r8, -1\n bgt r8, r0, loop\n halt",
        );
        assert_eq!(cfg.blocks().len(), 3);
        let body = cfg.block_of_instr(1);
        // Body block contains the branch and has two successors: itself and
        // the exit.
        assert_eq!(cfg.block(body).succs.len(), 2);
        assert!(cfg.block(body).succs.contains(&body));
    }

    #[test]
    fn calls_split_blocks_but_fall_through() {
        let (_, cfg) = build(
            r#"
            .text
            main:
                li a0, 1
                call helper
                halt
            helper:
                add v0, a0, a0
                ret
            "#,
        );
        // Blocks: [li,call], [halt], [helper body].
        assert_eq!(cfg.blocks().len(), 3);
        let entry = cfg.block_of_instr(0);
        let after_call = cfg.block_of_instr(2);
        assert_eq!(cfg.block(entry).succs, vec![after_call]);
        // Two procedures.
        assert_eq!(cfg.procs().len(), 2);
        assert_eq!(cfg.proc_of_instr(0), cfg.proc_of_instr(2));
        assert_ne!(cfg.proc_of_instr(0), cfg.proc_of_instr(3));
        assert_eq!(
            cfg.proc(cfg.proc_of_instr(3)).name.as_deref(),
            Some("helper")
        );
    }

    #[test]
    fn function_pointer_creates_procedure() {
        let (_, cfg) = build(
            r#"
            .text
            main:
                li r8, handler
                callr r8
                halt
            handler:
                ret
            "#,
        );
        assert_eq!(cfg.procs().len(), 2);
        assert_eq!(
            cfg.proc(cfg.proc_of_instr(3)).name.as_deref(),
            Some("handler")
        );
    }

    #[test]
    fn unreachable_tail_gets_block() {
        let (_, cfg) = build(".text\nmain: j end\n li r8, 1\nend: halt");
        // Blocks: [j], [li r8,1] (unreachable), [halt].
        assert_eq!(cfg.blocks().len(), 3);
        let dead = cfg.block_of_instr(1);
        assert!(cfg.block(dead).preds.is_empty());
    }

    #[test]
    fn every_instr_has_a_block_and_proc() {
        let (program, cfg) = build(
            r#"
            .text
            main:
                beq r8, r0, a
                call f
            a:  halt
            f:  bgt a0, r0, b
                ret
            b:  jr ra
            "#,
        );
        for pc in 0..program.text.len() as u32 {
            let block = cfg.block_of_instr(pc);
            assert!(cfg.block(block).instrs().any(|i| i == pc));
            let _ = cfg.proc_of_instr(pc);
        }
    }

    #[test]
    fn dot_export_contains_blocks_and_edges() {
        let (program, cfg) = build(
            ".text\nmain: li r8, 3\nloop: addi r8, r8, -1\n bgt r8, r0, loop\n halt",
        );
        let dot = cfg.to_dot(&program);
        assert!(dot.starts_with("digraph cfg {"));
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("label=\"main\""));
        assert!(dot.contains("b1 -> b1;"), "missing back edge in:\n{dot}");
        assert!(dot.contains("bgt"));
    }

    #[test]
    fn dot_overlay_draws_dashed_control_deps() {
        let (program, cfg) = build(
            ".text\nmain: li r8, 3\nloop: addi r8, r8, -1\n bgt r8, r0, loop\n halt",
        );
        let deps = crate::ControlDeps::compute(&cfg);
        let plain = cfg.to_dot(&program);
        assert!(!plain.contains("style=dashed"));
        let overlay = cfg.to_dot_with(&program, Some(&deps));
        // The loop body depends on its own branch: a dashed self-edge.
        assert!(
            overlay.contains("b1 -> b1 [style=dashed, color=gray, constraint=false];"),
            "missing overlay edge in:\n{overlay}"
        );
    }

    #[test]
    fn dot_overlay_annotates_alias_regions() {
        let (program, cfg) = build(
            r#"
            .data
            a: .space 16
            b: .space 16
            .text
            main:
                sw r8, 0x1000(r0)  # a
                lw r9, 0x1010(r0)  # b
                sw r10, 4(sp)
                halt
            "#,
        );
        let alias = crate::AliasAnalysis::analyze(&program, &cfg);
        let plain = cfg.to_dot(&program);
        assert!(!plain.contains("cluster_alias"));
        let overlay = cfg.to_dot_with_overlays(&program, None, Some(&alias));
        // Every memory instruction carries its class mark; non-memory
        // instructions do not.
        assert!(overlay.contains("\u{b7}A"), "missing class marks in:\n{overlay}");
        assert!(!overlay.contains("halt  \u{b7}"));
        // The legend cluster names the regions, dashed-gray like CD edges.
        assert!(overlay.contains("cluster_alias"));
        assert!(overlay.contains("style=dashed"));
        assert!(overlay.contains("a") && overlay.contains("b"));
        assert!(overlay.contains("stack:main"), "legend in:\n{overlay}");
    }

    #[test]
    fn computed_jump_has_no_successors() {
        let (_, cfg) = build(".text\nmain: jr ra\n halt");
        let first = cfg.block_of_instr(0);
        assert!(cfg.block(first).succs.is_empty());
    }
}
