//! # clfp-workloads
//!
//! The benchmark suite of the reproduction, mirroring the paper's Table 1.
//!
//! The original study traced ten SPEC-era programs. Those binaries and
//! inputs are not reproducible today, so this crate provides ten MiniC
//! programs chosen to match each original's *algorithmic character* — the
//! property the study's conclusions actually depend on (branch density,
//! predictability, recursion, pointer chasing, data-dependent vs
//! data-independent control flow):
//!
//! | ours | paper | character |
//! |------|-------|-----------|
//! | `scan`     | awk        | text scanning, hash tables |
//! | `parse`    | ccom       | recursive descent, AST pointer chasing |
//! | `qsort`    | eqntott    | quicksort + truth tables, few data deps |
//! | `logic`    | espresso   | cube merging, worst-case prediction |
//! | `dataflow` | gcc (cc1)  | worklist bit-vector analysis over graphs |
//! | `eventsim` | irsim      | event wheel, function-pointer dispatch |
//! | `fmt`      | latex      | line breaking, pagination |
//! | `matmul`   | matrix300  | dense kernels, data-independent control |
//! | `sparse`   | spice2g6   | numeric but data-dependent control |
//! | `stencil`  | tomcatv    | mesh relaxation, data-independent control |
//!
//! All programs are self-contained (inputs come from a seeded LCG) and
//! deterministic, and every run returns a checksum so correctness is
//! testable on both the VM and the reference interpreter.
//!
//! ## Example
//!
//! ```
//! let suite = clfp_workloads::suite();
//! assert_eq!(suite.len(), 10);
//! let qsort = clfp_workloads::by_name("qsort").unwrap();
//! let program = qsort.compile()?;
//! assert!(program.text.len() > 100);
//! # Ok::<(), clfp_lang::LangError>(())
//! ```

use clfp_isa::Program;
use clfp_lang::LangError;

/// The paper's benchmark grouping: Table 3 reports the harmonic mean over
/// the non-numeric programs only.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WorkloadClass {
    /// The C-program group (awk … latex).
    NonNumeric,
    /// The FORTRAN group (matrix300, spice2g6, tomcatv).
    Numeric,
}

/// One benchmark program.
#[derive(Copy, Clone, Debug)]
pub struct Workload {
    /// Short name.
    pub name: &'static str,
    /// The paper benchmark this mirrors.
    pub paper_analog: &'static str,
    /// One-line description (Table 1 style).
    pub description: &'static str,
    /// Numeric vs non-numeric group.
    pub class: WorkloadClass,
    /// Whether the program's control flow is data dependent — the paper's
    /// Section 5.3 predictor of parallelism.
    pub data_dependent_control: bool,
    source: &'static str,
}

impl Workload {
    /// The MiniC source text.
    pub fn source(&self) -> &'static str {
        self.source
    }

    /// Compiles the workload to a linked program.
    ///
    /// # Errors
    ///
    /// Returns a [`LangError`] — which would indicate a bug, since the
    /// suite is tested.
    pub fn compile(&self) -> Result<Program, LangError> {
        clfp_lang::compile(self.source)
    }

    /// Compiles the workload with explicit codegen options (used by the
    /// guarded-instruction ablation).
    ///
    /// # Errors
    ///
    /// Same as [`Workload::compile`].
    pub fn compile_with(
        &self,
        options: clfp_lang::CodegenOptions,
    ) -> Result<Program, LangError> {
        clfp_lang::compile_with_options(self.source, options)
    }
}

/// The full ten-program suite, in Table 1 order.
pub fn suite() -> Vec<Workload> {
    vec![
        Workload {
            name: "scan",
            paper_analog: "awk",
            description: "pattern scanning and word counting",
            class: WorkloadClass::NonNumeric,
            data_dependent_control: true,
            source: include_str!("programs/scan.mc"),
        },
        Workload {
            name: "parse",
            paper_analog: "ccom",
            description: "expression compiler front end",
            class: WorkloadClass::NonNumeric,
            data_dependent_control: true,
            source: include_str!("programs/parse.mc"),
        },
        Workload {
            name: "qsort",
            paper_analog: "eqntott",
            description: "quicksort and truth table generation",
            class: WorkloadClass::NonNumeric,
            data_dependent_control: true,
            source: include_str!("programs/qsort.mc"),
        },
        Workload {
            name: "logic",
            paper_analog: "espresso",
            description: "two-level logic minimization",
            class: WorkloadClass::NonNumeric,
            data_dependent_control: true,
            source: include_str!("programs/logic.mc"),
        },
        Workload {
            name: "dataflow",
            paper_analog: "gcc (cc1)",
            description: "iterative data-flow analysis over CFGs",
            class: WorkloadClass::NonNumeric,
            data_dependent_control: true,
            source: include_str!("programs/dataflow.mc"),
        },
        Workload {
            name: "eventsim",
            paper_analog: "irsim",
            description: "event-driven logic simulation",
            class: WorkloadClass::NonNumeric,
            data_dependent_control: true,
            source: include_str!("programs/eventsim.mc"),
        },
        Workload {
            name: "fmt",
            paper_analog: "latex",
            description: "paragraph filling and pagination",
            class: WorkloadClass::NonNumeric,
            data_dependent_control: true,
            source: include_str!("programs/fmt.mc"),
        },
        Workload {
            name: "matmul",
            paper_analog: "matrix300",
            description: "dense matrix multiplication",
            class: WorkloadClass::Numeric,
            data_dependent_control: false,
            source: include_str!("programs/matmul.mc"),
        },
        Workload {
            name: "sparse",
            paper_analog: "spice2g6",
            description: "sparse iterative circuit solver",
            class: WorkloadClass::Numeric,
            data_dependent_control: true,
            source: include_str!("programs/sparse.mc"),
        },
        Workload {
            name: "stencil",
            paper_analog: "tomcatv",
            description: "mesh relaxation",
            class: WorkloadClass::Numeric,
            data_dependent_control: false,
            source: include_str!("programs/stencil.mc"),
        },
    ]
}

/// Error returned by [`by_name`] for an unknown workload name; its
/// `Display` lists every valid name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnknownWorkload {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = suite().iter().map(|w| w.name).collect();
        write!(
            f,
            "unknown workload `{}`; valid names: {}",
            self.name,
            names.join(", ")
        )
    }
}

impl std::error::Error for UnknownWorkload {}

/// Looks up a workload by name.
///
/// # Errors
///
/// Returns [`UnknownWorkload`] (whose `Display` lists the valid names) if
/// no workload matches.
pub fn by_name(name: &str) -> Result<Workload, UnknownWorkload> {
    suite()
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| UnknownWorkload {
            name: name.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_unique_workloads() {
        let suite = suite();
        assert_eq!(suite.len(), 10);
        let mut names: Vec<&str> = suite.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn grouping_matches_paper() {
        let suite = suite();
        let non_numeric = suite
            .iter()
            .filter(|w| w.class == WorkloadClass::NonNumeric)
            .count();
        assert_eq!(non_numeric, 7);
        // spice's analogue is numeric *and* data dependent — the paper's
        // Section 5.3 point.
        let sparse = by_name("sparse").unwrap();
        assert_eq!(sparse.class, WorkloadClass::Numeric);
        assert!(sparse.data_dependent_control);
        assert!(!by_name("matmul").unwrap().data_dependent_control);
    }

    #[test]
    fn all_workloads_compile() {
        for workload in suite() {
            let program = workload
                .compile()
                .unwrap_or_else(|err| panic!("{} failed to compile: {err}", workload.name));
            assert!(
                program.text.len() > 50,
                "{} suspiciously small",
                workload.name
            );
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("qsort").is_ok());
        let err = by_name("nope").unwrap_err();
        assert_eq!(err.name, "nope");
        let message = err.to_string();
        // The error names the culprit and lists every valid workload.
        assert!(message.contains("nope"));
        for workload in suite() {
            assert!(message.contains(workload.name), "missing {}", workload.name);
        }
    }
}
