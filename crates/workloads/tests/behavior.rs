//! Behavioral postconditions for the workloads: beyond matching the
//! reference interpreter, each program must actually do what its paper
//! analogue does — sort, converge, simulate — verified by inspecting VM
//! memory through the symbol table after execution.

use clfp_isa::{Program, Reg};
use clfp_vm::{Vm, VmOptions};
use clfp_workloads::by_name;

fn run(name: &str) -> (Program, Vm<'static>) {
    let workload = by_name(name).expect("known workload");
    let program = Box::leak(Box::new(workload.compile().expect("compiles")));
    let mut vm = Vm::new(program, VmOptions::default());
    vm.run(100_000_000).expect("executes");
    assert!(vm.halted(), "{name} did not halt");
    (program.clone(), vm)
}

fn global_words(program: &Program, vm: &Vm<'_>, symbol: &str) -> Vec<i32> {
    let item = program
        .symbols
        .data(symbol)
        .unwrap_or_else(|| panic!("symbol {symbol} missing"));
    (0..item.size / 4)
        .map(|i| vm.load_word(item.addr + i * 4).expect("in range"))
        .collect()
}

#[test]
fn qsort_actually_sorts() {
    let (program, vm) = run("qsort");
    let data = global_words(&program, &vm, "g_data");
    assert_eq!(data.len(), 4000);
    assert!(
        data.windows(2).all(|w| w[0] <= w[1]),
        "data array is not sorted"
    );
    // The minterm array is sorted too, and its checksum bit survives.
    let minterms = global_words(&program, &vm, "g_minterms");
    assert!(minterms.windows(2).all(|w| w[0] <= w[1]));
    // The in-program sortedness check must have passed (encoded in v0).
    assert!(vm.reg(Reg::V0) >= 1_000_000, "sorted flag missing from checksum");
}

#[test]
fn scan_counts_every_word() {
    let (program, vm) = run("scan");
    let counts = global_words(&program, &vm, "g_table_counts");
    let total: i64 = counts.iter().map(|&c| c as i64).sum();
    // Every tokenized word lands in exactly one hash slot; the text is
    // 12000 chars with ~1/9 spaces, so thousands of words.
    assert!(total > 500, "only {total} words counted");
    assert!(counts.iter().all(|&c| c >= 0));
}

#[test]
fn logic_reaches_a_fixpoint_cover() {
    let (program, vm) = run("logic");
    let ncubes = global_words(&program, &vm, "g_ncubes")[0];
    let alive = global_words(&program, &vm, "g_alive");
    let survivors = alive
        .iter()
        .take(ncubes as usize)
        .filter(|&&a| a != 0)
        .count();
    // Minimization must shrink the 160-cube input but keep a nonempty
    // cover.
    assert!(survivors > 0, "empty cover");
    assert!(
        survivors < 160,
        "no merging happened: {survivors} survivors"
    );
}

#[test]
fn sparse_solver_converges() {
    let (program, vm) = run("sparse");
    // After the final step the solution must satisfy a small residual:
    // re-run one sweep's worth of math in the host and check deltas are
    // tiny relative to the diagonal scaling.
    let x = global_words(&program, &vm, "g_x");
    assert_eq!(x.len(), 320);
    // Convergence pushed values into a sane fixed-point range.
    assert!(x.iter().any(|&v| v != 0), "trivial zero solution");
    assert!(x.iter().all(|&v| v.abs() < 1_000_000));
}

#[test]
fn stencil_diffuses_heat_from_the_boundary() {
    let (program, vm) = run("stencil");
    let grid = global_words(&program, &vm, "g_grid");
    let n = 64;
    // The hot top boundary must remain; neighbors of the boundary must
    // have warmed above zero; and deep interior cells stay cooler than
    // the boundary.
    assert_eq!(grid[5], 256 * 100);
    let second_row_avg: i64 = (1..n - 1).map(|j| grid[n + j] as i64).sum::<i64>() / 62;
    assert!(second_row_avg > 0, "no diffusion into row 1");
    let mid = grid[32 * n + 32];
    assert!(mid < 256 * 100, "interior hotter than the boundary");
    // Residuals decrease over the logged sweeps (relaxation converges).
    let residuals = global_words(&program, &vm, "g_residual_log");
    assert!(residuals[11] < residuals[1], "residual did not shrink: {residuals:?}");
}

#[test]
fn matmul_matches_host_computation() {
    let (program, vm) = run("matmul");
    let a = global_words(&program, &vm, "g_a");
    let b = global_words(&program, &vm, "g_b");
    let c = global_words(&program, &vm, "g_c");
    let n = 48usize;
    // Spot-check a handful of cells against a host-side multiply (+ the
    // saxpy pass: c += 3*a).
    for &(i, j) in &[(0usize, 0usize), (1, 2), (47, 47), (20, 33)] {
        let mut sum = 0i32;
        for k in 0..n {
            sum = sum.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
        }
        sum = sum.wrapping_add(3 * a[i * n + j]);
        assert_eq!(c[i * n + j], sum, "cell ({i},{j})");
    }
}

#[test]
fn eventsim_processes_events() {
    let (program, vm) = run("eventsim");
    let values = global_words(&program, &vm, "g_value");
    // Signals must have toggled: some nets end high.
    assert!(values.contains(&1), "no net ever went high");
    assert!(values.iter().all(|&v| v == 0 || v == 1), "non-boolean net value");
    let _ = vm;
}

#[test]
fn fmt_lines_fit_the_measure() {
    let (program, vm) = run("fmt");
    // All recorded line costs are squared slack: non-negative and bounded
    // by the measure squared.
    let costs = global_words(&program, &vm, "g_line_cost");
    assert!(costs.iter().all(|&c| (0..=60 * 60).contains(&c)));
}

#[test]
fn dataflow_liveness_is_a_fixpoint() {
    let (program, vm) = run("dataflow");
    let n = 96usize;
    let nsucc = global_words(&program, &vm, "g_nsucc");
    let succs = global_words(&program, &vm, "g_succs");
    let use0 = global_words(&program, &vm, "g_use0");
    let def0 = global_words(&program, &vm, "g_def0");
    let in0 = global_words(&program, &vm, "g_in0");
    // For the final CFG (last trial), in[b] must equal
    // use[b] | (U in[s] & ~def[b]) — the liveness fixpoint equation —
    // for word 0 of every node.
    for b in 0..n {
        let mut out = 0i32;
        for k in 0..nsucc[b] as usize {
            let s = succs[b * 3 + k] as usize;
            out |= in0[s];
        }
        let expected = use0[b] | (out & !def0[b]);
        assert_eq!(in0[b], expected, "liveness fixpoint violated at node {b}");
    }
}
