//! Executes every workload on the VM, checks it halts with a nonzero
//! checksum, and differentially validates each against the reference AST
//! interpreter.

use clfp_isa::Reg;
use clfp_lang::interpret_source;
use clfp_vm::{Vm, VmOptions};
use clfp_workloads::suite;

#[test]
fn workloads_halt_with_checksums() {
    for workload in suite() {
        let program = workload.compile().unwrap();
        let mut vm = Vm::new(&program, VmOptions::default());
        let outcome = vm
            .run(100_000_000)
            .unwrap_or_else(|err| panic!("{} faulted: {err}", workload.name));
        assert_eq!(
            outcome,
            clfp_vm::ExecOutcome::Halted,
            "{} did not halt",
            workload.name
        );
        let checksum = vm.reg(Reg::V0);
        assert_ne!(checksum, 0, "{} returned zero checksum", workload.name);
        // Traces must be substantial enough for stable limit statistics.
        assert!(
            vm.executed() > 50_000,
            "{} executed only {} instructions",
            workload.name,
            vm.executed()
        );
    }
}

#[test]
fn workloads_match_reference_interpreter() {
    for workload in suite() {
        let program = workload.compile().unwrap();
        let mut vm = Vm::new(&program, VmOptions::default());
        vm.run(100_000_000).unwrap();
        let compiled = vm.reg(Reg::V0);
        let interpreted = interpret_source(workload.source(), 2_000_000_000)
            .unwrap_or_else(|err| panic!("{} interp failed: {err}", workload.name))
            .result;
        assert_eq!(
            compiled, interpreted,
            "{}: compiled {compiled} != interpreted {interpreted}",
            workload.name
        );
    }
}
