use std::collections::HashMap;

use clfp_isa::Program;
use clfp_vm::{Trace, Vm, VmError, VmOptions};

/// Per-branch taken/not-taken counts from a profiling run.
///
/// The paper collects these "from running the benchmarks with the same
/// inputs used in the simulations", making the derived static predictions
/// an upper bound for profile-guided prediction.
#[derive(Clone, Debug, Default)]
pub struct BranchProfile {
    counts: HashMap<u32, (u64, u64)>, // pc -> (taken, not taken)
}

impl BranchProfile {
    /// Creates an empty profile.
    pub fn new() -> BranchProfile {
        BranchProfile::default()
    }

    /// Profiles `program` by executing up to `limit` instructions.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from execution.
    pub fn collect(program: &Program, limit: u64) -> Result<BranchProfile, VmError> {
        BranchProfile::collect_with(program, limit, VmOptions::default())
    }

    /// Like [`BranchProfile::collect`] with explicit VM options.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from execution.
    pub fn collect_with(
        program: &Program,
        limit: u64,
        options: VmOptions,
    ) -> Result<BranchProfile, VmError> {
        let mut profile = BranchProfile::new();
        let mut vm = Vm::new(program, options);
        let text = &program.text;
        vm.run_with(limit, |event| {
            if text[event.pc as usize].is_cond_branch() {
                profile.record(event.pc, event.taken);
            }
        })?;
        Ok(profile)
    }

    /// Profiles directly from an already-captured trace.
    ///
    /// The paper profiles "with the same inputs used in the simulations" —
    /// so the measured trace itself *is* the profiling run, and re-deriving
    /// the counts from it gives bit-identical predictions to
    /// [`BranchProfile::collect`] on the same program and limit without a
    /// second execution.
    pub fn from_trace(program: &Program, trace: &Trace) -> BranchProfile {
        let mut profile = BranchProfile::new();
        let text = &program.text;
        for event in trace.iter() {
            if text[event.pc as usize].is_cond_branch() {
                profile.record(event.pc, event.taken);
            }
        }
        profile
    }

    /// Records one dynamic branch outcome.
    pub fn record(&mut self, pc: u32, taken: bool) {
        let entry = self.counts.entry(pc).or_insert((0, 0));
        if taken {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }

    /// The majority prediction for the branch at `pc`.
    ///
    /// Branches never seen in the profile predict not-taken (ties predict
    /// taken, the common loop-branch direction).
    pub fn majority(&self, pc: u32) -> bool {
        match self.counts.get(&pc) {
            Some(&(taken, not_taken)) => taken >= not_taken,
            None => false,
        }
    }

    /// `(taken, not_taken)` counts for a branch.
    pub fn counts(&self, pc: u32) -> (u64, u64) {
        self.counts.get(&pc).copied().unwrap_or((0, 0))
    }

    /// Total dynamic conditional branches profiled.
    pub fn total_branches(&self) -> u64 {
        self.counts.values().map(|&(t, n)| t + n).sum()
    }

    /// The accuracy the majority predictor achieves on the profiled run
    /// itself — the paper's Table 2 "prediction rate".
    pub fn accuracy(&self) -> f64 {
        let total = self.total_branches();
        if total == 0 {
            return 1.0;
        }
        let correct: u64 = self
            .counts
            .values()
            .map(|&(taken, not_taken)| taken.max(not_taken))
            .sum();
        correct as f64 / total as f64
    }

    /// Iterates over `(pc, taken, not_taken)` for every profiled branch.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64, u64)> + '_ {
        self.counts.iter().map(|(&pc, &(t, n))| (pc, t, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::assemble;

    #[test]
    fn profiles_loop_branch() {
        let program = assemble(
            ".text\nmain: li r8, 10\nloop: addi r8, r8, -1\n bgt r8, r0, loop\n halt",
        )
        .unwrap();
        let profile = BranchProfile::collect(&program, 1_000_000).unwrap();
        let (taken, not_taken) = profile.counts(2);
        assert_eq!(taken, 9);
        assert_eq!(not_taken, 1);
        assert!(profile.majority(2));
        assert!((profile.accuracy() - 0.9).abs() < 1e-12);
        assert_eq!(profile.total_branches(), 10);
    }

    #[test]
    fn from_trace_matches_collect() {
        let program = assemble(
            ".text\nmain: li r8, 10\nloop: addi r8, r8, -1\n bgt r8, r0, loop\n halt",
        )
        .unwrap();
        let collected = BranchProfile::collect(&program, 1_000_000).unwrap();
        let mut vm = Vm::new(&program, VmOptions::default());
        let trace = vm.trace(1_000_000).unwrap();
        let derived = BranchProfile::from_trace(&program, &trace);
        let mut lhs: Vec<_> = collected.iter().collect();
        let mut rhs: Vec<_> = derived.iter().collect();
        lhs.sort_unstable();
        rhs.sort_unstable();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn unseen_branch_predicts_not_taken() {
        let profile = BranchProfile::new();
        assert!(!profile.majority(42));
        assert_eq!(profile.counts(42), (0, 0));
        assert_eq!(profile.accuracy(), 1.0);
    }

    #[test]
    fn ties_predict_taken() {
        let mut profile = BranchProfile::new();
        profile.record(0, true);
        profile.record(0, false);
        assert!(profile.majority(0));
    }

    #[test]
    fn iter_yields_all_branches() {
        let mut profile = BranchProfile::new();
        profile.record(3, true);
        profile.record(7, false);
        let mut pcs: Vec<u32> = profile.iter().map(|(pc, _, _)| pc).collect();
        pcs.sort_unstable();
        assert_eq!(pcs, vec![3, 7]);
    }
}
