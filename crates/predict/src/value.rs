//! Value predictors for the value-speculation axis.
//!
//! Where a [`BranchPredictor`](crate::BranchPredictor) guesses branch
//! *outcomes*, a [`ValuePredictor`] guesses the *result value* of an
//! instruction before it executes. A correct prediction lets consumers
//! start before the producer finishes — it breaks a true data dependence
//! the way oracle branch resolution breaks a control dependence. The
//! analyzer charges verification at resolve time (the producer still
//! executes and completes on schedule); only the *edge* to consumers is
//! removed, mirroring how mispredicted branches are charged.
//!
//! Both predictors here are per-static-instruction (indexed by pc), the
//! classic table organization of Lipasti & Shen and the setting studied
//! by Mitrevski & Gušev for this limit model.

/// A result-value predictor.
///
/// The preparation walk visits every dynamic instruction that defines a
/// register, in trace order, and asks the predictor whether it would have
/// predicted the produced value correctly — then trains on the actual
/// value. Like [`BranchPredictor`](crate::BranchPredictor), prediction
/// and training are fused into one call because the trace replay always
/// knows the outcome.
pub trait ValuePredictor {
    /// Returns whether the value produced by static instruction `pc`
    /// would have been predicted correctly, then trains on `value`.
    fn predict_and_update(&mut self, pc: u32, value: u32) -> bool;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Last-value prediction: predicts that an instruction produces the same
/// value it produced last time. The first dynamic instance of each static
/// instruction is never a hit (there is nothing to predict from).
pub struct LastValuePredictor {
    seen: Vec<bool>,
    last: Vec<u32>,
}

impl LastValuePredictor {
    /// Creates a predictor with one table entry per static instruction.
    pub fn new(text_len: usize) -> LastValuePredictor {
        LastValuePredictor {
            seen: vec![false; text_len],
            last: vec![0; text_len],
        }
    }
}

impl ValuePredictor for LastValuePredictor {
    fn predict_and_update(&mut self, pc: u32, value: u32) -> bool {
        let i = pc as usize;
        let hit = self.seen[i] && self.last[i] == value;
        self.seen[i] = true;
        self.last[i] = value;
        hit
    }

    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Hybrid last-value + stride prediction: a hit if *either* the last
/// value repeats or the last value plus the previously observed stride
/// matches.
///
/// The hybrid form (rather than pure stride) is deliberate: its correct
/// set is a strict superset of [`LastValuePredictor`]'s on every trace,
/// which is what makes the analyzer's
/// `perfect >= stride >= last-value >= off` retention ordering a
/// pointwise theorem instead of an empirical trend. A pure stride
/// predictor does not nest — on the value sequence `5, 7, 7` it predicts
/// `9` where last-value hits. Both component predictors train their
/// `last` entry identically, so the hybrid never diverges from the
/// last-value predictor's training state.
pub struct StridePredictor {
    seen: Vec<bool>,
    last: Vec<u32>,
    stride: Vec<u32>,
}

impl StridePredictor {
    /// Creates a predictor with one table entry per static instruction.
    pub fn new(text_len: usize) -> StridePredictor {
        StridePredictor {
            seen: vec![false; text_len],
            last: vec![0; text_len],
            stride: vec![0; text_len],
        }
    }
}

impl ValuePredictor for StridePredictor {
    fn predict_and_update(&mut self, pc: u32, value: u32) -> bool {
        let i = pc as usize;
        let last = self.last[i];
        let hit =
            self.seen[i] && (last == value || last.wrapping_add(self.stride[i]) == value);
        self.stride[i] = value.wrapping_sub(last);
        self.seen[i] = true;
        self.last[i] = value;
        hit
    }

    fn name(&self) -> &'static str {
        "stride"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_hits_on_repeats_only() {
        let mut p = LastValuePredictor::new(4);
        assert!(!p.predict_and_update(0, 5)); // cold
        assert!(p.predict_and_update(0, 5)); // repeat
        assert!(!p.predict_and_update(0, 6)); // change
        assert!(p.predict_and_update(0, 6));
        assert!(!p.predict_and_update(1, 6)); // other pc is cold
    }

    #[test]
    fn stride_hits_on_arithmetic_sequences() {
        let mut p = StridePredictor::new(4);
        assert!(!p.predict_and_update(0, 10)); // cold
        assert!(!p.predict_and_update(0, 13)); // stride unknown (0): 10 != 13
        assert!(p.predict_and_update(0, 16)); // 13 + 3
        assert!(p.predict_and_update(0, 19)); // 16 + 3
        assert!(!p.predict_and_update(0, 100)); // stride break
    }

    #[test]
    fn stride_correct_set_contains_last_value() {
        // The nesting theorem on an adversarial sequence: wherever
        // last-value hits, the hybrid stride predictor hits too.
        let values = [5u32, 7, 7, 9, 9, 9, 2, 4, 6, 6, 0, 0, u32::MAX, 0, 0];
        let mut lv = LastValuePredictor::new(1);
        let mut st = StridePredictor::new(1);
        for &v in &values {
            let lv_hit = lv.predict_and_update(0, v);
            let st_hit = st.predict_and_update(0, v);
            assert!(!lv_hit || st_hit, "stride missed a last-value hit at {v}");
        }
    }

    #[test]
    fn stride_handles_wrapping() {
        let mut p = StridePredictor::new(1);
        p.predict_and_update(0, u32::MAX - 1);
        p.predict_and_update(0, u32::MAX); // learns stride 1
        assert!(p.predict_and_update(0, 0)); // MAX + 1 wraps to 0
    }
}
