//! # clfp-predict
//!
//! Branch prediction for the clfp limit study.
//!
//! The paper (Section 4.4.2) uses **static branch prediction based on
//! profile information**, collected by running each benchmark on *the same
//! input* used in the measurement run — deliberately an upper bound for
//! static prediction. [`ProfilePredictor`] reproduces exactly that.
//! Computed jumps are never predicted (they always count as mispredicted).
//!
//! For ablation studies this crate also provides the classic alternatives:
//! [`AlwaysTaken`], [`Btfn`] (backward-taken/forward-not-taken),
//! [`Bimodal`] (2-bit saturating counters), [`Gshare`], and [`TwoLevel`]
//! (Yeh & Patt's PAg).
//!
//! The value-speculation axis has its own predictor family
//! ([`ValuePredictor`]): [`LastValuePredictor`] and the hybrid
//! [`StridePredictor`], trained on produced register values during the
//! analyzer's preparation walk.
//!
//! ## Example
//!
//! ```
//! use clfp_isa::assemble;
//! use clfp_predict::{BranchProfile, ProfilePredictor, BranchPredictor};
//!
//! let program = assemble(
//!     ".text\nmain: li r8, 100\nloop: addi r8, r8, -1\n bgt r8, r0, loop\n halt",
//! )?;
//! let profile = BranchProfile::collect(&program, 10_000)?;
//! let mut predictor = ProfilePredictor::new(&profile);
//! // The loop branch is taken 99 of 100 times: the profile predicts taken.
//! assert!(predictor.predict_and_update(2, true));
//! assert!(profile.accuracy() > 0.98);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod dynamic;
mod profile;
mod statics;
mod value;

pub use dynamic::{Bimodal, Gshare, TwoLevel};
pub use profile::BranchProfile;
pub use statics::{AlwaysTaken, Btfn, ProfilePredictor};
pub use value::{LastValuePredictor, StridePredictor, ValuePredictor};

/// A branch-outcome predictor.
///
/// The limit analyzer walks a trace in order; for every conditional branch
/// it asks the predictor for a prediction and simultaneously reveals the
/// actual outcome (so dynamic predictors can train). The return value is
/// the *predicted* outcome; a misprediction is `prediction != taken`.
pub trait BranchPredictor {
    /// Predicts the branch at static instruction `pc`, then trains on the
    /// actual outcome `taken`. Returns the prediction made *before*
    /// training.
    fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool;

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Resets any dynamic state (no-op for static predictors).
    fn reset(&mut self) {}
}

/// Running prediction-accuracy counters.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct PredictionStats {
    /// Branches observed.
    pub total: u64,
    /// Branches predicted correctly.
    pub correct: u64,
}

impl PredictionStats {
    /// Records one outcome.
    pub fn record(&mut self, correct: bool) {
        self.total += 1;
        if correct {
            self.correct += 1;
        }
    }

    /// Fraction predicted correctly (1.0 when no branches were seen).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accuracy() {
        let mut stats = PredictionStats::default();
        for i in 0..10 {
            stats.record(i != 0);
        }
        assert_eq!(stats.total, 10);
        assert_eq!(stats.correct, 9);
        assert!((stats.accuracy() - 0.9).abs() < 1e-12);
        assert_eq!(PredictionStats::default().accuracy(), 1.0);
    }
}
