//! Dynamic predictors for ablation experiments.
//!
//! The paper notes that "dynamic techniques provide similar performance"
//! to its profile-based static predictor (citing Lee & Smith-style
//! studies); these implementations let the benchmark harness check that
//! claim on the reproduced workloads.

use crate::BranchPredictor;

/// A 2-bit saturating counter.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct Counter2(u8);

impl Counter2 {
    /// Initial state: weakly not-taken.
    const INIT: Counter2 = Counter2(1);

    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Bimodal predictor: a table of 2-bit counters indexed by branch address.
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<Counter2>,
    mask: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `size` entries.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two.
    pub fn new(size: usize) -> Bimodal {
        assert!(size.is_power_of_two(), "bimodal table size must be a power of two");
        Bimodal {
            table: vec![Counter2::INIT; size],
            mask: size as u32 - 1,
        }
    }
}

impl BranchPredictor for Bimodal {
    fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool {
        let index = (pc & self.mask) as usize;
        let prediction = self.table[index].predict();
        self.table[index].update(taken);
        prediction
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }

    fn reset(&mut self) {
        self.table.fill(Counter2::INIT);
    }
}

/// Gshare predictor: 2-bit counters indexed by branch address XOR global
/// history.
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<Counter2>,
    mask: u32,
    history: u32,
    history_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `size` entries and `history_bits`
    /// bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two or `history_bits > 16`.
    pub fn new(size: usize, history_bits: u32) -> Gshare {
        assert!(size.is_power_of_two(), "gshare table size must be a power of two");
        assert!(history_bits <= 16, "history limited to 16 bits");
        Gshare {
            table: vec![Counter2::INIT; size],
            mask: size as u32 - 1,
            history: 0,
            history_bits,
        }
    }
}

impl BranchPredictor for Gshare {
    fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool {
        let index = ((pc ^ self.history) & self.mask) as usize;
        let prediction = self.table[index].predict();
        self.table[index].update(taken);
        let history_mask = (1u32 << self.history_bits) - 1;
        self.history = ((self.history << 1) | taken as u32) & history_mask;
        prediction
    }

    fn name(&self) -> &'static str {
        "gshare"
    }

    fn reset(&mut self) {
        self.table.fill(Counter2::INIT);
        self.history = 0;
    }
}

/// Two-level local predictor (PAg): a per-branch history register selects
/// a 2-bit counter from a shared pattern table — Yeh & Patt's scheme,
/// contemporary with the paper.
#[derive(Clone, Debug)]
pub struct TwoLevel {
    /// Per-branch history registers, indexed by branch address.
    histories: Vec<u16>,
    history_mask: u16,
    /// Shared pattern table of 2-bit counters, indexed by history.
    pattern: Vec<Counter2>,
}

impl TwoLevel {
    /// Creates a PAg predictor with `branch_entries` history registers and
    /// `history_bits` bits of local history (pattern table size
    /// `2^history_bits`).
    ///
    /// # Panics
    ///
    /// Panics if `branch_entries` is not a power of two or
    /// `history_bits > 14`.
    pub fn new(branch_entries: usize, history_bits: u32) -> TwoLevel {
        assert!(
            branch_entries.is_power_of_two(),
            "history table size must be a power of two"
        );
        assert!(history_bits <= 14, "history limited to 14 bits");
        TwoLevel {
            histories: vec![0; branch_entries],
            history_mask: ((1u32 << history_bits) - 1) as u16,
            pattern: vec![Counter2::INIT; 1 << history_bits],
        }
    }
}

impl BranchPredictor for TwoLevel {
    fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool {
        let slot = (pc as usize) & (self.histories.len() - 1);
        let history = self.histories[slot] & self.history_mask;
        let prediction = self.pattern[history as usize].predict();
        self.pattern[history as usize].update(taken);
        self.histories[slot] = ((history << 1) | taken as u16) & self.history_mask;
        prediction
    }

    fn name(&self) -> &'static str {
        "two-level"
    }

    fn reset(&mut self) {
        self.histories.fill(0);
        self.pattern.fill(Counter2::INIT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter2::INIT;
        assert!(!c.predict());
        c.update(true);
        c.update(true);
        c.update(true);
        assert_eq!(c.0, 3);
        assert!(c.predict());
        c.update(false);
        assert!(c.predict()); // strongly taken degrades to weakly taken
        c.update(false);
        assert!(!c.predict());
        c.update(false);
        c.update(false);
        assert_eq!(c.0, 0);
    }

    #[test]
    fn bimodal_learns_a_bias() {
        let mut predictor = Bimodal::new(64);
        // Train branch 5 taken.
        for _ in 0..4 {
            predictor.predict_and_update(5, true);
        }
        assert!(predictor.predict_and_update(5, true));
        predictor.reset();
        assert!(!predictor.predict_and_update(5, true));
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut predictor = Gshare::new(1024, 4);
        let mut correct = 0;
        let total = 200;
        for i in 0..total {
            let outcome = i % 2 == 0;
            if predictor.predict_and_update(8, outcome) == outcome {
                correct += 1;
            }
        }
        // After warm-up, gshare tracks the alternating pattern almost
        // perfectly; bimodal cannot.
        assert!(correct > total * 8 / 10, "gshare correct = {correct}");
        let mut bimodal = Bimodal::new(1024);
        let mut bi_correct = 0;
        for i in 0..total {
            let outcome = i % 2 == 0;
            if bimodal.predict_and_update(8, outcome) == outcome {
                bi_correct += 1;
            }
        }
        assert!(bi_correct < correct);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bimodal_rejects_non_power_of_two() {
        let _ = Bimodal::new(100);
    }

    #[test]
    fn two_level_learns_periodic_patterns() {
        // Pattern T T N repeating: bimodal hovers around 2/3, the
        // two-level predictor learns it almost perfectly.
        let mut two_level = TwoLevel::new(256, 8);
        let mut bimodal = Bimodal::new(256);
        let total = 600;
        let mut tl_correct = 0;
        let mut bi_correct = 0;
        for i in 0..total {
            let outcome = i % 3 != 2;
            if two_level.predict_and_update(12, outcome) == outcome {
                tl_correct += 1;
            }
            if bimodal.predict_and_update(12, outcome) == outcome {
                bi_correct += 1;
            }
        }
        assert!(tl_correct > total * 9 / 10, "two-level correct = {tl_correct}");
        assert!(tl_correct > bi_correct);
    }

    #[test]
    fn two_level_reset_clears_state() {
        let mut predictor = TwoLevel::new(64, 6);
        for _ in 0..20 {
            predictor.predict_and_update(5, true);
        }
        assert!(predictor.predict_and_update(5, true));
        predictor.reset();
        assert!(!predictor.predict_and_update(5, true));
        assert_eq!(predictor.name(), "two-level");
    }
}
