//! Static predictors: fixed per-branch predictions that never change
//! during the measured run.

use clfp_isa::{Instr, Program};

use crate::{BranchPredictor, BranchProfile};

/// The paper's predictor: the majority direction observed in a profiling
/// run on the same input (Section 4.4.2).
#[derive(Clone, Debug)]
pub struct ProfilePredictor {
    profile: BranchProfile,
}

impl ProfilePredictor {
    /// Builds the predictor from a collected profile.
    pub fn new(profile: &BranchProfile) -> ProfilePredictor {
        ProfilePredictor {
            profile: profile.clone(),
        }
    }
}

impl BranchPredictor for ProfilePredictor {
    fn predict_and_update(&mut self, pc: u32, _taken: bool) -> bool {
        self.profile.majority(pc)
    }

    fn name(&self) -> &'static str {
        "profile"
    }
}

/// Predicts every conditional branch taken.
#[derive(Copy, Clone, Debug, Default)]
pub struct AlwaysTaken;

impl BranchPredictor for AlwaysTaken {
    fn predict_and_update(&mut self, _pc: u32, _taken: bool) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "always-taken"
    }
}

/// Backward-taken / forward-not-taken: loop back edges (targets at or
/// before the branch) predict taken, forward branches predict not taken.
#[derive(Clone, Debug)]
pub struct Btfn {
    backward: Vec<bool>,
}

impl Btfn {
    /// Classifies every branch in `program` by direction.
    pub fn new(program: &Program) -> Btfn {
        let backward = program
            .text
            .iter()
            .enumerate()
            .map(|(pc, instr)| match *instr {
                Instr::Branch { target, .. } => target <= pc as u32,
                _ => false,
            })
            .collect();
        Btfn { backward }
    }
}

impl BranchPredictor for Btfn {
    fn predict_and_update(&mut self, pc: u32, _taken: bool) -> bool {
        self.backward[pc as usize]
    }

    fn name(&self) -> &'static str {
        "btfn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::assemble;

    #[test]
    fn profile_predictor_is_static() {
        let mut profile = BranchProfile::new();
        profile.record(5, true);
        profile.record(5, true);
        profile.record(5, false);
        let mut predictor = ProfilePredictor::new(&profile);
        // Prediction never changes, whatever outcomes stream past.
        assert!(predictor.predict_and_update(5, false));
        assert!(predictor.predict_and_update(5, false));
        assert!(predictor.predict_and_update(5, false));
        assert_eq!(predictor.name(), "profile");
    }

    #[test]
    fn always_taken() {
        let mut predictor = AlwaysTaken;
        assert!(predictor.predict_and_update(0, false));
        assert_eq!(predictor.name(), "always-taken");
    }

    #[test]
    fn btfn_classifies_direction() {
        let program = assemble(
            r#"
            .text
            main:
                beq r8, r0, fwd    # pc 0: forward
            loop:
                addi r8, r8, -1    # pc 1
                bgt r8, r0, loop   # pc 2: backward
            fwd:
                halt               # pc 3
            "#,
        )
        .unwrap();
        let mut predictor = Btfn::new(&program);
        assert!(!predictor.predict_and_update(0, true));
        assert!(predictor.predict_and_update(2, false));
        assert_eq!(predictor.name(), "btfn");
    }
}
