//! The per-machine trace simulation pass (Section 4.4 of the paper).
//!
//! For every dynamic instruction the pass computes the earliest cycle at
//! which it can execute, given:
//!
//! * **true data dependences** — the instruction waits for the last write
//!   of every register it reads and (for loads) of the word it reads;
//! * the machine's **control-flow constraint** — see
//!   [`MachineKind`](crate::MachineKind).
//!
//! Control dependence is resolved dynamically exactly as described in
//! Section 4.4.1: basic-block instances are numbered sequentially; each
//! branch records its latest instance; an instruction's immediate control
//! dependence is the most recent instance among the branches in its
//! block's reverse dominance frontier, or the dependence inherited through
//! the call stack; recursion triggers the paper's upper-bound cutoff.
//!
//! For the speculative machines every branch instance also carries a
//! *misprediction ceiling*: its own execution time if it was mispredicted,
//! otherwise the ceiling it inherited — so dependents wait precisely for
//! their nearest mispredicted control-dependence ancestor (Section 4.4.2).

use clfp_cfg::StaticInfo;
use clfp_isa::{Instr, Program};
use clfp_vm::TraceEvent;

use crate::meta::EventClass;
use crate::stats::MispredictionStats;
use crate::{LastWriteTable, MachineKind};

/// Everything shared by the seven machine passes over one trace.
pub(crate) struct Prepared<'a> {
    pub program: &'a Program,
    pub info: &'a StaticInfo,
    pub events: &'a [TraceEvent],
    /// Parallel to `events`: the packed misprediction/ignored bits
    /// (computed jumps are always "mispredicted" — the paper does not
    /// predict them; ignored = removed by perfect inlining/unrolling).
    pub class: &'a EventClass,
    /// Idealization knobs (all at the paper's setting by default).
    pub pass_config: PassConfig,
}

/// Per-pass idealization knobs, extracted from
/// [`AnalysisConfig`](crate::AnalysisConfig).
#[derive(Copy, Clone, Debug)]
pub(crate) struct PassConfig {
    /// Fetch bandwidth; `None` = unlimited (the paper).
    pub fetch_bandwidth: Option<u64>,
    /// log2 of the memory-disambiguation granularity in bytes (2 = word,
    /// the paper's perfect disambiguation).
    pub disambiguation_shift: u32,
    /// How the last-write table is keyed (dynamic address, static alias
    /// class, or a single location).
    pub disambiguation: crate::MemDisambiguation,
    /// Whether predicted result values break true data dependences (the
    /// paper: no value speculation).
    pub value_prediction: crate::ValuePrediction,
    /// Whether renaming removes anti/output dependences (the paper: yes).
    pub rename: bool,
    /// Operation latencies (the paper: all 1).
    pub latency: crate::Latencies,
}

impl Default for PassConfig {
    fn default() -> PassConfig {
        PassConfig {
            fetch_bandwidth: None,
            disambiguation_shift: 2,
            disambiguation: crate::MemDisambiguation::Perfect,
            value_prediction: crate::ValuePrediction::Off,
            rename: true,
            latency: crate::Latencies::unit(),
        }
    }
}

impl PassConfig {
    pub(crate) fn from_analysis(config: &crate::AnalysisConfig) -> PassConfig {
        PassConfig {
            fetch_bandwidth: config.fetch_bandwidth,
            disambiguation_shift: config.disambiguation_bytes.trailing_zeros(),
            disambiguation: config.disambiguation,
            value_prediction: config.value_prediction,
            rename: config.rename,
            latency: config.latency,
        }
    }

    /// Completion latency of an instruction under this model.
    pub(crate) fn latency_of(&self, instr: Instr) -> u64 {
        use clfp_isa::AluOp;
        match instr {
            Instr::Lw { .. } => self.latency.load,
            Instr::Alu { op: AluOp::Mul | AluOp::Div | AluOp::Rem, .. }
            | Instr::AluI { op: AluOp::Mul | AluOp::Div | AluOp::Rem, .. } => {
                self.latency.mul_div
            }
            _ => self.latency.other,
        }
    }
}

/// Result of one machine pass.
#[derive(Clone, Debug)]
pub(crate) struct PassResult {
    /// Critical-path length in cycles.
    pub cycles: u64,
    /// Non-ignored dynamic instructions (the sequential time).
    pub count: u64,
    /// Misprediction-distance statistics (SP machine only).
    pub mispred_stats: Option<MispredictionStats>,
}

/// A branch (or pass-through) instance record.
#[derive(Copy, Clone, Debug, Default)]
struct BranchInst {
    /// Sequence number of the block instance that executed it.
    seq: u64,
    /// Procedure-invocation start sequence number active at the time.
    proc_seq: u64,
    /// Execution cycle (CD/CD-MF constraint source).
    time: u64,
    /// Misprediction ceiling (SP-CD/SP-CD-MF constraint source).
    ceiling: u64,
}

/// Interprocedural control-dependence stack entry (one per active call).
#[derive(Copy, Clone, Debug)]
struct StackEntry {
    /// Sequence number at the start of the callee.
    proc_seq: u64,
    /// Inherited CD time (the call instruction's own control dependence).
    inh_time: u64,
    /// Inherited misprediction ceiling.
    inh_ceiling: u64,
}

/// Resolved control-dependence context for one dynamic instruction.
#[derive(Copy, Clone, Debug, Default)]
struct CdCtx {
    time: u64,
    ceiling: u64,
}

pub(crate) fn run_pass(prepared: &Prepared<'_>, kind: MachineKind) -> PassResult {
    run_pass_with_schedule(prepared, kind, None)
}

/// Like [`run_pass`], optionally recording the execution cycle of every
/// trace event (0 for ignored instructions) — used for the Figure 3 style
/// schedule displays and golden tests.
pub(crate) fn run_pass_with_schedule(
    prepared: &Prepared<'_>,
    kind: MachineKind,
    mut schedule: Option<&mut Vec<u64>>,
) -> PassResult {
    let text = &prepared.program.text;
    let cfg = &prepared.info.cfg;
    let deps = &prepared.info.deps;
    let uses_cd = kind.uses_control_deps();
    let track_segments = kind == MachineKind::Sp;

    let config = prepared.pass_config;
    let shift = config.disambiguation_shift;
    // Independent replay of the preparation walk's value predictor: the
    // reference is the oracle the prepared pipelines are checked against,
    // so it must not consume their EV_VALPRED bits.
    let mut value_predictor = config.value_prediction.build(text.len());
    let mut reg_time = [0u64; 32];
    let mut mem_time = LastWriteTable::with_capacity(1 << 16);
    // False-dependence state, used only when renaming is off.
    let mut reg_read = [0u64; 32];
    let mut mem_read = LastWriteTable::with_capacity(1 << 16);
    let mut branch_info: Vec<Option<BranchInst>> = vec![None; text.len()];
    let mut stack: Vec<StackEntry> = Vec::new();

    let mut seq: u64 = 0;
    let mut last_branch: u64 = 0; // BASE constraint / CD branch ordering
    let mut last_mispred: u64 = 0; // SP constraint / SP-CD ordering
    let mut cycles: u64 = 0;
    let mut count: u64 = 0;

    // SP segment statistics (Figures 6, 7).
    let mut stats = MispredictionStats::new();
    let mut seg_count: u64 = 0;
    let mut seg_start: u64 = 0;
    let mut seg_max: u64 = 0;

    for (i, event) in prepared.events.iter().enumerate() {
        let pc = event.pc;
        let instr = text[pc as usize];
        let block = cfg.block_of_instr(pc);
        if pc == cfg.block(block).start {
            seq += 1;
        }
        let ignored = prepared.class.ignored(i);
        let is_branch = instr.is_cond_branch() || instr.is_computed_jump();
        let mispredicted = is_branch && prepared.class.mispred(i);

        // Mirrors the value-prediction seam in `MetaBuilder::push_chunk`:
        // every def-producing event trains the predictor — ignored or not,
        // so the replayed hit sequence is unroll-independent and matches
        // the prepared pipelines exactly.
        let vp_hit = instr.def().is_some()
            && match config.value_prediction {
                crate::ValuePrediction::Off => false,
                crate::ValuePrediction::Perfect => true,
                _ => value_predictor
                    .as_mut()
                    .expect("realistic mode has a predictor")
                    .predict_and_update(pc, event.value),
            };

        // Resolve control dependence (needed for CD machines, and for the
        // stack inheritance at calls even on non-CD machines it is cheap to
        // skip).
        let cd = if uses_cd || instr.is_call_or_ret() {
            resolve_cd(deps.rdf_branches(block), &branch_info, &stack, seq)
        } else {
            CdCtx::default()
        };

        // Machine-specific control constraint.
        let mut ctl = match kind {
            MachineKind::Base => last_branch,
            MachineKind::Cd | MachineKind::CdMf => cd.time,
            MachineKind::Sp => last_mispred,
            MachineKind::SpCd | MachineKind::SpCdMf => cd.ceiling,
            MachineKind::Oracle => 0,
        };
        // Branch-ordering constraints.
        if is_branch && !ignored {
            match kind {
                // All branches execute in sequential order.
                MachineKind::Cd => ctl = ctl.max(last_branch),
                // Mispredicted branches execute in order, one per cycle.
                MachineKind::SpCd if mispredicted => ctl = ctl.max(last_mispred),
                _ => {}
            }
        }

        let mut exec = 0u64;
        if !ignored {
            // Finite front end: instruction `count` cannot issue before
            // cycle count/W + 1 (W instructions fetched per cycle).
            if let Some(width) = config.fetch_bandwidth {
                ctl = ctl.max(count / width);
            }
            // True data dependences. The tables store *availability*
            // times (execution + latency - 1), so readers simply add 1.
            let mut data = 0u64;
            for reg in instr.uses() {
                data = data.max(reg_time[reg.index()]);
            }
            let is_load = matches!(instr, Instr::Lw { .. });
            let is_store = matches!(instr, Instr::Sw { .. });
            // Mirrors the key choice in `MetaBuilder::push_chunk` — the
            // reference oracle must agree with the prepared pipelines.
            let mem_key = match config.disambiguation {
                crate::MemDisambiguation::Perfect => event.mem_addr >> shift,
                crate::MemDisambiguation::Static => {
                    prepared.info.alias.scheduler_class(pc)
                }
                crate::MemDisambiguation::None => 0,
            };
            if is_load {
                data = data.max(mem_time.get(mem_key));
            }
            // Anti and output dependences, when renaming is off: a write
            // waits for the previous readers and the previous writer.
            if !config.rename {
                if let Some(rd) = instr.def() {
                    data = data.max(reg_read[rd.index()]).max(reg_time[rd.index()]);
                }
                if is_store {
                    data = data.max(mem_read.get(mem_key)).max(mem_time.get(mem_key));
                }
            }
            exec = data.max(ctl) + 1;
            let done = exec + config.latency_of(instr) - 1;
            count += 1;
            cycles = cycles.max(done);
            if let Some(rd) = instr.def() {
                // A correctly value-predicted producer releases its
                // consumers immediately (availability 0); the producer's
                // own exec/done still count — verification is charged at
                // resolve time like a mispredicted branch.
                reg_time[rd.index()] = if vp_hit { 0 } else { done };
            }
            if is_store {
                // Coarse keys accumulate: without the oracle, a load
                // must wait for *every* earlier may-aliasing store, not
                // just the latest (`MemDisambiguation::accumulates`).
                let t = if config.disambiguation.accumulates() {
                    mem_time.get(mem_key).max(done)
                } else {
                    done
                };
                mem_time.set(mem_key, t);
            }
            if !config.rename {
                for reg in instr.uses() {
                    reg_read[reg.index()] = reg_read[reg.index()].max(exec);
                }
                if is_load {
                    let prev = mem_read.get(mem_key);
                    mem_read.set(mem_key, prev.max(exec));
                }
            }
        }

        if let Some(schedule) = schedule.as_deref_mut() {
            schedule.push(exec);
        }

        // Tracker updates.
        if is_branch {
            if ignored {
                // Perfect unrolling deleted this branch: dependents inherit
                // the constraint the branch itself would have waited on.
                branch_info[pc as usize] = Some(BranchInst {
                    seq,
                    proc_seq: cur_proc_seq(&stack),
                    time: cd.time,
                    ceiling: cd.ceiling,
                });
            } else {
                last_branch = exec;
                if mispredicted {
                    last_mispred = exec;
                }
                branch_info[pc as usize] = Some(BranchInst {
                    seq,
                    proc_seq: cur_proc_seq(&stack),
                    time: exec,
                    ceiling: if mispredicted { exec } else { cd.ceiling },
                });
            }
        }
        match instr {
            Instr::Call { .. } | Instr::CallR { .. } => {
                stack.push(StackEntry {
                    proc_seq: seq + 1,
                    inh_time: cd.time,
                    inh_ceiling: cd.ceiling,
                });
            }
            Instr::Ret => {
                stack.pop();
            }
            _ => {}
        }

        // SP segment statistics.
        if track_segments && !ignored {
            seg_count += 1;
            seg_max = seg_max.max(exec);
            if mispredicted {
                let span = seg_max.saturating_sub(seg_start).max(1);
                stats.record_segment(
                    seg_count.min(u32::MAX as u64) as u32,
                    seg_count as f64 / span as f64,
                );
                seg_count = 0;
                seg_start = exec;
                seg_max = exec;
            }
        }
    }
    if track_segments && seg_count > 0 {
        let span = seg_max.saturating_sub(seg_start).max(1);
        stats.record_segment(
            seg_count.min(u32::MAX as u64) as u32,
            seg_count as f64 / span as f64,
        );
    }

    PassResult {
        cycles,
        count,
        mispred_stats: track_segments.then_some(stats),
    }
}

fn cur_proc_seq(stack: &[StackEntry]) -> u64 {
    stack.last().map_or(0, |entry| entry.proc_seq)
}

/// Section 4.4.1: the immediate control dependence of a dynamic
/// instruction is the most recent among (a) the latest instances of the
/// branches in its block's reverse dominance frontier from the *same
/// procedure invocation* and (b) the dependence inherited through the call
/// stack. A frontier instance from a *newer* invocation signals recursion;
/// the paper then drops the dependence entirely (an upper bound).
fn resolve_cd(
    rdf: &[u32],
    branch_info: &[Option<BranchInst>],
    stack: &[StackEntry],
    _seq: u64,
) -> CdCtx {
    let proc_seq = cur_proc_seq(stack);
    let mut best: Option<BranchInst> = None;
    for &branch_pc in rdf {
        let Some(inst) = branch_info[branch_pc as usize] else {
            continue;
        };
        if inst.proc_seq > proc_seq {
            // Recursion cutoff.
            return CdCtx::default();
        }
        if inst.proc_seq == proc_seq && best.is_none_or(|b| inst.seq > b.seq) {
            best = Some(inst);
        }
    }
    match best {
        Some(inst) => CdCtx {
            time: inst.time,
            ceiling: inst.ceiling,
        },
        None => match stack.last() {
            Some(entry) => CdCtx {
                time: entry.inh_time,
                ceiling: entry.inh_ceiling,
            },
            None => CdCtx::default(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfp_isa::assemble;
    use clfp_vm::{Vm, VmOptions};

    /// Assembles, traces, and runs one machine pass with the given
    /// misprediction flags derived from an always-correct or per-branch
    /// predictor stub.
    fn analyze(source: &str, kind: MachineKind, mispredict_all: bool) -> PassResult {
        let program = assemble(source).unwrap();
        let info = StaticInfo::analyze(&program);
        let mut vm = Vm::new(&program, VmOptions { mem_words: 1 << 16 });
        let trace = vm.trace(1_000_000).unwrap();
        let text = &program.text;
        let mispred: Vec<bool> = trace
            .iter()
            .map(|e| {
                let instr = text[e.pc as usize];
                instr.is_computed_jump() || (instr.is_cond_branch() && mispredict_all)
            })
            .collect();
        let ignored: Vec<bool> = trace
            .iter()
            .map(|e| info.masks.ignored(e.pc, false))
            .collect();
        let class = EventClass::from_slices(&mispred, &ignored);
        let prepared = Prepared {
            program: &program,
            info: &info,
            events: trace.events(),
            class: &class,
            pass_config: PassConfig::default(),
        };
        run_pass(&prepared, kind)
    }

    /// A straight-line program: every machine should see the same
    /// data-dependence-limited schedule.
    #[test]
    fn straight_line_all_machines_agree() {
        let source = r#"
            .text
            main:
                li r8, 1
                li r9, 2
                add r10, r8, r9
                add r11, r10, r8
                halt
            "#;
        for kind in MachineKind::ALL {
            let result = analyze(source, kind, false);
            assert_eq!(result.count, 5, "{kind}");
            // Chain: li(1) -> add(2) -> add(3); halt at 1.
            assert_eq!(result.cycles, 3, "{kind}");
        }
    }

    /// Independent instructions behind a branch: ORACLE collapses to the
    /// data critical path; BASE serializes on the branch chain.
    #[test]
    fn base_serializes_on_branches() {
        let source = r#"
            .text
            main:
                li r8, 4
            loop:
                addi r8, r8, -1
                bgt r8, r0, loop
                halt
            "#;
        let oracle = analyze(source, MachineKind::Oracle, false);
        let base = analyze(source, MachineKind::Base, false);
        // 4 iterations: data chain on r8 = li(1), addi×4 (2..5), branches
        // ride one cycle behind. Total instrs: 1 + 8 + 1.
        assert_eq!(oracle.count, 10);
        assert_eq!(oracle.cycles, 6); // li, addi*4, halt? halt waits nothing: 1; bgt chain: addi_k+1
        assert!(base.cycles >= oracle.cycles);
    }

    /// The r8/r9 chains are independent; CD-MF can run them concurrently
    /// while CD must order the two loops' branches.
    #[test]
    fn cd_mf_overlaps_independent_loops() {
        let source = r#"
            .text
            main:
                li r8, 50
            loop1:
                addi r8, r8, -1
                bgt r8, r0, loop1
                li r9, 50
            loop2:
                addi r9, r9, -1
                bgt r9, r0, loop2
                halt
            "#;
        let cd = analyze(source, MachineKind::Cd, false);
        let cdmf = analyze(source, MachineKind::CdMf, false);
        let base = analyze(source, MachineKind::Base, false);
        assert!(cd.cycles <= base.cycles);
        // CD-MF overlaps the two loops: each loop alone needs ~2 cycles per
        // iteration (the body waits on the previous iteration's branch), so
        // the overlapped pair finishes in ~100 cycles while CD's global
        // branch ordering needs ~200.
        assert!(
            cdmf.cycles < cd.cycles,
            "cdmf {} vs cd {}",
            cdmf.cycles,
            cd.cycles
        );
        assert!(cdmf.cycles <= 110, "cdmf took {}", cdmf.cycles);
        assert!(cd.cycles >= 190, "cd took {}", cd.cycles);
    }

    /// With perfect prediction (no mispredictions), SP collapses control
    /// constraints entirely: only data dependences remain, like ORACLE.
    #[test]
    fn sp_with_perfect_prediction_matches_oracle() {
        let source = r#"
            .text
            main:
                li r8, 10
            loop:
                addi r8, r8, -1
                bgt r8, r0, loop
                halt
            "#;
        let sp = analyze(source, MachineKind::Sp, false);
        let oracle = analyze(source, MachineKind::Oracle, false);
        assert_eq!(sp.cycles, oracle.cycles);
        assert_eq!(sp.count, oracle.count);
    }

    /// With every branch mispredicted, SP degenerates to BASE-like
    /// serialization.
    #[test]
    fn sp_with_all_mispredictions_serializes() {
        let source = r#"
            .text
            main:
                li r8, 10
            loop:
                addi r8, r8, -1
                bgt r8, r0, loop
                halt
            "#;
        let sp_bad = analyze(source, MachineKind::Sp, true);
        let sp_good = analyze(source, MachineKind::Sp, false);
        assert!(sp_bad.cycles > sp_good.cycles);
        let base = analyze(source, MachineKind::Base, false);
        assert_eq!(sp_bad.cycles, base.cycles);
    }

    /// SP collects one segment per misprediction plus the trailing one.
    #[test]
    fn sp_segment_statistics() {
        let source = r#"
            .text
            main:
                li r8, 5
            loop:
                addi r8, r8, -1
                bgt r8, r0, loop
                halt
            "#;
        let result = analyze(source, MachineKind::Sp, true);
        let stats = result.mispred_stats.unwrap();
        // 5 mispredicted loop branches + trailing halt segment.
        assert_eq!(stats.total_segments(), 6);
    }

    /// Control-independent code after a data-dependent diamond: SP-CD does
    /// not cancel it on mispredictions, so it beats SP when every branch
    /// mispredicts.
    #[test]
    fn sp_cd_survives_mispredictions_on_independent_code() {
        let source = r#"
            .text
            main:
                li r8, 20
                li r10, 0
                li r11, 0
            loop:
                beq r8, r9, skip     # data-dependent diamond
                addi r10, r10, 1
            skip:
                addi r11, r11, 3     # control independent of the diamond
                addi r8, r8, -1
                bgt r8, r0, loop
                halt
            "#;
        let sp = analyze(source, MachineKind::Sp, true);
        let spcd = analyze(source, MachineKind::SpCd, true);
        let spcdmf = analyze(source, MachineKind::SpCdMf, true);
        assert!(spcd.cycles < sp.cycles, "spcd {} sp {}", spcd.cycles, sp.cycles);
        assert!(spcdmf.cycles <= spcd.cycles);
    }

    /// The full machine ordering on a procedure-heavy program.
    #[test]
    fn machine_hierarchy_holds_with_calls() {
        let source = r#"
            .text
            main:
                li r8, 8
            mloop:
                mv a0, r8
                call work
                addi r8, r8, -1
                bgt r8, r0, mloop
                halt
            work:
                addi sp, sp, -4
                sw ra, 0(sp)
                li v0, 0
                ble a0, r0, wend
                addi v0, a0, 5
            wend:
                lw ra, 0(sp)
                addi sp, sp, 4
                ret
            "#;
        let mut results = std::collections::HashMap::new();
        for kind in MachineKind::ALL {
            let result = analyze(source, kind, false);
            results.insert(kind, result.count as f64 / result.cycles as f64);
        }
        for kind in MachineKind::ALL {
            for &weaker in kind.dominates() {
                assert!(
                    results[&weaker] <= results[&kind] + 1e-9,
                    "{weaker} ({}) should not beat {kind} ({})",
                    results[&weaker],
                    results[&kind]
                );
            }
        }
    }

    /// Ignored instructions contribute nothing: a loop whose overhead is
    /// removed by unrolling has a shorter sequential count.
    #[test]
    fn unrolling_removes_loop_overhead() {
        let source = r#"
            .text
            main:
                li r8, 0
                li r9, 100
            loop:
                lw r10, 0x1000(r0)
                addi r8, r8, 1
                blt r8, r9, loop
                halt
            "#;
        let program = assemble(source).unwrap();
        let info = StaticInfo::analyze(&program);
        let mut vm = Vm::new(&program, VmOptions { mem_words: 1 << 16 });
        let trace = vm.trace(1_000_000).unwrap();
        let mispred = vec![false; trace.len()];
        let with_unroll: Vec<bool> = trace.iter().map(|e| info.masks.ignored(e.pc, true)).collect();
        let without: Vec<bool> = trace.iter().map(|e| info.masks.ignored(e.pc, false)).collect();
        let unroll_class = EventClass::from_slices(&mispred, &with_unroll);
        let plain_class = EventClass::from_slices(&mispred, &without);
        let on = run_pass(
            &Prepared {
                program: &program,
                info: &info,
                events: trace.events(),
                class: &unroll_class,
                pass_config: PassConfig::default(),
            },
            MachineKind::CdMf,
        );
        let off = run_pass(
            &Prepared {
                program: &program,
                info: &info,
                events: trace.events(),
                class: &plain_class,
                pass_config: PassConfig::default(),
            },
            MachineKind::CdMf,
        );
        // Unrolling removes addi+blt per iteration: 100 loads + li*2 + halt.
        assert_eq!(on.count, 103);
        assert_eq!(off.count, 303);
        // With the index chain gone, all loads issue immediately.
        assert!(on.cycles < off.cycles);
        assert!(on.cycles <= 3);
    }

    /// Memory dependences: a store-to-load chain serializes even on ORACLE.
    #[test]
    fn memory_chain_serializes_oracle() {
        let source = r#"
            .text
            main:
                li r8, 1
                sw r8, 0x2000(r0)
                lw r9, 0x2000(r0)
                addi r9, r9, 1
                sw r9, 0x2000(r0)
                lw r10, 0x2000(r0)
                halt
            "#;
        let result = analyze(source, MachineKind::Oracle, false);
        // li(1) sw(2) lw(3) addi(4) sw(5) lw(6).
        assert_eq!(result.cycles, 6);
    }

    /// Loads from distinct addresses do not depend on each other.
    #[test]
    fn independent_memory_is_parallel() {
        let source = r#"
            .text
            main:
                li r8, 1
                sw r8, 0x2000(r0)
                sw r8, 0x2004(r0)
                sw r8, 0x2008(r0)
                lw r9, 0x2000(r0)
                lw r10, 0x2004(r0)
                lw r11, 0x2008(r0)
                halt
            "#;
        let result = analyze(source, MachineKind::Oracle, false);
        // li(1), stores all (2), loads all (3).
        assert_eq!(result.cycles, 3);
    }

    /// Anti and output dependences are NOT enforced: a later write to the
    /// same register does not wait for earlier readers or writers.
    #[test]
    fn no_anti_or_output_dependences() {
        let source = r#"
            .text
            main:
                li r8, 1
                add r9, r8, r8
                add r9, r9, r9
                li r9, 7
                add r10, r9, r9
                halt
            "#;
        let result = analyze(source, MachineKind::Oracle, false);
        // The second li r9 executes at cycle 1 (no output dep); add r10 at 2.
        assert_eq!(result.cycles, 3); // critical path is li->add->add chain
    }
}
