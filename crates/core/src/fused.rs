//! The fused multi-machine scheduling pass.
//!
//! [`run_pass`](crate::pass::run_pass) re-derives, per machine model, a
//! pile of facts that do not depend on the machine at all: instruction
//! decode, effective-address disambiguation keys, block-instance sequence
//! numbers, and the *selection* of each instruction's immediate control
//! dependence. [`run_machine`] instead walks the pre-resolved
//! [`EventMeta`] stream from [`meta`](crate::meta), so one machine pass
//! touches only its own timing state:
//!
//! * register/memory last-write tables (shared shape with the reference);
//! * per-branch `time`/`ceiling` arrays indexed by static PC — the
//!   machine-dependent half of Section 4.4.1's dynamic control
//!   dependence, read through the event's pre-resolved `cd` annotation;
//! * the inherited-dependence call stack (times only; the sequence-number
//!   half lives in the shared walk).
//!
//! Machines that do not consult control dependences (BASE, SP, ORACLE)
//! skip the branch arrays and stack entirely: their results are provably
//! independent of that bookkeeping, which the reference pass maintains
//! only for stack inheritance that nothing ever reads on those models.
//!
//! [`run_fused`] runs all requested machines over one prepared trace,
//! reusing a single [`MachineState`] allocation sequentially, or — when
//! the host has cores to spare — fanning machines out over a scoped
//! worker pool (the same `std::thread::scope` pattern as the benchmark
//! suite; machine passes share only immutable data).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use clfp_metrics::{BindingEdge, EdgeKind, MetricsSink, NullSink, NO_PARENT};

use crate::lastwrite::LastWriteTable;
use crate::meta::{
    EventClass, EventMeta, ProgramMeta, CD_INHERIT, CD_NONE, EV_BRANCH, EV_MISPRED, EV_VALPRED,
    NO_REG,
    PC_CALL, PC_LOAD, PC_RET, PC_STORE,
};
use crate::pass::{PassConfig, PassResult};
use crate::stats::MispredictionStats;
use crate::MachineKind;

/// Reusable per-machine timing state. `clear()` + the next `run_machine`
/// call is equivalent to a fresh state, without reallocating the tables.
pub(crate) struct MachineState {
    reg_time: [u64; 32],
    /// False-dependence state, used only when renaming is off.
    reg_read: [u64; 32],
    mem_time: LastWriteTable,
    mem_read: LastWriteTable,
    /// Execution time of the latest instance of each branch PC
    /// (CD/CD-MF constraint source; meaningless until that branch has
    /// executed, which the pre-resolved `cd` annotations guarantee).
    branch_time: Vec<u64>,
    /// Misprediction ceiling of the latest instance of each branch PC
    /// (SP-CD/SP-CD-MF constraint source).
    branch_ceiling: Vec<u64>,
    /// Inherited `(time, ceiling)` per active call.
    stack: Vec<(u64, u64)>,
}

impl MachineState {
    pub fn new(text_len: usize) -> MachineState {
        MachineState::with_mem_capacity(text_len, crate::lane::DEFAULT_MEM_CAPACITY)
    }

    /// Like [`MachineState::new`], with the last-write tables sized for
    /// `mem_capacity` distinct keys — pass the trace's measured
    /// `distinct_mem_keys` (or a summary's `distinct_mem_words`) to avoid
    /// rehash/grow churn on memory-heavy workloads.
    pub fn with_mem_capacity(text_len: usize, mem_capacity: usize) -> MachineState {
        MachineState {
            reg_time: [0; 32],
            reg_read: [0; 32],
            mem_time: LastWriteTable::with_capacity(mem_capacity),
            mem_read: LastWriteTable::with_capacity(mem_capacity),
            branch_time: vec![0; text_len],
            branch_ceiling: vec![0; text_len],
            stack: Vec::new(),
        }
    }

    pub fn clear(&mut self) {
        self.reg_time = [0; 32];
        self.reg_read = [0; 32];
        self.mem_time.clear();
        self.mem_read.clear();
        self.branch_time.fill(0);
        self.branch_ceiling.fill(0);
        self.stack.clear();
    }

    /// Reads the `(time, ceiling)` control-dependence context named by a
    /// pre-resolved `cd` annotation.
    #[inline]
    fn cd_ctx(&self, cd: u32) -> (u64, u64) {
        match cd {
            CD_NONE => (0, 0),
            CD_INHERIT => self.stack.last().copied().unwrap_or((0, 0)),
            pc => (
                self.branch_time[pc as usize],
                self.branch_ceiling[pc as usize],
            ),
        }
    }
}

/// Producer-event bookkeeping for the metrics sink: every timing table in
/// [`MachineState`] has a shadow here recording *which trace event* wrote
/// the time, so the binding edge of each scheduled instruction can name
/// its parent. Allocated (and maintained) only when `S::ENABLED`.
struct AttrState {
    /// Event index of the last writer of each register ([`NO_PARENT`] if
    /// the register is untouched).
    reg_writer: [u32; 32],
    /// Event index + 1 of the last store to each memory key (0 = none);
    /// reuses [`LastWriteTable`] so lookups match `mem_time` exactly.
    mem_writer: LastWriteTable,
    /// Shadows `branch_time` / `branch_ceiling`: the event whose time is
    /// recorded there (inherited parents propagate through ignored
    /// branches the same way the times do).
    branch_time_ev: Vec<u32>,
    branch_ceiling_ev: Vec<u32>,
    /// Shadows the inherited-dependence call stack.
    stack_ev: Vec<(u32, u32)>,
    last_branch_ev: u32,
    last_mispred_ev: u32,
}

impl AttrState {
    fn new(text_len: usize) -> AttrState {
        AttrState {
            reg_writer: [NO_PARENT; 32],
            mem_writer: LastWriteTable::with_capacity(1 << 16),
            branch_time_ev: vec![NO_PARENT; text_len],
            branch_ceiling_ev: vec![NO_PARENT; text_len],
            stack_ev: Vec::new(),
            last_branch_ev: NO_PARENT,
            last_mispred_ev: NO_PARENT,
        }
    }

    /// Mirror of [`MachineState::cd_ctx`] over parent event indices.
    fn cd_parents(&self, cd: u32) -> (u32, u32) {
        match cd {
            CD_NONE => (NO_PARENT, NO_PARENT),
            CD_INHERIT => self.stack_ev.last().copied().unwrap_or((NO_PARENT, NO_PARENT)),
            pc => (
                self.branch_time_ev[pc as usize],
                self.branch_ceiling_ev[pc as usize],
            ),
        }
    }

    fn mem_writer_of(&self, key: u32) -> u32 {
        match self.mem_writer.get(key) {
            0 => NO_PARENT,
            idx_plus_one => (idx_plus_one - 1) as u32,
        }
    }
}

/// Folds one constraint term into a running `(value, edge)` maximum with
/// the scheduler's tie-breaking: `a.max(b)` returns `b` on equality, so a
/// later term wins ties. A term of 0 can only "win" against 0, and the
/// caller reports no edge when the final maximum is 0 (ready at cycle 0).
#[inline]
fn fold_term(value: &mut u64, edge: &mut Option<BindingEdge>, term: u64, term_edge: Option<BindingEdge>) {
    if term >= *value {
        *value = term;
        *edge = term_edge;
    }
}

/// One machine's scheduling walk as an incremental, chunk-fed cursor.
///
/// The walk state that is *not* in [`MachineState`] — the running
/// last-branch/last-misprediction times, cycle and instruction counters,
/// SP segment statistics, the metrics shadow tables, and the global event
/// index — lives here so the walk can be fed chunk by chunk: the streaming
/// pipeline creates one cursor (plus one [`MachineState`]) per machine ×
/// unroll setting and feeds every chunk to all of them. Feeding the whole
/// trace as one chunk is exactly the historical single-shot walk
/// ([`run_machine`] is that wrapper), so the chunked and in-memory
/// schedules are the same code path — bit-identical by construction.
pub(crate) struct MachineCursor {
    kind: MachineKind,
    uses_cd: bool,
    track_segments: bool,
    last_branch: u64,
    last_mispred: u64,
    cycles: u64,
    count: u64,
    stats: MispredictionStats,
    seg_count: u64,
    seg_start: u64,
    seg_max: u64,
    attr: Option<AttrState>,
    /// Global index of the next event fed — sink and attribution indices
    /// are global across chunks, matching the single-shot walk.
    base: u64,
}

impl MachineCursor {
    /// A fresh cursor for one machine walk. `record_attr` must equal the
    /// `S::ENABLED` of every sink later passed to [`MachineCursor::feed`].
    pub fn new(kind: MachineKind, text_len: usize, record_attr: bool) -> MachineCursor {
        MachineCursor {
            kind,
            uses_cd: kind.uses_control_deps(),
            track_segments: kind == MachineKind::Sp,
            last_branch: 0,
            last_mispred: 0,
            cycles: 0,
            count: 0,
            stats: MispredictionStats::new(),
            seg_count: 0,
            seg_start: 0,
            seg_max: 0,
            attr: record_attr.then(|| AttrState::new(text_len)),
            base: 0,
        }
    }

    /// Schedules one chunk of consecutive events. `class` indexes the
    /// *chunk* (entry `j` classifies `events[j]`); `state` must be the
    /// same [`MachineState`] across every feed of this cursor.
    pub fn feed<S: MetricsSink>(
        &mut self,
        pcs: &ProgramMeta,
        events: &[EventMeta],
        class: &EventClass,
        config: &PassConfig,
        state: &mut MachineState,
        sink: &mut S,
    ) {
        debug_assert_eq!(S::ENABLED, self.attr.is_some());
        debug_assert!(events.len() <= class.len());
        let kind = self.kind;
        let uses_cd = self.uses_cd;
        let track_segments = self.track_segments;
        let base = self.base;

        // Hot-loop state in locals (written back on exit), so the chunked
        // walk compiles to the same inner loop as the single-shot one.
        let mut last_branch = self.last_branch;
        let mut last_mispred = self.last_mispred;
        let mut cycles = self.cycles;
        let mut count = self.count;
        let stats = &mut self.stats;
        let mut seg_count = self.seg_count;
        let mut seg_start = self.seg_start;
        let mut seg_max = self.seg_max;
        let attr = &mut self.attr;

        for (j, event) in events.iter().enumerate() {
            let i = base + j as u64;
        let meta = &pcs.pcs[event.pc as usize];
        let ignored = class.ignored(j);
        let is_branch = event.flags & EV_BRANCH != 0;
        let mispredicted = event.flags & EV_MISPRED != 0 && is_branch;

        let cd = if uses_cd {
            state.cd_ctx(event.cd)
        } else {
            (0, 0)
        };
        let cd_p = if S::ENABLED && uses_cd {
            attr.as_ref().unwrap().cd_parents(event.cd)
        } else {
            (NO_PARENT, NO_PARENT)
        };

        // Machine-specific control constraint.
        let mut ctl = match kind {
            MachineKind::Base => last_branch,
            MachineKind::Cd | MachineKind::CdMf => cd.0,
            MachineKind::Sp => last_mispred,
            MachineKind::SpCd | MachineKind::SpCdMf => cd.1,
            MachineKind::Oracle => 0,
        };
        // Branch-ordering constraints.
        if is_branch && !ignored {
            match kind {
                MachineKind::Cd => ctl = ctl.max(last_branch),
                MachineKind::SpCd if mispredicted => ctl = ctl.max(last_mispred),
                _ => {}
            }
        }

        let mut exec = 0u64;
        if !ignored {
            if let Some(width) = config.fetch_bandwidth {
                ctl = ctl.max(count / width);
            }
            let mut data = 0u64;
            for &reg in &meta.uses {
                if reg == NO_REG {
                    break;
                }
                data = data.max(state.reg_time[reg as usize]);
            }
            let is_load = meta.is(PC_LOAD);
            let is_store = meta.is(PC_STORE);
            if is_load {
                data = data.max(state.mem_time.get(event.mem_key));
            }
            if !config.rename {
                if meta.def != NO_REG {
                    data = data
                        .max(state.reg_read[meta.def as usize])
                        .max(state.reg_time[meta.def as usize]);
                }
                if is_store {
                    data = data
                        .max(state.mem_read.get(event.mem_key))
                        .max(state.mem_time.get(event.mem_key));
                }
            }
            exec = data.max(ctl) + 1;
            let done = exec + meta.latency as u64 - 1;
            if S::ENABLED {
                // Replay the constraint fold above with the same term
                // order and tie-breaking, tracking which term won and
                // which event produced it. Runs before any state update,
                // so every table still holds the values the fold read.
                let a = attr.as_ref().unwrap();
                let (mut ctl_v, mut ctl_e) = match kind {
                    MachineKind::Base => (
                        last_branch,
                        Some(BindingEdge::new(EdgeKind::Control, a.last_branch_ev)),
                    ),
                    MachineKind::Cd | MachineKind::CdMf => {
                        (cd.0, Some(BindingEdge::new(EdgeKind::Control, cd_p.0)))
                    }
                    MachineKind::Sp => (
                        last_mispred,
                        Some(BindingEdge::new(EdgeKind::Control, a.last_mispred_ev)),
                    ),
                    MachineKind::SpCd | MachineKind::SpCdMf => {
                        (cd.1, Some(BindingEdge::new(EdgeKind::Control, cd_p.1)))
                    }
                    MachineKind::Oracle => (0, None),
                };
                if is_branch {
                    match kind {
                        MachineKind::Cd => fold_term(
                            &mut ctl_v,
                            &mut ctl_e,
                            last_branch,
                            Some(BindingEdge::new(EdgeKind::MfMerge, a.last_branch_ev)),
                        ),
                        MachineKind::SpCd if mispredicted => fold_term(
                            &mut ctl_v,
                            &mut ctl_e,
                            last_mispred,
                            Some(BindingEdge::new(EdgeKind::MfMerge, a.last_mispred_ev)),
                        ),
                        _ => {}
                    }
                }
                if let Some(width) = config.fetch_bandwidth {
                    // Fetch bandwidth has no single producer event.
                    fold_term(&mut ctl_v, &mut ctl_e, count / width, None);
                }
                let mut data_v = 0u64;
                let mut data_e: Option<BindingEdge> = None;
                for &reg in &meta.uses {
                    if reg == NO_REG {
                        break;
                    }
                    fold_term(
                        &mut data_v,
                        &mut data_e,
                        state.reg_time[reg as usize],
                        Some(BindingEdge::new(
                            EdgeKind::RegData,
                            a.reg_writer[reg as usize],
                        )),
                    );
                }
                if is_load {
                    fold_term(
                        &mut data_v,
                        &mut data_e,
                        state.mem_time.get(event.mem_key),
                        Some(BindingEdge::new(
                            EdgeKind::MemData,
                            a.mem_writer_of(event.mem_key),
                        )),
                    );
                }
                if !config.rename {
                    if meta.def != NO_REG {
                        // Anti-dependences: the binding reader event is
                        // not tracked, only the dependence kind.
                        fold_term(
                            &mut data_v,
                            &mut data_e,
                            state.reg_read[meta.def as usize],
                            Some(BindingEdge::new(EdgeKind::RegData, NO_PARENT)),
                        );
                        fold_term(
                            &mut data_v,
                            &mut data_e,
                            state.reg_time[meta.def as usize],
                            Some(BindingEdge::new(
                                EdgeKind::RegData,
                                a.reg_writer[meta.def as usize],
                            )),
                        );
                    }
                    if is_store {
                        fold_term(
                            &mut data_v,
                            &mut data_e,
                            state.mem_read.get(event.mem_key),
                            Some(BindingEdge::new(EdgeKind::MemData, NO_PARENT)),
                        );
                        fold_term(
                            &mut data_v,
                            &mut data_e,
                            state.mem_time.get(event.mem_key),
                            Some(BindingEdge::new(
                                EdgeKind::MemData,
                                a.mem_writer_of(event.mem_key),
                            )),
                        );
                    }
                }
                debug_assert_eq!(data_v.max(ctl_v) + 1, exec);
                // `data.max(ctl)`: ctl wins the final tie; a maximum of 0
                // means ready at cycle 0 — nothing bound.
                let (bind_v, bind_e) = if ctl_v >= data_v {
                    (ctl_v, ctl_e)
                } else {
                    (data_v, data_e)
                };
                sink.on_schedule(i as u32, exec, done, if bind_v == 0 { None } else { bind_e });
            }
            count += 1;
            cycles = cycles.max(done);
            if meta.def != NO_REG {
                // A correctly value-predicted producer (EV_VALPRED, decided
                // once in the preparation walk) releases its consumers
                // immediately; its own exec/done still count — verification
                // is charged at resolve time like a mispredicted branch.
                state.reg_time[meta.def as usize] = if event.flags & EV_VALPRED != 0 {
                    0
                } else {
                    done
                };
            }
            if is_store {
                let prev = state.mem_time.get(event.mem_key);
                let accumulate = config.disambiguation.accumulates();
                state.mem_time.set(event.mem_key, if accumulate { prev.max(done) } else { done });
                // A store that did not advance the accumulated maximum
                // does not own the table value, so it is never the
                // binding writer for attribution.
                if S::ENABLED && (!accumulate || done >= prev) {
                    attr.as_mut().unwrap().mem_writer.set(event.mem_key, i + 1);
                }
            }
            if S::ENABLED {
                let a = attr.as_mut().unwrap();
                if meta.def != NO_REG {
                    a.reg_writer[meta.def as usize] = i as u32;
                }
            }
            if !config.rename {
                for &reg in &meta.uses {
                    if reg == NO_REG {
                        break;
                    }
                    state.reg_read[reg as usize] = state.reg_read[reg as usize].max(exec);
                }
                if is_load {
                    let prev = state.mem_read.get(event.mem_key);
                    state.mem_read.set(event.mem_key, prev.max(exec));
                }
            }
        }

        if S::ENABLED && ignored {
            sink.on_schedule(i as u32, 0, 0, None);
        }

        // Tracker updates.
        if is_branch {
            if !ignored {
                last_branch = exec;
                if mispredicted {
                    last_mispred = exec;
                }
                if S::ENABLED {
                    let a = attr.as_mut().unwrap();
                    a.last_branch_ev = i as u32;
                    if mispredicted {
                        a.last_mispred_ev = i as u32;
                    }
                }
            }
            if uses_cd {
                let pc = event.pc as usize;
                if ignored {
                    // Perfect unrolling deleted this branch: dependents
                    // inherit the constraint the branch itself would have
                    // waited on.
                    state.branch_time[pc] = cd.0;
                    state.branch_ceiling[pc] = cd.1;
                } else {
                    state.branch_time[pc] = exec;
                    state.branch_ceiling[pc] = if mispredicted { exec } else { cd.1 };
                }
                if S::ENABLED {
                    let a = attr.as_mut().unwrap();
                    if ignored {
                        a.branch_time_ev[pc] = cd_p.0;
                        a.branch_ceiling_ev[pc] = cd_p.1;
                    } else {
                        a.branch_time_ev[pc] = i as u32;
                        a.branch_ceiling_ev[pc] = if mispredicted { i as u32 } else { cd_p.1 };
                    }
                }
            }
        }
        if uses_cd {
            if meta.is(PC_CALL) {
                state.stack.push(cd);
                if S::ENABLED {
                    attr.as_mut().unwrap().stack_ev.push(cd_p);
                }
            } else if meta.is(PC_RET) {
                state.stack.pop();
                if S::ENABLED {
                    attr.as_mut().unwrap().stack_ev.pop();
                }
            }
        }

        // SP segment statistics.
        if track_segments && !ignored {
            seg_count += 1;
            seg_max = seg_max.max(exec);
            if mispredicted {
                let span = seg_max.saturating_sub(seg_start).max(1);
                stats.record_segment(
                    seg_count.min(u32::MAX as u64) as u32,
                    seg_count as f64 / span as f64,
                );
                seg_count = 0;
                seg_start = exec;
                seg_max = exec;
            }
        }
        }

        self.last_branch = last_branch;
        self.last_mispred = last_mispred;
        self.cycles = cycles;
        self.count = count;
        self.seg_count = seg_count;
        self.seg_start = seg_start;
        self.seg_max = seg_max;
        self.base = base + events.len() as u64;
    }

    /// Closes the walk: records the trailing SP segment (the single-shot
    /// walk's post-loop step) and returns the pass result.
    pub fn finish(mut self) -> PassResult {
        if self.track_segments && self.seg_count > 0 {
            let span = self.seg_max.saturating_sub(self.seg_start).max(1);
            self.stats.record_segment(
                self.seg_count.min(u32::MAX as u64) as u32,
                self.seg_count as f64 / span as f64,
            );
        }
        PassResult {
            cycles: self.cycles,
            count: self.count,
            mispred_stats: self.track_segments.then_some(self.stats),
        }
    }
}

/// One machine pass over a pre-decoded trace. Bit-for-bit equivalent to
/// [`run_pass`](crate::pass::run_pass) on the same classification (the
/// `fused_equivalence` integration suite holds this across every machine,
/// workload, and unroll setting). The whole-trace special case of
/// [`MachineCursor`]: one cursor, one chunk, finish.
///
/// Generic over the metrics sink: with [`NullSink`] every `S::ENABLED`
/// block is statically eliminated and this monomorphizes to the exact
/// uninstrumented hot loop; with a recording sink it additionally resolves
/// each scheduled instruction's *binding edge* — which constraint term won
/// the `max` that set its issue cycle, and which earlier event produced it
/// (see `clfp-metrics` and `docs/OBSERVABILITY.md`).
pub(crate) fn run_machine<S: MetricsSink>(
    pcs: &ProgramMeta,
    events: &[EventMeta],
    class: &EventClass,
    config: &PassConfig,
    kind: MachineKind,
    state: &mut MachineState,
    sink: &mut S,
) -> PassResult {
    let mut cursor = MachineCursor::new(kind, pcs.pcs.len(), S::ENABLED);
    cursor.feed(pcs, events, class, config, state, sink);
    cursor.finish()
}

/// Runs every requested machine over one prepared trace, returning results
/// in request order.
///
/// Single core (or a single machine): a sequential loop reusing one
/// [`MachineState`]. Multiple cores: a scoped worker pool pulling machine
/// indices from a shared counter, one state per worker.
pub(crate) fn run_fused(
    pcs: &ProgramMeta,
    events: &[EventMeta],
    class: &EventClass,
    config: &PassConfig,
    kinds: &[MachineKind],
    mem_capacity: usize,
) -> Vec<PassResult> {
    let text_len = pcs.pcs.len();
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(kinds.len());
    if workers <= 1 {
        let mut state = MachineState::with_mem_capacity(text_len, mem_capacity);
        return kinds
            .iter()
            .map(|&kind| {
                state.clear();
                run_machine(pcs, events, class, config, kind, &mut state, &mut NullSink)
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<PassResult>>> = Mutex::new(vec![None; kinds.len()]);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = MachineState::with_mem_capacity(text_len, mem_capacity);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= kinds.len() {
                        break;
                    }
                    state.clear();
                    let result =
                        run_machine(pcs, events, class, config, kinds[i], &mut state, &mut NullSink);
                    results.lock().unwrap()[i] = Some(result);
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|result| result.expect("every machine index was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::TraceMeta;
    use crate::pass::{run_pass, Prepared};
    use crate::AnalysisConfig;
    use clfp_cfg::StaticInfo;
    use clfp_isa::assemble;
    use clfp_vm::{Vm, VmOptions};

    /// A procedure-heavy program exercising calls, recursion-free CD
    /// inheritance, loops, and memory traffic.
    const SOURCE: &str = r#"
        .text
        main:
            li r8, 8
        mloop:
            mv a0, r8
            call work
            sw v0, 0x1000(r0)
            lw r9, 0x1000(r0)
            addi r8, r8, -1
            bgt r8, r0, mloop
            halt
        work:
            addi sp, sp, -4
            sw ra, 0(sp)
            li v0, 0
            ble a0, r0, wend
            addi v0, a0, 5
        wend:
            lw ra, 0(sp)
            addi sp, sp, 4
            ret
        "#;

    #[test]
    fn fused_matches_reference_on_every_machine() {
        let program = assemble(SOURCE).unwrap();
        let info = StaticInfo::analyze(&program);
        for unrolling in [false, true] {
            let config = AnalysisConfig::quick().with_unrolling(unrolling);
            let pass_config = PassConfig::from_analysis(&config);
            let pcs = ProgramMeta::build(&program, &info, &pass_config);
            let mut vm = Vm::new(
                &program,
                VmOptions {
                    mem_words: config.mem_words,
                },
            );
            let trace = vm.trace(config.max_instrs).unwrap();
            let tm = TraceMeta::build(&program, &info, &pcs, &config, &trace, false);
            let class = tm.class(unrolling);
            let mut state = MachineState::new(program.text.len());
            for kind in MachineKind::ALL {
                state.clear();
                let fused = run_machine(
                    &pcs,
                    &tm.events,
                    class,
                    &pass_config,
                    kind,
                    &mut state,
                    &mut NullSink,
                );
                let reference = run_pass(
                    &Prepared {
                        program: &program,
                        info: &info,
                        events: trace.events(),
                        class,
                        pass_config,
                    },
                    kind,
                );
                assert_eq!(fused.cycles, reference.cycles, "{kind} unroll={unrolling}");
                assert_eq!(fused.count, reference.count, "{kind} unroll={unrolling}");
                assert_eq!(
                    fused.mispred_stats, reference.mispred_stats,
                    "{kind} unroll={unrolling}"
                );
            }
        }
    }

    #[test]
    fn run_fused_orders_results_by_request() {
        let program = assemble(SOURCE).unwrap();
        let info = StaticInfo::analyze(&program);
        let config = AnalysisConfig::quick();
        let pass_config = PassConfig::from_analysis(&config);
        let pcs = ProgramMeta::build(&program, &info, &pass_config);
        let mut vm = Vm::new(
            &program,
            VmOptions {
                mem_words: config.mem_words,
            },
        );
        let trace = vm.trace(config.max_instrs).unwrap();
        let tm = TraceMeta::build(&program, &info, &pcs, &config, &trace, false);
        let class = tm.class(config.unrolling);
        let kinds = [MachineKind::Oracle, MachineKind::Base, MachineKind::Sp];
        let results = run_fused(
            &pcs,
            &tm.events,
            class,
            &pass_config,
            &kinds,
            crate::lane::DEFAULT_MEM_CAPACITY,
        );
        assert_eq!(results.len(), 3);
        let mut state = MachineState::new(program.text.len());
        for (result, &kind) in results.iter().zip(&kinds) {
            state.clear();
            let lone = run_machine(
                &pcs,
                &tm.events,
                class,
                &pass_config,
                kind,
                &mut state,
                &mut NullSink,
            );
            assert_eq!(result.cycles, lone.cycles, "{kind}");
            assert_eq!(result.count, lone.count, "{kind}");
        }
        // SP is last in the request, so its stats are present there only.
        assert!(results[2].mispred_stats.is_some());
        assert!(results[0].mispred_stats.is_none());
    }

    #[test]
    fn recording_sink_does_not_perturb_results() {
        use clfp_metrics::{EdgeKind, MetricsCollector};
        let program = assemble(SOURCE).unwrap();
        let info = StaticInfo::analyze(&program);
        for unrolling in [false, true] {
            let config = AnalysisConfig::quick().with_unrolling(unrolling);
            let pass_config = PassConfig::from_analysis(&config);
            let pcs = ProgramMeta::build(&program, &info, &pass_config);
            let mut vm = Vm::new(
                &program,
                VmOptions {
                    mem_words: config.mem_words,
                },
            );
            let trace = vm.trace(config.max_instrs).unwrap();
            let tm = TraceMeta::build(&program, &info, &pcs, &config, &trace, false);
            let class = tm.class(unrolling);
            let mut state = MachineState::new(program.text.len());
            for kind in MachineKind::ALL {
                state.clear();
                let plain = run_machine(
                    &pcs,
                    &tm.events,
                    class,
                    &pass_config,
                    kind,
                    &mut state,
                    &mut NullSink,
                );
                state.clear();
                let mut collector = MetricsCollector::with_capacity(tm.events.len());
                let observed = run_machine(
                    &pcs,
                    &tm.events,
                    class,
                    &pass_config,
                    kind,
                    &mut state,
                    &mut collector,
                );
                assert_eq!(observed.cycles, plain.cycles, "{kind}");
                assert_eq!(observed.count, plain.count, "{kind}");
                assert_eq!(observed.mispred_stats, plain.mispred_stats, "{kind}");

                assert_eq!(collector.len(), tm.events.len(), "{kind}");
                let metrics = collector.finish();
                // The distilled metrics re-derive the pass result exactly.
                assert_eq!(metrics.cycles, plain.cycles, "{kind}");
                assert_eq!(metrics.instrs, plain.count, "{kind}");
                assert_eq!(metrics.flow.total(), plain.count, "{kind}");
                assert!(metrics.attribution.chain_len >= 1, "{kind}");
                let total: f64 = EdgeKind::ALL
                    .iter()
                    .map(|&k| metrics.attribution.percent(k))
                    .sum();
                if metrics.attribution.classified() > 0 {
                    assert!((total - 100.0).abs() < 1e-9, "{kind}: {total}");
                }
                // ORACLE has no control constraint of any kind.
                if kind == MachineKind::Oracle {
                    assert_eq!(metrics.flow.control_bound(), 0);
                }
                // Multiple-flow machines never pay the merge ordering.
                if kind.multiple_flows() || !kind.uses_control_deps() {
                    assert_eq!(
                        metrics.flow.by_kind[3], 0,
                        "{kind} should have no mf-merge edges"
                    );
                }
            }

            // The streaming metrics path (chunked cursor + recording sink)
            // must reproduce the in-memory metrics bit for bit, including
            // across boundary-straddling 7-event chunks.
            let analyzer = crate::Analyzer::new(&program, config.clone()).unwrap();
            let inmem = analyzer.prepare(&trace).machine_metrics_with_unrolling(unrolling);
            let streamed = analyzer.stream_machine_metrics(&trace, unrolling, 7).unwrap();
            assert_eq!(inmem.len(), streamed.len());
            for ((k, a), (k2, b)) in inmem.iter().zip(&streamed) {
                let tag = format!("{k} unroll={unrolling}");
                assert_eq!(k, k2, "{tag}");
                assert_eq!(a.instrs, b.instrs, "{tag}");
                assert_eq!(a.cycles, b.cycles, "{tag}");
                assert_eq!(a.flow, b.flow, "{tag}");
                assert_eq!(a.attribution, b.attribution, "{tag}");
                assert_eq!(a.occupancy.buckets, b.occupancy.buckets, "{tag}");
                assert_eq!(a.occupancy.cycles, b.occupancy.cycles, "{tag}");
                assert_eq!(a.occupancy.busy_cycles, b.occupancy.busy_cycles, "{tag}");
                assert_eq!(a.occupancy.instrs, b.occupancy.instrs, "{tag}");
                assert_eq!(a.occupancy.peak, b.occupancy.peak, "{tag}");
            }
        }
    }
}
