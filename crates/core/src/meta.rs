//! Pre-decoded metadata for the fused multi-machine pass.
//!
//! The seed analyzer walked the full dynamic trace once per machine model,
//! and every one of those seven walks re-fetched `text[event.pc]`,
//! re-extracted operand registers, re-looked-up the basic block, and
//! re-ran the reverse-dominance-frontier search for the instruction's
//! immediate control dependence. All of that work is machine-independent:
//!
//! * [`ProgramMeta`] caches the per-**PC** facts once per program —
//!   operand registers, destination, latency class, branch/call/ret/memory
//!   classification, block-start and inline/unroll ignore flags;
//! * [`TraceMeta`] caches the per-**event** facts once per trace — the
//!   misprediction and ignore classification (packed two bits per event in
//!   [`EventClass`]), the disambiguated memory key, and the resolved
//!   control-dependence source (Section 4.4.1 of the paper; the *choice*
//!   of controlling branch instance depends only on block-instance
//!   sequence numbers, which are identical for every machine).
//!
//! Everything in [`TraceMeta`] except the ignore bit is also independent
//! of the unrolling setting, so the single walk records the ignore bitmap
//! for *both* settings ([`TraceMeta::class`]) — Table 4's
//! with/without-unrolling comparison shares one preparation.
//!
//! The per-machine walks in [`fused`](crate::fused) then touch only their
//! own timing state, sharing everything here.

use clfp_cfg::StaticInfo;
use clfp_isa::{Instr, Program};
use clfp_predict::BranchProfile;
use clfp_vm::Trace;

use crate::pass::PassConfig;
use crate::stats::BranchReport;
use crate::{AnalysisConfig, PredictorChoice};

/// Sentinel register index: "no register".
pub(crate) const NO_REG: u8 = u8::MAX;

// Per-PC flags.
pub(crate) const PC_COND_BRANCH: u16 = 1 << 0;
pub(crate) const PC_COMPUTED_JUMP: u16 = 1 << 1;
/// Conditional branch or computed jump (the paper's "branch").
pub(crate) const PC_BRANCH: u16 = 1 << 2;
pub(crate) const PC_LOAD: u16 = 1 << 3;
pub(crate) const PC_STORE: u16 = 1 << 4;
pub(crate) const PC_CALL: u16 = 1 << 5;
pub(crate) const PC_RET: u16 = 1 << 6;
pub(crate) const PC_BLOCK_START: u16 = 1 << 7;
pub(crate) const PC_INLINE_IGNORED: u16 = 1 << 8;
pub(crate) const PC_UNROLL_IGNORED: u16 = 1 << 9;

/// Everything the per-event hot loops need to know about one static
/// instruction, decoded once per program instead of once per event per
/// machine.
#[derive(Copy, Clone, Debug)]
pub(crate) struct PcMeta {
    /// `PC_*` flag bits.
    pub flags: u16,
    /// Destination register index, or [`NO_REG`].
    pub def: u8,
    /// Source register indices, [`NO_REG`]-terminated.
    pub uses: [u8; 3],
    /// Completion latency under the configured latency model.
    pub latency: u32,
}

impl PcMeta {
    #[inline]
    pub fn is(&self, flag: u16) -> bool {
        self.flags & flag != 0
    }
}

/// The per-PC metadata table for one program under one configuration.
#[derive(Clone, Debug)]
pub(crate) struct ProgramMeta {
    pub pcs: Vec<PcMeta>,
}

impl ProgramMeta {
    /// Decodes every static instruction once.
    pub fn build(program: &Program, info: &StaticInfo, config: &PassConfig) -> ProgramMeta {
        let cfg = &info.cfg;
        let pcs = program
            .text
            .iter()
            .enumerate()
            .map(|(pc, &instr)| {
                let pc = pc as u32;
                let mut flags = 0u16;
                if instr.is_cond_branch() {
                    flags |= PC_COND_BRANCH | PC_BRANCH;
                }
                if instr.is_computed_jump() {
                    flags |= PC_COMPUTED_JUMP | PC_BRANCH;
                }
                if matches!(instr, Instr::Lw { .. }) {
                    flags |= PC_LOAD;
                }
                if matches!(instr, Instr::Sw { .. }) {
                    flags |= PC_STORE;
                }
                if matches!(instr, Instr::Call { .. } | Instr::CallR { .. }) {
                    flags |= PC_CALL;
                }
                if matches!(instr, Instr::Ret) {
                    flags |= PC_RET;
                }
                if cfg.block(cfg.block_of_instr(pc)).start == pc {
                    flags |= PC_BLOCK_START;
                }
                if info.masks.inline_ignored(pc) {
                    flags |= PC_INLINE_IGNORED;
                }
                if info.masks.unroll_ignored(pc) {
                    flags |= PC_UNROLL_IGNORED;
                }
                let mut uses = [NO_REG; 3];
                for (slot, reg) in uses.iter_mut().zip(instr.uses()) {
                    *slot = reg.index() as u8;
                }
                PcMeta {
                    flags,
                    def: instr.def().map_or(NO_REG, |reg| reg.index() as u8),
                    uses,
                    latency: config.latency_of(instr) as u32,
                }
            })
            .collect();
        ProgramMeta { pcs }
    }
}

/// Packed per-event classification: one misprediction bit and one ignore
/// bit per dynamic instruction (the seed used two `Vec<bool>`, eight times
/// the working set the scheduling loops stream over).
#[derive(Clone, Debug, Default)]
pub(crate) struct EventClass {
    mispred: Vec<u64>,
    ignored: Vec<u64>,
    len: usize,
}

impl EventClass {
    pub fn with_capacity(events: usize) -> EventClass {
        let words = events.div_ceil(64);
        EventClass {
            mispred: Vec::with_capacity(words),
            ignored: Vec::with_capacity(words),
            len: 0,
        }
    }

    /// Empties the bitmaps, keeping the allocations (chunk-buffer reuse in
    /// the streaming pipeline).
    pub fn clear(&mut self) {
        self.mispred.clear();
        self.ignored.clear();
        self.len = 0;
    }

    /// Appends one event's classification.
    #[inline]
    pub fn push(&mut self, mispred: bool, ignored: bool) {
        if self.len.is_multiple_of(64) {
            self.mispred.push(0);
            self.ignored.push(0);
        }
        let word = self.len / 64;
        let bit = 1u64 << (self.len % 64);
        if mispred {
            self.mispred[word] |= bit;
        }
        if ignored {
            self.ignored[word] |= bit;
        }
        self.len += 1;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether event `i`'s branch was mispredicted (computed jumps always
    /// count as mispredicted; non-branches are never set).
    #[inline]
    pub fn mispred(&self, i: usize) -> bool {
        self.mispred[i / 64] & (1 << (i % 64)) != 0
    }

    /// Whether event `i` was removed by perfect inlining/unrolling.
    #[inline]
    pub fn ignored(&self, i: usize) -> bool {
        self.ignored[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of non-ignored events — the sequential instruction count.
    pub fn not_ignored(&self) -> u64 {
        let ignored: u32 = self.ignored.iter().map(|word| word.count_ones()).sum();
        self.len as u64 - ignored as u64
    }

    /// Builds the bitmaps from plain slices (test support).
    #[cfg(test)]
    pub fn from_slices(mispred: &[bool], ignored: &[bool]) -> EventClass {
        assert_eq!(mispred.len(), ignored.len());
        let mut class = EventClass::with_capacity(mispred.len());
        for (&m, &s) in mispred.iter().zip(ignored) {
            class.push(m, s);
        }
        class
    }
}

// Per-event flags (unroll-independent classification, duplicated into the
// event stream so the machine walks touch a single cache line per event;
// the unroll-dependent ignore bit lives in the per-setting [`EventClass`]).
pub(crate) const EV_MISPRED: u8 = 1 << 0;
pub(crate) const EV_BRANCH: u8 = 1 << 1;
/// The event defines a register and its produced value was predicted
/// correctly under the configured [`ValuePrediction`](crate::ValuePrediction)
/// mode — a correctly speculated producer does not delay its consumers.
pub(crate) const EV_VALPRED: u8 = 1 << 2;
/// The event defines a register (value-prediction eligible). Under
/// `Perfect` value prediction this is exactly the predicted set.
pub(crate) const EV_DEF: u8 = 1 << 3;
/// The last-value predictor hit on this def.
pub(crate) const EV_VP_LAST: u8 = 1 << 4;
/// The hybrid stride predictor hit on this def.
pub(crate) const EV_VP_STRIDE: u8 = 1 << 5;

/// The flag bit that marks a hit under `mode` — the bridge between the
/// always-recorded per-predictor bits and a concrete value-prediction
/// mode. `Off` maps to no bit (`flags & 0` is never set), `Perfect` to
/// [`EV_DEF`] (every def hits). Mode-sliced preparation and the
/// multi-config lane walk both select hits through this mask instead of
/// re-running a predictor.
pub(crate) fn vp_flag(mode: crate::ValuePrediction) -> u8 {
    match mode {
        crate::ValuePrediction::Off => 0,
        crate::ValuePrediction::LastValue => EV_VP_LAST,
        crate::ValuePrediction::Stride => EV_VP_STRIDE,
        crate::ValuePrediction::Perfect => EV_DEF,
    }
}

/// The control-dependence source of an event: no constraint (recursion
/// cutoff, or no controlling branch outside any call).
pub(crate) const CD_NONE: u32 = u32::MAX;
/// The control-dependence source of an event: inherited from the top of
/// the machine's interprocedural call stack.
pub(crate) const CD_INHERIT: u32 = u32::MAX - 1;

/// One pre-decoded dynamic instruction.
///
/// `cd` names the static PC of the controlling branch whose *latest
/// instance* is the event's immediate control dependence — the selection
/// (Section 4.4.1) depends only on block-instance sequence numbers, so it
/// is computed once here and each machine merely reads its own recorded
/// time/ceiling for that branch.
#[derive(Copy, Clone, Debug)]
pub(crate) struct EventMeta {
    pub pc: u32,
    /// Last-write key, valid for loads/stores: `mem_addr >>
    /// disambiguation_shift` under `Perfect` disambiguation, the static
    /// alias scheduler class under `Static`, 0 under `None`.
    pub mem_key: u32,
    /// Controlling branch PC, [`CD_NONE`], or [`CD_INHERIT`].
    pub cd: u32,
    /// `EV_*` flag bits.
    pub flags: u8,
}

/// Everything machine-independent about one captured trace: the paper's
/// classification pass, the branch report, and the resolved
/// control-dependence stream — computed in a single walk, for **both**
/// unroll settings (they differ only in the ignore bitmap).
#[derive(Clone, Debug)]
pub(crate) struct TraceMeta {
    pub events: Vec<EventMeta>,
    class_unrolled: EventClass,
    class_rolled: EventClass,
    pub branches: BranchReport,
    /// Distinct disambiguated memory keys touched by loads and stores —
    /// sizes the machine walks' last-write tables to the trace's live
    /// footprint instead of a fixed guess.
    pub distinct_mem_keys: u64,
    /// Hits each value-prediction mode would score on this trace, indexed
    /// by [`ValuePrediction::ALL`](crate::ValuePrediction::ALL) — recorded
    /// during the one preparation walk so per-mode slices can report their
    /// hit counts without re-running a predictor.
    pub vp_hits: [u64; 4],
    /// Whether the realistic value predictors were trained during the
    /// preparation walk. Slicing or lane-walking a `LastValue`/`Stride`
    /// mode requires a trained base (see
    /// [`Analyzer::prepare_multimode`](crate::Analyzer::prepare_multimode));
    /// single-mode preparations skip the training cost unless their own
    /// mode needs it.
    pub vp_trained: bool,
}

/// Whether scheduling under `mode` consumes the realistic value
/// predictors' per-event hit bits (`EV_VP_LAST` / `EV_VP_STRIDE`).
/// `Off` reads no bit and `Perfect` reads [`EV_DEF`], which is always
/// recorded.
pub(crate) fn needs_vp_training(mode: crate::ValuePrediction) -> bool {
    matches!(
        mode,
        crate::ValuePrediction::LastValue | crate::ValuePrediction::Stride
    )
}

impl TraceMeta {
    /// The packed classification for one unroll setting.
    pub fn class(&self, unrolling: bool) -> &EventClass {
        if unrolling {
            &self.class_unrolled
        } else {
            &self.class_rolled
        }
    }

    /// The fused preparation walk: classification (branch prediction +
    /// ignore masks for both unroll settings), operand pre-decode, and
    /// dynamic control-dependence resolution, one trace walk for all
    /// machines. The whole-trace special case of [`MetaBuilder`] — one
    /// chunk spanning the trace — so the in-memory and streaming pipelines
    /// share one walk implementation.
    pub fn build(
        program: &Program,
        info: &StaticInfo,
        pcs: &ProgramMeta,
        config: &AnalysisConfig,
        trace: &Trace,
        train_all_predictors: bool,
    ) -> TraceMeta {
        let _span = clfp_metrics::trace::span("prepare.build", "prepare")
            .arg("events", trace.len())
            .arg("multimode", train_all_predictors);
        // The paper's profile-static predictor is trained on the measured
        // run's own inputs; deriving it from the measured trace itself is
        // exactly that semantics without a second VM execution.
        let profile = match config.predictor {
            PredictorChoice::Profile => BranchProfile::from_trace(program, trace),
            _ => BranchProfile::new(),
        };
        let mut builder = MetaBuilder::new(program, info, pcs, config, &profile);
        if train_all_predictors {
            builder.force_value_predictor_training();
        }
        let mut class_unrolled = EventClass::with_capacity(trace.len());
        let mut class_rolled = EventClass::with_capacity(trace.len());
        let mut events = Vec::with_capacity(trace.len());
        builder.push_chunk(trace.events(), &mut events, &mut class_unrolled, &mut class_rolled);
        TraceMeta {
            events,
            class_unrolled,
            class_rolled,
            branches: builder.branches(),
            distinct_mem_keys: builder.distinct_mem_keys(),
            vp_hits: builder.vp_hits(),
            vp_trained: builder.vp_trained(),
        }
    }

    /// Derives the metadata a full preparation under (`disambiguation`,
    /// `value_prediction`) would produce, without re-walking the trace:
    /// memory keys are remapped (`Static` is a per-PC table lookup,
    /// `None` collapses to one key) and the [`EV_VALPRED`] bit is
    /// rewritten from the per-predictor bits recorded by the base walk.
    /// Classification bitmaps, control-dependence sources, and the branch
    /// profile are mode-independent and copied as-is.
    ///
    /// Bit-identity with a from-scratch preparation holds because the base
    /// walk trains every predictor on every def in trace order — exactly
    /// the sequence a dedicated builder would see — and `Static`/`None`
    /// keys are pure functions of the PC.
    ///
    /// # Panics
    ///
    /// The base must have been prepared under `Perfect` disambiguation
    /// (the default) unless the requested mode equals the base mode:
    /// coarser keys cannot be refined.
    pub fn resliced(
        &self,
        info: &StaticInfo,
        pcs: &ProgramMeta,
        base_disambiguation: crate::MemDisambiguation,
        disambiguation: crate::MemDisambiguation,
        value_prediction: crate::ValuePrediction,
    ) -> TraceMeta {
        assert!(
            base_disambiguation == crate::MemDisambiguation::Perfect
                || disambiguation == base_disambiguation,
            "mode slicing needs a perfect-disambiguation base (have {}, want {})",
            base_disambiguation.name(),
            disambiguation.name(),
        );
        assert!(
            self.vp_trained || !needs_vp_training(value_prediction),
            "slicing to {} needs a base preparation that trained the value \
             predictors (use Analyzer::prepare_multimode)",
            value_prediction.name(),
        );
        let hit_flag = vp_flag(value_prediction);
        let remap = disambiguation != base_disambiguation;
        let mut mem_seen: Vec<u64> = Vec::new();
        let mut distinct_mem_keys = 0u64;
        let events = self
            .events
            .iter()
            .map(|event| {
                let mem_key = if !remap {
                    event.mem_key
                } else {
                    match disambiguation {
                        crate::MemDisambiguation::Perfect => event.mem_key,
                        crate::MemDisambiguation::Static => {
                            info.alias.scheduler_class(event.pc)
                        }
                        crate::MemDisambiguation::None => 0,
                    }
                };
                if remap && pcs.pcs[event.pc as usize].flags & (PC_LOAD | PC_STORE) != 0 {
                    let word = (mem_key >> 6) as usize;
                    if word >= mem_seen.len() {
                        mem_seen.resize(word + 1, 0);
                    }
                    let bit = 1u64 << (mem_key & 63);
                    if mem_seen[word] & bit == 0 {
                        mem_seen[word] |= bit;
                        distinct_mem_keys += 1;
                    }
                }
                let mut flags = event.flags & !EV_VALPRED;
                if flags & hit_flag != 0 {
                    flags |= EV_VALPRED;
                }
                EventMeta {
                    pc: event.pc,
                    mem_key,
                    cd: event.cd,
                    flags,
                }
            })
            .collect();
        let mode_index = crate::ValuePrediction::ALL
            .iter()
            .position(|&m| m == value_prediction)
            .expect("mode is in ALL");
        let mut branches = self.branches;
        branches.value_pred_hits = self.vp_hits[mode_index];
        TraceMeta {
            events,
            class_unrolled: self.class_unrolled.clone(),
            class_rolled: self.class_rolled.clone(),
            branches,
            distinct_mem_keys: if remap {
                distinct_mem_keys
            } else {
                self.distinct_mem_keys
            },
            vp_hits: self.vp_hits,
            vp_trained: self.vp_trained,
        }
    }
}

/// The preparation walk as an incremental, chunk-fed builder.
///
/// All walk state that must survive a chunk boundary lives here: the
/// branch predictor, the branch report, and the Section 4.4.1
/// control-dependence bookkeeping (block-instance sequence numbers, the
/// latest instance of every branch, the procedure-invocation stack).
/// Feeding the whole trace as one chunk is exactly the historical
/// [`TraceMeta::build`] walk, so chunked and in-memory preparation are the
/// same code path — bit-identical by construction, asserted across chunk
/// sizes by the `stream_equivalence` suite.
pub(crate) struct MetaBuilder<'a> {
    pcs: &'a ProgramMeta,
    info: &'a StaticInfo,
    inlining: bool,
    shift: u32,
    disambiguation: crate::MemDisambiguation,
    predictor: Box<dyn clfp_predict::BranchPredictor>,
    value_prediction: crate::ValuePrediction,
    /// When set, both realistic value predictors are trained on every def
    /// regardless of the configured mode, so the per-predictor hit bits
    /// (and the [`TraceMeta::vp_hits`] totals) are available to mode
    /// slicing and the multi-config lane walk from a single preparation.
    /// Off by default unless the configured mode itself consumes a hit
    /// bit — single-mode pipelines skip the training cost. The configured
    /// mode only selects which bit becomes [`EV_VALPRED`].
    train_predictors: bool,
    last_predictor: clfp_predict::LastValuePredictor,
    stride_predictor: clfp_predict::StridePredictor,
    vp_hits: [u64; 4],
    branches: BranchReport,
    /// Running non-ignored event counts per unroll setting — the
    /// streaming pipeline's `seq_instrs` fallback when no machines run
    /// (mirrors `EventClass::not_ignored` without retaining the bitmaps).
    not_ignored: [u64; 2],
    branch_seq: Vec<u64>, // 0 = never executed
    branch_proc: Vec<u64>,
    stack: Vec<u64>,
    seq: u64,
    /// Membership bitmap over disambiguated memory keys (grown on
    /// demand; keys are word addresses shifted down, so the bitmap is
    /// 1/32 of the touched address range).
    mem_seen: Vec<u64>,
    distinct_mem_keys: u64,
}

impl<'a> MetaBuilder<'a> {
    /// Creates a builder with empty carried state. `profile` is the
    /// branch profile of the *entire* stream (pass 1 of the streaming
    /// pipeline); it is only consulted for the profile predictor.
    pub fn new(
        program: &Program,
        info: &'a StaticInfo,
        pcs: &'a ProgramMeta,
        config: &AnalysisConfig,
        profile: &BranchProfile,
    ) -> MetaBuilder<'a> {
        MetaBuilder {
            pcs,
            info,
            inlining: config.inlining,
            shift: config.disambiguation_bytes.trailing_zeros(),
            disambiguation: config.disambiguation,
            predictor: config.predictor.build(program, profile),
            value_prediction: config.value_prediction,
            train_predictors: needs_vp_training(config.value_prediction),
            last_predictor: clfp_predict::LastValuePredictor::new(program.text.len()),
            stride_predictor: clfp_predict::StridePredictor::new(program.text.len()),
            vp_hits: [0; 4],
            branches: BranchReport::default(),
            not_ignored: [0; 2],
            branch_seq: vec![0u64; pcs.pcs.len()],
            branch_proc: vec![0u64; pcs.pcs.len()],
            stack: Vec::new(),
            seq: 0,
            mem_seen: Vec::new(),
            distinct_mem_keys: 0,
        }
    }

    /// Processes one chunk of consecutive trace events, appending the
    /// decoded [`EventMeta`] stream and both per-setting classifications
    /// into the caller's buffers (which the streaming pipeline clears and
    /// reuses per chunk; the in-memory path accumulates the whole trace).
    pub fn push_chunk(
        &mut self,
        chunk: &[clfp_vm::TraceEvent],
        events: &mut Vec<EventMeta>,
        class_unrolled: &mut EventClass,
        class_rolled: &mut EventClass,
    ) {
        let _span = clfp_metrics::trace::span("prepare.chunk", "prepare").arg("events", chunk.len());
        self.branches.raw_instrs += chunk.len() as u64;
        events.reserve(chunk.len());
        for event in chunk {
            let meta = &self.pcs.pcs[event.pc as usize];
            if meta.is(PC_BLOCK_START) {
                self.seq += 1;
            }

            let mispred = if meta.is(PC_COND_BRANCH) {
                self.branches.cond_branches += 1;
                if event.taken {
                    self.branches.taken += 1;
                }
                let prediction = self.predictor.predict_and_update(event.pc, event.taken);
                let correct = prediction == event.taken;
                if correct {
                    self.branches.predicted_correctly += 1;
                }
                !correct
            } else if meta.is(PC_COMPUTED_JUMP) {
                self.branches.computed_jumps += 1;
                true
            } else {
                false
            };
            let inline_ignored = self.inlining && meta.is(PC_INLINE_IGNORED);
            let unroll_ignored = inline_ignored || meta.is(PC_UNROLL_IGNORED);
            class_unrolled.push(mispred, unroll_ignored);
            class_rolled.push(mispred, inline_ignored);
            self.not_ignored[0] += !inline_ignored as u64;
            self.not_ignored[1] += !unroll_ignored as u64;

            let cd = resolve_cd_source(
                self.info
                    .deps
                    .rdf_branches(self.info.cfg.block_of_instr(event.pc)),
                &self.branch_seq,
                &self.branch_proc,
                &self.stack,
            );

            let mut flags = 0u8;
            if mispred {
                flags |= EV_MISPRED;
            }
            if meta.is(PC_BRANCH) {
                flags |= EV_BRANCH;
            }
            // The value-prediction mode decides the predicted bit here,
            // and only here for the fused/lane/stream pipelines (the same
            // seam as the mem_key choice below). When training is on,
            // every def-producing event trains every predictor —
            // including ignored events — so the training sequence is
            // unroll-independent, mode-independent, and exactly what the
            // reference pass and a dedicated single-mode builder would
            // replay.
            if meta.def != NO_REG {
                use clfp_predict::ValuePredictor as _;
                self.branches.value_pred_eligible += 1;
                flags |= EV_DEF;
                if self.train_predictors {
                    if self.last_predictor.predict_and_update(event.pc, event.value) {
                        flags |= EV_VP_LAST;
                        self.vp_hits[1] += 1;
                    }
                    if self.stride_predictor.predict_and_update(event.pc, event.value) {
                        flags |= EV_VP_STRIDE;
                        self.vp_hits[2] += 1;
                    }
                }
                self.vp_hits[3] += 1;
                if flags & vp_flag(self.value_prediction) != 0 {
                    self.branches.value_pred_hits += 1;
                    flags |= EV_VALPRED;
                }
            }
            // The disambiguation mode decides the last-write key here, and
            // only here for the fused/lane/stream pipelines: everything
            // downstream consumes `EventMeta::mem_key` opaquely, so all
            // three agree bit-for-bit by construction.
            let mem_key = match self.disambiguation {
                crate::MemDisambiguation::Perfect => event.mem_addr >> self.shift,
                crate::MemDisambiguation::Static => {
                    self.info.alias.scheduler_class(event.pc)
                }
                crate::MemDisambiguation::None => 0,
            };
            if meta.flags & (PC_LOAD | PC_STORE) != 0 {
                let word = (mem_key >> 6) as usize;
                if word >= self.mem_seen.len() {
                    self.mem_seen.resize(word + 1, 0);
                }
                let bit = 1u64 << (mem_key & 63);
                if self.mem_seen[word] & bit == 0 {
                    self.mem_seen[word] |= bit;
                    self.distinct_mem_keys += 1;
                }
            }
            events.push(EventMeta {
                pc: event.pc,
                mem_key,
                cd,
                flags,
            });

            if meta.is(PC_BRANCH) {
                self.branch_seq[event.pc as usize] = self.seq;
                self.branch_proc[event.pc as usize] = self.stack.last().copied().unwrap_or(0);
            }
            if meta.is(PC_CALL) {
                self.stack.push(self.seq + 1);
            } else if meta.is(PC_RET) {
                self.stack.pop();
            }
        }
    }

    /// The branch report over everything pushed so far.
    pub fn branches(&self) -> BranchReport {
        self.branches
    }

    /// Total events pushed so far.
    pub fn raw_instrs(&self) -> u64 {
        self.branches.raw_instrs
    }

    /// Non-ignored events pushed so far, for one unroll setting.
    pub fn not_ignored(&self, unrolling: bool) -> u64 {
        self.not_ignored[unrolling as usize]
    }

    /// Distinct disambiguated memory keys seen in load/store events so
    /// far — the live footprint a last-write table must cover.
    pub fn distinct_mem_keys(&self) -> u64 {
        self.distinct_mem_keys
    }

    /// Hits each value-prediction mode would score on the events pushed
    /// so far, indexed by [`ValuePrediction::ALL`](crate::ValuePrediction::ALL).
    pub fn vp_hits(&self) -> [u64; 4] {
        self.vp_hits
    }

    /// Trains the realistic value predictors on every def even though the
    /// configured mode does not consume their hit bits — required before
    /// the first [`MetaBuilder::push_chunk`] when the resulting metadata
    /// will be mode-sliced or lane-walked across value-prediction modes.
    pub fn force_value_predictor_training(&mut self) {
        self.train_predictors = true;
    }

    /// Whether the realistic value predictors are being trained.
    pub fn vp_trained(&self) -> bool {
        self.train_predictors
    }
}

/// The machine-independent half of `pass::resolve_cd`: picks *which*
/// branch instance (by static PC) is the immediate control dependence, or
/// whether the dependence is inherited through the call stack or dropped
/// (recursion cutoff). The per-machine time/ceiling lookup happens in the
/// machine walk.
fn resolve_cd_source(
    rdf: &[u32],
    branch_seq: &[u64],
    branch_proc: &[u64],
    stack: &[u64],
) -> u32 {
    let proc_seq = stack.last().copied().unwrap_or(0);
    let mut best_seq = 0u64;
    let mut best_pc = CD_NONE;
    for &branch_pc in rdf {
        let seq = branch_seq[branch_pc as usize];
        if seq == 0 {
            continue; // never executed
        }
        let bproc = branch_proc[branch_pc as usize];
        if bproc > proc_seq {
            // Recursion cutoff: drop the dependence entirely.
            return CD_NONE;
        }
        if bproc == proc_seq && (best_pc == CD_NONE || seq > best_seq) {
            best_seq = seq;
            best_pc = branch_pc;
        }
    }
    if best_pc != CD_NONE {
        best_pc
    } else if stack.is_empty() {
        CD_NONE
    } else {
        CD_INHERIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_class_packs_bits() {
        let mut class = EventClass::with_capacity(3);
        for i in 0..130 {
            class.push(i % 3 == 0, i % 5 == 0);
        }
        assert_eq!(class.len(), 130);
        for i in 0..130 {
            assert_eq!(class.mispred(i), i % 3 == 0, "mispred {i}");
            assert_eq!(class.ignored(i), i % 5 == 0, "ignored {i}");
        }
        assert_eq!(class.not_ignored(), 130 - 26);
    }

    #[test]
    fn event_class_from_slices_roundtrips() {
        let mispred = vec![true, false, true, true, false];
        let ignored = vec![false, false, true, false, true];
        let class = EventClass::from_slices(&mispred, &ignored);
        for i in 0..5 {
            assert_eq!(class.mispred(i), mispred[i]);
            assert_eq!(class.ignored(i), ignored[i]);
        }
        assert_eq!(class.not_ignored(), 3);
    }

    #[test]
    fn program_meta_decodes_flags() {
        let program = clfp_isa::assemble(
            r#"
            .text
            main:
                li r8, 2
            loop:
                lw r9, 0x1000(r0)
                sw r9, 0x1004(r0)
                addi r8, r8, -1
                bgt r8, r0, loop
                halt
            "#,
        )
        .unwrap();
        let info = StaticInfo::analyze(&program);
        let meta = ProgramMeta::build(&program, &info, &PassConfig::default());
        assert!(meta.pcs[0].is(PC_BLOCK_START));
        assert!(meta.pcs[1].is(PC_LOAD));
        assert!(meta.pcs[2].is(PC_STORE));
        assert!(meta.pcs[4].is(PC_COND_BRANCH) && meta.pcs[4].is(PC_BRANCH));
        assert_eq!(meta.pcs[0].def, clfp_isa::Reg::new(8).index() as u8);
        assert_eq!(meta.pcs[0].uses[0], NO_REG, "li reads nothing");
        // addi reads r8.
        assert_eq!(meta.pcs[3].uses[0], 8);
        assert_eq!(meta.pcs[3].uses[1], NO_REG);
    }
}
