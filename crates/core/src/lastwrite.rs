//! The memory last-write table.
//!
//! Section 4.4 of the paper: "Since the simulator cannot record the data
//! dependences in a limited scheduling window, it records the time of the
//! most recent write to each register and memory location. A large hash
//! table is used to record writes to memory."
//!
//! This is that hash table: open addressing with linear probing, keyed by
//! word address, storing the cycle of the most recent store. Lookups on a
//! hot path of hundreds of millions of trace events motivated a dedicated
//! structure over `std::collections::HashMap` (the benchmark suite
//! measures the difference).

/// Maps word addresses to the cycle of their most recent write.
#[derive(Clone, Debug)]
pub struct LastWriteTable {
    keys: Vec<u32>,
    values: Vec<u64>,
    len: usize,
    mask: usize,
}

const EMPTY: u32 = u32::MAX;

impl LastWriteTable {
    /// Creates a table with capacity for at least `capacity` entries
    /// before the first grow.
    pub fn with_capacity(capacity: usize) -> LastWriteTable {
        let slots = (capacity.max(16) * 2).next_power_of_two();
        LastWriteTable {
            keys: vec![EMPTY; slots],
            values: vec![0; slots],
            len: 0,
            mask: slots - 1,
        }
    }

    /// Creates an empty table with a small default capacity.
    pub fn new() -> LastWriteTable {
        LastWriteTable::with_capacity(1 << 12)
    }

    /// Number of distinct addresses recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no writes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry while keeping the allocation, so fused and
    /// threaded passes can reuse one table across machine models instead
    /// of reallocating per machine.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    #[inline]
    fn slot(&self, key: u32) -> usize {
        // Fibonacci hashing spreads sequential word addresses well.
        let hash = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (hash >> 32) as usize & self.mask
    }

    /// The last-write cycle for `word_addr`, or 0 if never written.
    #[inline]
    pub fn get(&self, word_addr: u32) -> u64 {
        debug_assert_ne!(word_addr, EMPTY, "sentinel address");
        let mut slot = self.slot(word_addr);
        loop {
            let key = self.keys[slot];
            if key == word_addr {
                return self.values[slot];
            }
            if key == EMPTY {
                return 0;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Records a write to `word_addr` at `cycle`.
    #[inline]
    pub fn set(&mut self, word_addr: u32, cycle: u64) {
        debug_assert_ne!(word_addr, EMPTY, "sentinel address");
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mut slot = self.slot(word_addr);
        loop {
            let key = self.keys[slot];
            if key == word_addr {
                self.values[slot] = cycle;
                return;
            }
            if key == EMPTY {
                self.keys[slot] = word_addr;
                self.values[slot] = cycle;
                self.len += 1;
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_values = std::mem::take(&mut self.values);
        let new_slots = (old_keys.len() * 2).max(32);
        self.keys = vec![EMPTY; new_slots];
        self.values = vec![0; new_slots];
        self.mask = new_slots - 1;
        // Reinsert directly: the doubled table cannot hit the load factor
        // again, so skip `set()`'s check, and every key is distinct, so
        // probing can stop at the first empty slot.
        for (key, value) in old_keys.into_iter().zip(old_values) {
            if key != EMPTY {
                let mut slot = self.slot(key);
                while self.keys[slot] != EMPTY {
                    slot = (slot + 1) & self.mask;
                }
                self.keys[slot] = key;
                self.values[slot] = value;
            }
        }
    }
}

impl Default for LastWriteTable {
    fn default() -> LastWriteTable {
        LastWriteTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_addresses_read_zero() {
        let table = LastWriteTable::new();
        assert_eq!(table.get(123), 0);
        assert!(table.is_empty());
    }

    #[test]
    fn set_then_get() {
        let mut table = LastWriteTable::new();
        table.set(0x1000, 7);
        table.set(0x1001, 9);
        assert_eq!(table.get(0x1000), 7);
        assert_eq!(table.get(0x1001), 9);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn overwrite_updates_in_place() {
        let mut table = LastWriteTable::new();
        table.set(5, 1);
        table.set(5, 99);
        assert_eq!(table.get(5), 99);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut table = LastWriteTable::with_capacity(16);
        for i in 0..10_000u32 {
            table.set(i, (i as u64) * 3);
        }
        assert_eq!(table.len(), 10_000);
        for i in 0..10_000u32 {
            assert_eq!(table.get(i), (i as u64) * 3, "key {i}");
        }
    }

    #[test]
    fn matches_std_hashmap_on_random_ops() {
        use std::collections::HashMap;
        let mut table = LastWriteTable::new();
        let mut reference = HashMap::new();
        let mut state = 0x12345678u64;
        for step in 0..50_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = ((state >> 33) as u32) % 5000;
            if state & 1 == 0 {
                table.set(addr, step);
                reference.insert(addr, step);
            } else {
                assert_eq!(table.get(addr), reference.get(&addr).copied().unwrap_or(0));
            }
        }
        assert_eq!(table.len(), reference.len());
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut table = LastWriteTable::with_capacity(16);
        for i in 0..1000u32 {
            table.set(i, i as u64 + 1);
        }
        let slots = table.keys.len();
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
        assert_eq!(table.keys.len(), slots, "clear must keep the allocation");
        for i in 0..1000u32 {
            assert_eq!(table.get(i), 0);
        }
        // Reusable after clearing.
        table.set(7, 42);
        assert_eq!(table.get(7), 42);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn zero_address_is_valid() {
        let mut table = LastWriteTable::new();
        table.set(0, 42);
        assert_eq!(table.get(0), 42);
    }
}
