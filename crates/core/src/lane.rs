//! The lane-parallel multi-machine scheduling kernel.
//!
//! [`run_fused`](crate::fused::run_fused) walks the pre-decoded
//! [`EventMeta`] stream once per machine × unroll slot — up to 14 walks
//! over an identical event sequence whose per-event work is a max-fold
//! that differs between machines only in the *control* term. This module
//! restructures that loop from machine-major to **event-major lanes**:
//! one walk reads each event once and schedules every requested slot
//! simultaneously, carrying per-lane time vectors (`[u64; L]` per
//! register, per branch PC, per memory key) instead of scalar state.
//!
//! Two properties make the fold branchless across lanes:
//!
//! * Every scheduling quantity is an unsigned max of constraint terms, so
//!   a term that a machine does not impose can be **masked to zero** —
//!   zero never wins an unsigned max against a real constraint. The
//!   machine distinctions (BASE waits on the last branch, SP on the last
//!   misprediction, ORACLE on nothing; CD vs SP-CD read `time` vs
//!   `ceiling`; the CD/SP-CD branch-ordering extras) all become per-lane
//!   constant masks built once at group construction.
//! * Conditional state updates ("only if this lane does not ignore the
//!   event") become select operations `(new & m) | (old & !m)` with the
//!   lane's per-event active mask, derived from the packed two-bit
//!   [`EventClass`] for whichever unroll setting the lane requested.
//!
//! What cannot be masked is monomorphized instead. Lanes are grouped by
//! the one structural feature that changes *which state exists*:
//! machines that consult control dependences (CD, CD-MF, SP-CD,
//! SP-CD-MF) need the per-branch `time`/`ceiling` arrays and the
//! inheritance stack; BASE, SP and ORACLE provably never read them. The
//! kernel is generic over `<const L: usize, const CD: bool, const
//! RENAME: bool, const FETCH: bool>`, so the CD arrays, the
//! anti-dependence tracking (off under register renaming, the default)
//! and the fetch-bandwidth divide are stripped at compile time and the
//! per-lane loops unroll and auto-vectorize over `L ∈ {1, 2, 4, 6, 8}`.
//!
//! The SP machine's misprediction-segment statistics mix integer and
//! floating-point arithmetic and reset state at data-dependent points;
//! they stay scalar, applied per event to the (at most two) SP lanes in
//! a group — the identical operations in the identical order as the
//! scalar cursor, so the resulting [`MispredictionStats`] are
//! bit-identical.
//!
//! The kernel produces [`PassResult`]s only. Metrics recording
//! (`clfp-metrics` sinks) needs per-machine binding-edge attribution and
//! stays on the scalar [`MachineCursor`](crate::fused::MachineCursor);
//! the `lane_equivalence` integration suite holds the lane kernel
//! bit-identical to both the scalar cursor and the original reference
//! pass across machines, workloads, unroll settings, and chunk sizes.

use crate::meta::{
    EventClass, EventMeta, ProgramMeta, CD_INHERIT, CD_NONE, EV_BRANCH, EV_MISPRED, EV_VALPRED,
    NO_REG,
    PC_CALL, PC_LOAD, PC_RET, PC_STORE,
};
use crate::pass::{PassConfig, PassResult};
use crate::stats::MispredictionStats;
use crate::MachineKind;

/// Default last-write-table capacity when no trace summary (or per-trace
/// distinct-key count) is available to size it — the scalar path's
/// historical `1 << 16`.
pub(crate) const DEFAULT_MEM_CAPACITY: usize = 1 << 16;

/// A lane-widened [`LastWriteTable`](crate::LastWriteTable): the same
/// open-addressed Fibonacci-hashed probe sequence, but each slot stores
/// the last-write cycle for all `L` lanes, so one probe serves the whole
/// group where the machine-major walk paid one probe per machine.
struct LaneTable<const L: usize> {
    keys: Vec<u32>,
    values: Vec<[u64; L]>,
    len: usize,
    mask: usize,
}

const EMPTY: u32 = u32::MAX;

impl<const L: usize> LaneTable<L> {
    fn with_capacity(capacity: usize) -> LaneTable<L> {
        let slots = (capacity.max(16) * 2).next_power_of_two();
        LaneTable {
            keys: vec![EMPTY; slots],
            values: vec![[0; L]; slots],
            len: 0,
            mask: slots - 1,
        }
    }

    #[inline]
    fn slot(&self, key: u32) -> usize {
        let hash = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (hash >> 32) as usize & self.mask
    }

    /// The per-lane last-write cycles for `key` ([0; L] if never written).
    #[inline]
    fn get(&self, key: u32) -> [u64; L] {
        debug_assert_ne!(key, EMPTY, "sentinel address");
        let mut slot = self.slot(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                return self.values[slot];
            }
            if k == EMPTY {
                return [0; L];
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Mutable access to `key`'s lane vector, inserting zeros if absent.
    #[inline]
    fn entry(&mut self, key: u32) -> &mut [u64; L] {
        debug_assert_ne!(key, EMPTY, "sentinel address");
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mut slot = self.slot(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                break;
            }
            if k == EMPTY {
                self.keys[slot] = key;
                self.len += 1;
                break;
            }
            slot = (slot + 1) & self.mask;
        }
        &mut self.values[slot]
    }

    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_values = std::mem::take(&mut self.values);
        let new_slots = (old_keys.len() * 2).max(32);
        self.keys = vec![EMPTY; new_slots];
        self.values = vec![[0; L]; new_slots];
        self.mask = new_slots - 1;
        for (key, value) in old_keys.into_iter().zip(old_values) {
            if key != EMPTY {
                let mut slot = self.slot(key);
                while self.keys[slot] != EMPTY {
                    slot = (slot + 1) & self.mask;
                }
                self.keys[slot] = key;
                self.values[slot] = value;
            }
        }
    }
}

/// Scalar SP-segment state for one lane (see
/// [`MispredictionStats`]): the misprediction-distance bookkeeping is
/// data-dependent and partly floating-point, so it runs per tracked lane
/// exactly as the scalar cursor runs it.
struct SegTracker {
    lane: usize,
    count: u64,
    start: u64,
    max: u64,
    stats: MispredictionStats,
}

impl SegTracker {
    fn new(lane: usize) -> SegTracker {
        SegTracker {
            lane,
            count: 0,
            start: 0,
            max: 0,
            stats: MispredictionStats::new(),
        }
    }

    fn finish(mut self) -> MispredictionStats {
        if self.count > 0 {
            let span = self.max.saturating_sub(self.start).max(1);
            self.stats.record_segment(
                self.count.min(u32::MAX as u64) as u32,
                self.count as f64 / span as f64,
            );
        }
        self.stats
    }
}

/// One lane's request: which result slot it fills, which machine it
/// models, which unroll classification it reads, and which per-event flag
/// bit marks a correctly predicted value for it.
///
/// `vp_flag` generalizes the old fixed [`EV_VALPRED`] read: the
/// preparation walk records a hit bit per value predictor
/// ([`EV_DEF`](crate::meta::EV_DEF), `EV_VP_LAST`, `EV_VP_STRIDE`) next
/// to the configured mode's [`EV_VALPRED`], so lanes modeling *different*
/// value-prediction modes can share one walk — each lane just masks a
/// different bit. [`crate::meta::vp_flag`] maps a mode to its bit; 0
/// (mode `Off`) never matches.
#[derive(Copy, Clone, Debug)]
pub(crate) struct LaneSlot {
    pub slot: usize,
    pub kind: MachineKind,
    pub unrolling: bool,
    pub vp_flag: u8,
}

/// How a lane group derives the last-write key from an event — the
/// second half of the multi-config axis. Groups modeling the same
/// disambiguation mode as the prepared events read them directly
/// (`Event`); groups modeling a *coarser* mode over a perfect-keyed
/// preparation remap per event (`Class` is the static alias partition
/// indexed by PC, `Single` collapses memory to one location). The remap
/// is exactly the expression `MetaBuilder` would have evaluated, so the
/// probe sequence — and therefore the schedule — is bit-identical to a
/// dedicated preparation.
#[derive(Clone, Debug)]
pub(crate) enum KeyMode {
    /// Use `EventMeta::mem_key` as prepared.
    Event,
    /// Static alias-analysis class per PC (`MemDisambiguation::Static`).
    Class(Vec<u32>),
    /// All of memory is one location (`MemDisambiguation::None`).
    Single,
}

/// Per-group scheduling mode: the key derivation plus whether stores
/// fold into the last-write table with `max`
/// ([`crate::MemDisambiguation::accumulates`]). Lanes within a group
/// always share these — they are state-shape properties of the shared
/// tables, unlike the per-lane masks.
#[derive(Clone, Debug)]
pub(crate) struct GroupMode {
    pub key_mode: KeyMode,
    pub accumulate: bool,
}

impl GroupMode {
    /// The single-config mode: keys as prepared, accumulation per the
    /// pass configuration.
    pub fn from_config(config: &PassConfig) -> GroupMode {
        GroupMode {
            key_mode: KeyMode::Event,
            accumulate: config.disambiguation.accumulates(),
        }
    }
}

/// Process-wide lane-group id sequence, so trace spans from concurrent
/// walks (and the per-chunk `lane.feed` spans within one walk) can be
/// correlated back to their group in the exported timeline.
static NEXT_GROUP_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl KeyMode {
    /// Short name for trace spans and the pipeline profile.
    fn trace_name(&self) -> &'static str {
        match self {
            KeyMode::Event => "event",
            KeyMode::Class(_) => "class",
            KeyMode::Single => "single",
        }
    }
}

impl LaneSlot {
    /// Compact `slot:MACHINE±u[*vp]` description for trace spans, e.g.
    /// `3:SP-CD-MF+u` or `17:BASE-u*vp`.
    fn describe(&self) -> String {
        format!(
            "{}:{}{}{}",
            self.slot,
            self.kind.name(),
            if self.unrolling { "+u" } else { "-u" },
            if self.vp_flag != 0 { "*vp" } else { "" },
        )
    }
}

#[inline]
fn lane_mask(on: bool) -> u64 {
    if on {
        u64::MAX
    } else {
        0
    }
}

/// A group of up to `L` lanes scheduled together by one monomorphized
/// kernel. `CD` selects the control-dependence state (branch arrays +
/// inheritance stack); `RENAME` strips anti-dependence tracking; `FETCH`
/// strips the fetch-bandwidth divide.
struct GroupCursor<const L: usize, const CD: bool, const RENAME: bool, const FETCH: bool> {
    /// The real lanes (`lanes.len() <= L`; padding lanes replicate lane 0
    /// and their results are discarded).
    lanes: Vec<LaneSlot>,
    fetch_width: u64,
    /// All-ones for lanes reading the *unrolled* ignore classification.
    unroll_sel: [u64; L],
    /// Primary control-term masks. `CD`: `m_a` selects `branch_time`
    /// (CD, CD-MF), `m_b` selects `branch_ceiling` (SP-CD, SP-CD-MF).
    /// `!CD`: `m_a` selects `last_branch` (BASE), `m_b` selects
    /// `last_mispred` (SP); ORACLE masks both to zero.
    m_a: [u64; L],
    m_b: [u64; L],
    /// CD-only branch-ordering extras: CD lanes order all branches after
    /// `last_branch`; SP-CD lanes order mispredicted branches after
    /// `last_mispred`.
    m_ord_lb: [u64; L],
    m_ord_lm: [u64; L],
    /// Per-lane value-prediction hit bit (see [`LaneSlot::vp_flag`]).
    vp_flag: [u8; L],

    /// How this group derives last-write keys (see [`KeyMode`]).
    key_mode: KeyMode,
    /// Stores fold into `mem_time` with `max` under coarse
    /// disambiguation keys ([`crate::MemDisambiguation::accumulates`]).
    mem_accumulate: bool,
    reg_time: [[u64; L]; 32],
    reg_read: [[u64; L]; 32],
    mem_time: LaneTable<L>,
    mem_read: LaneTable<L>,
    branch_time: Vec<[u64; L]>,
    branch_ceiling: Vec<[u64; L]>,
    stack: Vec<([u64; L], [u64; L])>,
    last_branch: [u64; L],
    last_mispred: [u64; L],
    cycles: [u64; L],
    count: [u64; L],
    seg: Vec<SegTracker>,

    /// Trace/profile attribution, maintained only while tracing is on
    /// (`clfp_metrics::trace`): process-wide group id, walk start
    /// timestamp, accumulated busy time, and feed counters.
    group_id: u64,
    walk_start_us: u64,
    busy_ns: u64,
    fed_events: u64,
    fed_chunks: u64,
}

impl<const L: usize, const CD: bool, const RENAME: bool, const FETCH: bool>
    GroupCursor<L, CD, RENAME, FETCH>
{
    fn new(
        lanes: &[LaneSlot],
        text_len: usize,
        config: &PassConfig,
        mem_capacity: usize,
        mode: GroupMode,
    ) -> Self {
        debug_assert!(!lanes.is_empty() && lanes.len() <= L);
        let spec = |l: usize| lanes[l.min(lanes.len() - 1)];
        let mut unroll_sel = [0; L];
        let mut m_a = [0; L];
        let mut m_b = [0; L];
        let mut m_ord_lb = [0; L];
        let mut m_ord_lm = [0; L];
        let mut vp_flag = [0u8; L];
        for l in 0..L {
            let lane = spec(l);
            debug_assert_eq!(lane.kind.uses_control_deps(), CD);
            unroll_sel[l] = lane_mask(lane.unrolling);
            vp_flag[l] = lane.vp_flag;
            if CD {
                m_a[l] = lane_mask(matches!(lane.kind, MachineKind::Cd | MachineKind::CdMf));
                m_b[l] = lane_mask(matches!(lane.kind, MachineKind::SpCd | MachineKind::SpCdMf));
                m_ord_lb[l] = lane_mask(lane.kind == MachineKind::Cd);
                m_ord_lm[l] = lane_mask(lane.kind == MachineKind::SpCd);
            } else {
                m_a[l] = lane_mask(lane.kind == MachineKind::Base);
                m_b[l] = lane_mask(lane.kind == MachineKind::Sp);
            }
        }
        GroupCursor {
            lanes: lanes.to_vec(),
            fetch_width: config.fetch_bandwidth.unwrap_or(1),
            unroll_sel,
            m_a,
            m_b,
            m_ord_lb,
            m_ord_lm,
            vp_flag,
            key_mode: mode.key_mode,
            mem_accumulate: mode.accumulate,
            reg_time: [[0; L]; 32],
            reg_read: [[0; L]; 32],
            mem_time: LaneTable::with_capacity(mem_capacity),
            mem_read: LaneTable::with_capacity(if RENAME { 1 } else { mem_capacity }),
            branch_time: if CD { vec![[0; L]; text_len] } else { Vec::new() },
            branch_ceiling: if CD { vec![[0; L]; text_len] } else { Vec::new() },
            stack: Vec::new(),
            last_branch: [0; L],
            last_mispred: [0; L],
            cycles: [0; L],
            count: [0; L],
            seg: lanes
                .iter()
                .enumerate()
                .filter(|(_, lane)| lane.kind == MachineKind::Sp)
                .map(|(l, _)| SegTracker::new(l))
                .collect(),
            group_id: NEXT_GROUP_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            walk_start_us: 0,
            busy_ns: 0,
            fed_events: 0,
            fed_chunks: 0,
        }
    }

    /// The `(time, ceiling)` lane vectors named by a pre-resolved `cd`
    /// annotation — [`MachineState::cd_ctx`](crate::fused) widened.
    #[inline]
    fn cd_ctx(&self, cd: u32) -> ([u64; L], [u64; L]) {
        match cd {
            CD_NONE => ([0; L], [0; L]),
            CD_INHERIT => self.stack.last().copied().unwrap_or(([0; L], [0; L])),
            pc => (
                self.branch_time[pc as usize],
                self.branch_ceiling[pc as usize],
            ),
        }
    }
}

/// Object-safe handle over one monomorphized lane group, so the
/// scheduler (and the streaming broadcast) can hold a mixed set of
/// groups and feed them chunk by chunk.
pub(crate) trait GroupFeed: Send {
    /// Schedules one chunk of consecutive events. `offset` is the
    /// position of `events[0]` within the classifications, so callers can
    /// feed sub-slices of an in-memory trace against whole-trace
    /// [`EventClass`] bitmaps (the streaming path passes per-chunk
    /// classifications with `offset == 0`).
    fn feed(
        &mut self,
        pcs: &ProgramMeta,
        offset: usize,
        events: &[EventMeta],
        unrolled: &EventClass,
        rolled: &EventClass,
    );

    /// Closes the walk, returning `(request slot, result)` per real lane.
    fn finish(self: Box<Self>) -> Vec<(usize, PassResult)>;
}

impl<const L: usize, const CD: bool, const RENAME: bool, const FETCH: bool> GroupFeed
    for GroupCursor<L, CD, RENAME, FETCH>
{
    fn feed(
        &mut self,
        pcs: &ProgramMeta,
        offset: usize,
        events: &[EventMeta],
        unrolled: &EventClass,
        rolled: &EventClass,
    ) {
        // Attribution is tracing-gated so the untraced hot path pays one
        // relaxed load per ~16K-event chunk and nothing else.
        let feed_start = if clfp_metrics::trace::tracing_enabled() {
            if self.walk_start_us == 0 {
                self.walk_start_us = clfp_metrics::trace::now_monotonic_us().max(1);
            }
            self.fed_chunks += 1;
            self.fed_events += events.len() as u64;
            Some(std::time::Instant::now())
        } else {
            None
        };
        for (j, event) in events.iter().enumerate() {
            let meta = &pcs.pcs[event.pc as usize];
            let is_branch = event.flags & EV_BRANCH != 0;
            let mispredicted = event.flags & EV_MISPRED != 0 && is_branch;

            // Per-lane active mask from the lane's unroll setting. The
            // two settings differ only in the ignore bit, which the
            // preparation walk records for both.
            let igu = 0u64.wrapping_sub(unrolled.ignored(offset + j) as u64);
            let igr = 0u64.wrapping_sub(rolled.ignored(offset + j) as u64);
            let mut am = [0u64; L];
            for (a, &sel) in am.iter_mut().zip(&self.unroll_sel) {
                *a = !((igu & sel) | (igr & !sel));
            }

            let (cd0, cd1) = if CD {
                self.cd_ctx(event.cd)
            } else {
                ([0; L], [0; L])
            };

            // Machine-specific control constraint: two masked primary
            // terms, plus the CD/SP-CD branch-ordering extras. A lane's
            // `ctl` is a don't-care when the lane ignores the event
            // (every consumer of `exec` below is select-masked), so no
            // active gating is needed here.
            let mut ctl = [0u64; L];
            if CD {
                for l in 0..L {
                    ctl[l] = (cd0[l] & self.m_a[l]).max(cd1[l] & self.m_b[l]);
                }
                if is_branch {
                    for (l, c) in ctl.iter_mut().enumerate() {
                        *c = (*c).max(self.last_branch[l] & self.m_ord_lb[l]);
                    }
                    if mispredicted {
                        for (l, c) in ctl.iter_mut().enumerate() {
                            *c = (*c).max(self.last_mispred[l] & self.m_ord_lm[l]);
                        }
                    }
                }
            } else {
                for (l, c) in ctl.iter_mut().enumerate() {
                    *c = (self.last_branch[l] & self.m_a[l]).max(self.last_mispred[l] & self.m_b[l]);
                }
            }
            if FETCH {
                for (l, c) in ctl.iter_mut().enumerate() {
                    *c = (*c).max(self.count[l] / self.fetch_width);
                }
            }

            // True data dependences — identical terms for every lane,
            // read from lane-widened tables (one memory probe per group).
            let mut data = [0u64; L];
            for &reg in &meta.uses {
                if reg == NO_REG {
                    break;
                }
                let rt = &self.reg_time[reg as usize];
                for l in 0..L {
                    data[l] = data[l].max(rt[l]);
                }
            }
            let is_load = meta.is(PC_LOAD);
            let is_store = meta.is(PC_STORE);
            // Resolve the group's last-write key (identical to the
            // prepared key unless this group remaps modes; see
            // [`KeyMode`]). Only memory events probe the tables.
            let mem_key = if is_load || is_store {
                match &self.key_mode {
                    KeyMode::Event => event.mem_key,
                    KeyMode::Class(classes) => classes[event.pc as usize],
                    KeyMode::Single => 0,
                }
            } else {
                0
            };
            if is_load {
                let mt = self.mem_time.get(mem_key);
                for l in 0..L {
                    data[l] = data[l].max(mt[l]);
                }
            }
            if !RENAME {
                if meta.def != NO_REG {
                    let rr = &self.reg_read[meta.def as usize];
                    let rt = &self.reg_time[meta.def as usize];
                    for l in 0..L {
                        data[l] = data[l].max(rr[l]).max(rt[l]);
                    }
                }
                if is_store {
                    let mr = self.mem_read.get(mem_key);
                    let mt = self.mem_time.get(mem_key);
                    for l in 0..L {
                        data[l] = data[l].max(mr[l]).max(mt[l]);
                    }
                }
            }

            let mut exec = [0u64; L];
            let mut done = [0u64; L];
            let latency = meta.latency as u64;
            for l in 0..L {
                exec[l] = data[l].max(ctl[l]) + 1;
                done[l] = exec[l] + latency - 1;
            }

            // State updates, select-masked per lane.
            for (c, &a) in self.count.iter_mut().zip(&am) {
                *c += a & 1;
            }
            for l in 0..L {
                self.cycles[l] = self.cycles[l].max(done[l] & am[l]);
            }
            if meta.def != NO_REG {
                // Value prediction as one more mask: a correctly predicted
                // producer publishes availability 0 instead of `done`,
                // releasing consumers immediately. Each lane masks its own
                // hit bit (`vp_flag`, the configured mode's EV_VALPRED in
                // single-config walks, a per-predictor bit in multi-config
                // walks), keeping the kernel branch-free without another
                // monomorphization axis.
                let rt = &mut self.reg_time[meta.def as usize];
                for l in 0..L {
                    let vpm = 0u64.wrapping_sub(u64::from(event.flags & self.vp_flag[l] != 0));
                    rt[l] = ((done[l] & !vpm) & am[l]) | (rt[l] & !am[l]);
                }
            }
            if is_store {
                let mt = self.mem_time.entry(mem_key);
                if self.mem_accumulate {
                    for l in 0..L {
                        mt[l] = (done[l].max(mt[l]) & am[l]) | (mt[l] & !am[l]);
                    }
                } else {
                    for l in 0..L {
                        mt[l] = (done[l] & am[l]) | (mt[l] & !am[l]);
                    }
                }
            }
            if !RENAME {
                for &reg in &meta.uses {
                    if reg == NO_REG {
                        break;
                    }
                    let rr = &mut self.reg_read[reg as usize];
                    for l in 0..L {
                        rr[l] = rr[l].max(exec[l] & am[l]);
                    }
                }
                if is_load {
                    let mr = self.mem_read.entry(mem_key);
                    for l in 0..L {
                        mr[l] = mr[l].max(exec[l] & am[l]);
                    }
                }
            }

            // Branch trackers.
            if is_branch {
                for l in 0..L {
                    self.last_branch[l] = (exec[l] & am[l]) | (self.last_branch[l] & !am[l]);
                }
                if mispredicted {
                    for l in 0..L {
                        self.last_mispred[l] = (exec[l] & am[l]) | (self.last_mispred[l] & !am[l]);
                    }
                }
                if CD {
                    // A lane that ignores the branch (perfect unrolling
                    // deleted it) inherits the constraint the branch
                    // itself would have waited on.
                    let pc = event.pc as usize;
                    let bt = &mut self.branch_time[pc];
                    for l in 0..L {
                        bt[l] = (exec[l] & am[l]) | (cd0[l] & !am[l]);
                    }
                    let bc = &mut self.branch_ceiling[pc];
                    if mispredicted {
                        for l in 0..L {
                            bc[l] = (exec[l] & am[l]) | (cd1[l] & !am[l]);
                        }
                    } else {
                        *bc = cd1;
                    }
                }
            }
            if CD {
                if meta.is(PC_CALL) {
                    self.stack.push((cd0, cd1));
                } else if meta.is(PC_RET) {
                    self.stack.pop();
                }
            }

            // SP segment statistics (scalar per tracked lane; empty for
            // every group without an SP lane).
            for t in &mut self.seg {
                if am[t.lane] != 0 {
                    t.count += 1;
                    t.max = t.max.max(exec[t.lane]);
                    if mispredicted {
                        let span = t.max.saturating_sub(t.start).max(1);
                        t.stats.record_segment(
                            t.count.min(u32::MAX as u64) as u32,
                            t.count as f64 / span as f64,
                        );
                        t.count = 0;
                        t.start = exec[t.lane];
                        t.max = exec[t.lane];
                    }
                }
            }
        }
        if let Some(t0) = feed_start {
            self.busy_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    fn finish(self: Box<Self>) -> Vec<(usize, PassResult)> {
        // One synthesized summary span per group walk: start = first
        // feed, duration = accumulated busy time (the group may have
        // interleaved with others on one thread, so a plain RAII guard
        // would overcount). This is the per-machine lane attribution the
        // pipeline profile reads back out of the trace log.
        if self.walk_start_us != 0 {
            use clfp_metrics::trace::ArgValue;
            let slots = self
                .lanes
                .iter()
                .map(LaneSlot::describe)
                .collect::<Vec<_>>()
                .join(",");
            clfp_metrics::trace::record_span(
                "lane.group",
                "lane",
                self.walk_start_us,
                self.busy_ns / 1_000,
                vec![
                    ("group", ArgValue::U64(self.group_id)),
                    ("cd", ArgValue::Bool(CD)),
                    ("lanes", ArgValue::U64(self.lanes.len() as u64)),
                    ("width", ArgValue::U64(L as u64)),
                    ("key_mode", ArgValue::Str(self.key_mode.trace_name().to_string())),
                    ("slots", ArgValue::Str(slots)),
                    ("events", ArgValue::U64(self.fed_events)),
                    ("chunks", ArgValue::U64(self.fed_chunks)),
                ],
            );
        }
        let mut stats: Vec<Option<MispredictionStats>> = (0..L).map(|_| None).collect();
        for t in self.seg {
            let lane = t.lane;
            stats[lane] = Some(t.finish());
        }
        self.lanes
            .iter()
            .enumerate()
            .map(|(l, lane)| {
                (
                    lane.slot,
                    PassResult {
                        cycles: self.cycles[l],
                        count: self.count[l],
                        mispred_stats: stats[l].take(),
                    },
                )
            })
            .collect()
    }
}

fn make_group<const CD: bool>(
    lanes: &[LaneSlot],
    text_len: usize,
    config: &PassConfig,
    mem_capacity: usize,
    mode: GroupMode,
) -> Box<dyn GroupFeed> {
    macro_rules! mono {
        ($l:literal) => {
            match (config.rename, config.fetch_bandwidth.is_some()) {
                (true, false) => Box::new(GroupCursor::<$l, CD, true, false>::new(
                    lanes,
                    text_len,
                    config,
                    mem_capacity,
                    mode,
                )) as Box<dyn GroupFeed>,
                (true, true) => Box::new(GroupCursor::<$l, CD, true, true>::new(
                    lanes,
                    text_len,
                    config,
                    mem_capacity,
                    mode,
                )),
                (false, false) => Box::new(GroupCursor::<$l, CD, false, false>::new(
                    lanes,
                    text_len,
                    config,
                    mem_capacity,
                    mode,
                )),
                (false, true) => Box::new(GroupCursor::<$l, CD, false, true>::new(
                    lanes,
                    text_len,
                    config,
                    mem_capacity,
                    mode,
                )),
            }
        };
    }
    match lanes.len() {
        1 => mono!(1),
        2 => mono!(2),
        3 | 4 => mono!(4),
        5 | 6 => mono!(6),
        _ => mono!(8),
    }
}

/// All lane groups for one set of requested machine × unroll slots,
/// fed chunk by chunk and finished into request-ordered results.
///
/// Slots split into at most one CD group and one non-CD group of up to 8
/// lanes each (the full 7-machine × 2-setting request is exactly 8 CD +
/// 6 non-CD lanes); larger requests simply open further groups.
pub(crate) struct LaneScheduler {
    pub(crate) groups: Vec<Box<dyn GroupFeed>>,
    total: usize,
}

impl LaneScheduler {
    pub fn new(
        slots: &[(MachineKind, bool)],
        text_len: usize,
        config: &PassConfig,
        mem_capacity: usize,
    ) -> LaneScheduler {
        let lanes = slots
            .iter()
            .enumerate()
            .map(|(slot, &(kind, unrolling))| LaneSlot {
                slot,
                kind,
                unrolling,
                vp_flag: EV_VALPRED,
            })
            .collect();
        LaneScheduler::with_groups(
            vec![(GroupMode::from_config(config), lanes)],
            slots.len(),
            text_len,
            config,
            mem_capacity,
        )
    }

    /// Builds a scheduler from explicit `(mode, lanes)` groupings — the
    /// multi-config entry point. Each grouping shares one [`GroupMode`]
    /// (its lanes must model the same disambiguation mode, since the
    /// last-write tables are keyed per group), splits into CD and non-CD
    /// cursor groups of up to 8 lanes, and every group walks the same
    /// event stream. `total` is the number of result slots referenced by
    /// the lanes.
    pub fn with_groups(
        specs: Vec<(GroupMode, Vec<LaneSlot>)>,
        total: usize,
        text_len: usize,
        config: &PassConfig,
        mem_capacity: usize,
    ) -> LaneScheduler {
        let mut groups: Vec<Box<dyn GroupFeed>> = Vec::new();
        for (mode, lanes) in specs {
            let (cd_lanes, plain_lanes): (Vec<LaneSlot>, Vec<LaneSlot>) = lanes
                .into_iter()
                .partition(|lane| lane.kind.uses_control_deps());
            for lanes in cd_lanes.chunks(8) {
                groups.push(make_group::<true>(
                    lanes,
                    text_len,
                    config,
                    mem_capacity,
                    mode.clone(),
                ));
            }
            for lanes in plain_lanes.chunks(8) {
                groups.push(make_group::<false>(
                    lanes,
                    text_len,
                    config,
                    mem_capacity,
                    mode.clone(),
                ));
            }
        }
        LaneScheduler { groups, total }
    }

    /// Feeds one chunk to every group.
    pub fn feed(
        &mut self,
        pcs: &ProgramMeta,
        offset: usize,
        events: &[EventMeta],
        unrolled: &EventClass,
        rolled: &EventClass,
    ) {
        for group in &mut self.groups {
            group.feed(pcs, offset, events, unrolled, rolled);
        }
    }

    /// Closes every group, returning results in request-slot order.
    pub fn finish(self) -> Vec<PassResult> {
        let mut out: Vec<Option<PassResult>> = (0..self.total).map(|_| None).collect();
        for group in self.groups {
            for (slot, result) in group.finish() {
                out[slot] = Some(result);
            }
        }
        out.into_iter()
            .map(|result| result.expect("every requested slot has a lane"))
            .collect()
    }
}

/// Events per in-memory feed chunk: ~13 bytes of prepared event data per
/// entry
/// keeps a chunk L2-resident, so when the CD and non-CD groups walk it
/// back to back the second walk reads warm cache — the whole request
/// still makes a single pass over trace-sized memory.
const FEED_CHUNK: usize = 1 << 14;

/// Runs every requested machine × unroll slot over an in-memory prepared
/// trace through the lane kernel, returning results in request order.
///
/// Multiple cores fan the (at most two) groups out over scoped threads,
/// each walking the whole event slice; a single core interleaves the
/// groups chunk by chunk so the event stream is read from memory once.
pub(crate) fn run_lanes(
    pcs: &ProgramMeta,
    events: &[EventMeta],
    unrolled: &EventClass,
    rolled: &EventClass,
    config: &PassConfig,
    slots: &[(MachineKind, bool)],
    mem_capacity: usize,
) -> Vec<PassResult> {
    let sched = LaneScheduler::new(slots, pcs.pcs.len(), config, mem_capacity);
    run_scheduler(sched, pcs, events, unrolled, rolled)
}

/// Drives a prebuilt scheduler over an in-memory event slice: groups fan
/// out over scoped threads when cores allow, otherwise they interleave
/// chunk by chunk so the stream is read from memory once. Shared by the
/// single-config [`run_lanes`] and the multi-config matrix walk.
pub(crate) fn run_scheduler(
    mut sched: LaneScheduler,
    pcs: &ProgramMeta,
    events: &[EventMeta],
    unrolled: &EventClass,
    rolled: &EventClass,
) -> Vec<PassResult> {
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(sched.groups.len());
    if workers > 1 {
        std::thread::scope(|scope| {
            for group in &mut sched.groups {
                scope.spawn(|| group.feed(pcs, 0, events, unrolled, rolled));
            }
        });
    } else {
        let mut base = 0;
        while base < events.len() {
            let end = (base + FEED_CHUNK).min(events.len());
            sched.feed(pcs, base, &events[base..end], unrolled, rolled);
            base = end;
        }
    }
    sched.finish()
}
