use clfp_cfg::StaticInfo;
use clfp_isa::Program;
use clfp_vm::{Trace, Vm, VmOptions};

use crate::fused::run_fused;
use crate::lane::{run_lanes, run_scheduler, GroupMode, KeyMode, LaneScheduler, LaneSlot};
use crate::meta::{vp_flag, EventClass, ProgramMeta, TraceMeta, CD_INHERIT, CD_NONE};
use crate::pass::{run_pass, PassConfig, PassResult, Prepared};
use crate::stats::MispredictionStats;
use crate::{AnalysisConfig, AnalyzeError, MachineKind};

/// The control-dependence source the preparation walk resolved for one
/// dynamic instruction (Section 4.4.1): which controlling-branch instance
/// the CD-honoring machines serialize the instruction after.
///
/// Exposed for the `clfp-verify` static/dynamic cross-checker, which
/// asserts every [`CdSource::Branch`] pc lies in the executed
/// instruction's static reverse-dominance-frontier set.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CdSource {
    /// No controlling branch: control independent within its procedure
    /// invocation at top level, or dropped by the recursion cutoff.
    None,
    /// Inherited from the calling procedure's invocation (the event's
    /// procedure depends on the call site's own control dependence).
    Inherit,
    /// The latest executed instance of this static conditional-branch or
    /// computed-jump pc.
    Branch(u32),
}

/// Parallelism result for one machine.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct MachineResult {
    /// The machine model.
    pub kind: MachineKind,
    /// Critical-path length in cycles.
    pub cycles: u64,
    /// Parallelism: sequential instructions / cycles.
    pub parallelism: f64,
}

/// Full analysis report for one program and configuration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Sequential dynamic instruction count (after inlining/unrolling
    /// removal) — the numerator of every parallelism figure.
    pub seq_instrs: u64,
    /// Raw dynamic instruction count (whole trace).
    pub raw_instrs: u64,
    /// Per-machine results, in the order requested.
    pub results: Vec<MachineResult>,
    /// Branch and prediction statistics (Table 2).
    pub branches: crate::stats::BranchReport,
    /// Misprediction-distance statistics from the SP machine
    /// (Figures 6, 7); present when `SP` was among the analyzed machines.
    pub mispred_stats: Option<MispredictionStats>,
}

impl Report {
    /// The parallelism measured for `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` was not among the configured machines.
    pub fn parallelism(&self, kind: MachineKind) -> f64 {
        self.result(kind)
            .unwrap_or_else(|| panic!("machine {kind} was not analyzed"))
            .parallelism
    }

    /// The result for `kind`, if analyzed.
    pub fn result(&self, kind: MachineKind) -> Option<MachineResult> {
        self.results.iter().copied().find(|r| r.kind == kind)
    }
}

/// The trace-driven limit analyzer.
///
/// Construction runs the static analyses (CFG, control dependence, loops,
/// induction variables) and pre-decodes the per-PC metadata table;
/// [`Analyzer::run`] then captures the measured trace and simulates every
/// configured machine model over it in one fused pass. The paper's
/// profile-based branch predictor is trained on the measured trace itself
/// (the paper profiles "with the same inputs used in the simulations"), so
/// no separate profiling execution is needed.
#[derive(Debug)]
pub struct Analyzer<'a> {
    pub(crate) program: &'a Program,
    pub(crate) info: StaticInfo,
    pub(crate) meta: ProgramMeta,
    pub(crate) config: AnalysisConfig,
}

/// A trace plus everything machine-independent derived from it in a
/// single shared walk: event classification, branch statistics, decoded
/// operands, and resolved control-dependence sources. Produced by
/// [`Analyzer::prepare`]; [`PreparedTrace::report`] runs the machine
/// models over it.
#[derive(Debug)]
pub struct PreparedTrace<'a, 'b> {
    analyzer: &'b Analyzer<'a>,
    /// The configuration this preparation is valid for — the analyzer's
    /// own for [`Analyzer::prepare`], a mode-adjusted copy for
    /// [`PreparedTrace::slice_modes`].
    config: AnalysisConfig,
    meta: TraceMeta,
}

impl<'a> Analyzer<'a> {
    /// Prepares an analyzer: static analysis and per-PC metadata decode.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError`] if the program is structurally unusable.
    pub fn new(program: &'a Program, config: AnalysisConfig) -> Result<Analyzer<'a>, AnalyzeError> {
        if program.text.is_empty() {
            return Err(AnalyzeError::BadProgram("empty text segment".into()));
        }
        if program.validate().is_err() {
            return Err(AnalyzeError::BadProgram(
                "branch or call target out of range".into(),
            ));
        }
        let info = StaticInfo::analyze(program);
        let meta = ProgramMeta::build(program, &info, &PassConfig::from_analysis(&config));
        Ok(Analyzer {
            program,
            info,
            meta,
            config,
        })
    }

    /// The static analysis results (shared with callers that want to
    /// inspect control dependences or loops).
    pub fn static_info(&self) -> &StaticInfo {
        &self.info
    }

    /// Captures the trace and runs every configured machine model.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError`] if the measured execution faults.
    pub fn run(&self) -> Result<Report, AnalyzeError> {
        let mut vm = Vm::new(
            self.program,
            VmOptions {
                mem_words: self.config.mem_words,
            },
        );
        let trace: Trace = vm.trace(self.config.max_instrs)?;
        Ok(self.run_on_trace(&trace))
    }

    /// Runs the machine-independent preparation walk over a trace:
    /// branch-outcome profiling, prediction, inlining/unrolling
    /// classification, operand decode, and dynamic control-dependence
    /// resolution — shared by every machine model and (via
    /// [`PreparedTrace::report_with_unrolling`]) by both unroll settings.
    pub fn prepare<'b>(&'b self, trace: &Trace) -> PreparedTrace<'a, 'b> {
        PreparedTrace {
            analyzer: self,
            config: self.config.clone(),
            meta: TraceMeta::build(self.program, &self.info, &self.meta, &self.config, trace, false),
        }
    }

    /// Like [`Analyzer::prepare`], but trains the realistic value
    /// predictors regardless of the configured value-prediction mode, so
    /// the result can be [sliced](PreparedTrace::slice_modes) or
    /// [lane-walked](PreparedTrace::report_mode_matrix) across every
    /// value-prediction mode. Identical to `prepare` when the configured
    /// mode is `LastValue` or `Stride` (which already train); slightly
    /// slower otherwise (two predictor-table updates per def event).
    pub fn prepare_multimode<'b>(&'b self, trace: &Trace) -> PreparedTrace<'a, 'b> {
        PreparedTrace {
            analyzer: self,
            config: self.config.clone(),
            meta: TraceMeta::build(self.program, &self.info, &self.meta, &self.config, trace, true),
        }
    }

    /// Runs every configured machine model over an existing trace (one
    /// preparation walk, then the fused per-machine passes).
    pub fn run_on_trace(&self, trace: &Trace) -> Report {
        self.prepare(trace).report()
    }

    /// Reference implementation of [`Analyzer::run_on_trace`]: the
    /// original one-machine-at-a-time pass over the raw trace, kept as the
    /// test oracle for the fused path (the `fused_equivalence` suite
    /// asserts bit-for-bit equal reports) and for wall-time comparisons
    /// (`regen --timing`).
    pub fn run_on_trace_reference(&self, trace: &Trace) -> Report {
        let prepared = self.prepare(trace);
        let class = prepared.meta.class(self.config.unrolling);
        let reference = Prepared {
            program: self.program,
            info: &self.info,
            events: trace.events(),
            class,
            pass_config: PassConfig::from_analysis(&self.config),
        };
        let passes = self
            .config
            .machines
            .iter()
            .map(|&kind| run_pass(&reference, kind))
            .collect();
        prepared.assemble(class, passes)
    }

    /// Computes the per-instruction schedule for one machine over a trace:
    /// the cycle at which each dynamic instruction executes (0 for
    /// instructions removed by perfect inlining/unrolling). This is the
    /// paper's Figure 3 view of a machine model.
    pub fn schedule(&self, trace: &Trace, kind: MachineKind) -> Vec<u64> {
        let prepared = self.prepare(trace);
        let reference = Prepared {
            program: self.program,
            info: &self.info,
            events: trace.events(),
            class: prepared.meta.class(self.config.unrolling),
            pass_config: PassConfig::from_analysis(&self.config),
        };
        let mut schedule = Vec::with_capacity(trace.len());
        crate::pass::run_pass_with_schedule(&reference, kind, Some(&mut schedule));
        schedule
    }
}

impl<'a, 'b> PreparedTrace<'a, 'b> {
    /// Runs every configured machine model over the prepared trace.
    pub fn report(&self) -> Report {
        self.report_with_unrolling(self.config.unrolling)
    }

    /// Derives the preparation a fresh [`Analyzer::prepare`] under
    /// (`disambiguation`, `value_prediction`) would produce — without
    /// re-walking the trace. The config-independent core (classification
    /// bitmaps, control-dependence sources, branch profile) is shared;
    /// only the per-event memory key and predicted-value bit are
    /// rewritten, from facts the one preparation walk already recorded.
    /// Bit-identical to the from-scratch preparation (asserted by the
    /// `mode_slices_match_dedicated_preparation` test and the alias /
    /// value-prediction suite gates).
    ///
    /// # Panics
    ///
    /// Panics unless this preparation used `Perfect` disambiguation (the
    /// default) or `disambiguation` equals its mode — coarse memory keys
    /// cannot be refined after the fact.
    pub fn slice_modes(
        &self,
        disambiguation: crate::MemDisambiguation,
        value_prediction: crate::ValuePrediction,
    ) -> PreparedTrace<'a, 'b> {
        let _span = clfp_metrics::trace::span("prepare.slice_modes", "prepare")
            .arg("disambiguation", disambiguation.name())
            .arg("value_prediction", value_prediction.name())
            .arg("events", self.meta.events.len());
        let analyzer = self.analyzer;
        let meta = self.meta.resliced(
            &analyzer.info,
            &analyzer.meta,
            self.config.disambiguation,
            disambiguation,
            value_prediction,
        );
        let config = self
            .config
            .clone()
            .with_disambiguation(disambiguation)
            .with_value_prediction(value_prediction);
        PreparedTrace {
            analyzer,
            config,
            meta,
        }
    }

    /// The resolved control-dependence source of every dynamic
    /// instruction, in trace order (machine-independent; see
    /// [`CdSource`]).
    pub fn cd_sources(&self) -> impl Iterator<Item = CdSource> + '_ {
        self.meta.events.iter().map(|event| match event.cd {
            CD_NONE => CdSource::None,
            CD_INHERIT => CdSource::Inherit,
            pc => CdSource::Branch(pc),
        })
    }

    /// Runs every configured machine over the prepared trace with the
    /// recording metrics sink, returning per-machine execution metrics:
    /// cycle-occupancy histograms, critical-path attribution, and
    /// binding-edge counters (see `clfp-metrics`). The machines run
    /// sequentially — unlike [`PreparedTrace::report`] this path is for
    /// offline diagnosis, not throughput; its results re-derive the
    /// report's cycle and instruction counts exactly (asserted in the
    /// `recording_sink_does_not_perturb_results` test).
    pub fn machine_metrics(&self) -> Vec<(MachineKind, clfp_metrics::MachineMetrics)> {
        self.machine_metrics_with_unrolling(self.config.unrolling)
    }

    /// Like [`PreparedTrace::machine_metrics`], but overriding the
    /// unrolling setting (the metrics analogue of
    /// [`PreparedTrace::report_with_unrolling`]).
    pub fn machine_metrics_with_unrolling(
        &self,
        unrolling: bool,
    ) -> Vec<(MachineKind, clfp_metrics::MachineMetrics)> {
        use clfp_metrics::MetricsCollector;

        let analyzer = self.analyzer;
        let class = self.meta.class(unrolling);
        let pass_config = PassConfig::from_analysis(&self.config);
        let mut state = crate::fused::MachineState::with_mem_capacity(
            analyzer.program.text.len(),
            self.mem_capacity(),
        );
        self.config
            .machines
            .iter()
            .map(|&kind| {
                state.clear();
                let mut collector = MetricsCollector::with_capacity(self.meta.events.len());
                crate::fused::run_machine(
                    &analyzer.meta,
                    &self.meta.events,
                    class,
                    &pass_config,
                    kind,
                    &mut state,
                    &mut collector,
                );
                (kind, collector.finish())
            })
            .collect()
    }

    /// Per-machine execution metrics for every requested (disambiguation,
    /// value-prediction) mode at one unroll setting — the diagnostic
    /// companion of [`PreparedTrace::report_mode_matrix`], which runs the
    /// lane kernel with the null sink and so cannot attribute anything.
    /// Each mode runs the scalar recording path over its
    /// [`PreparedTrace::slice_modes`] slice: metrics collection stays
    /// machine-major (one collector live at a time), and the re-derived
    /// cycle counts are pinned bit-identical to the matrix walk's by the
    /// `mode_matrix_metrics_match_matrix_cycles` test, so the attribution
    /// describes exactly the schedules the matrix reports.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`PreparedTrace::report_mode_matrix`]: a coarse-disambiguation base,
    /// or a realistic value-prediction mode on an untrained preparation.
    pub fn mode_matrix_metrics(
        &self,
        modes: &[(crate::MemDisambiguation, crate::ValuePrediction)],
        unrolling: bool,
    ) -> Vec<Vec<(MachineKind, clfp_metrics::MachineMetrics)>> {
        modes
            .iter()
            .map(|&(disambiguation, value_prediction)| {
                self.slice_modes(disambiguation, value_prediction)
                    .machine_metrics_with_unrolling(unrolling)
            })
            .collect()
    }

    /// Like [`PreparedTrace::report`], but overriding the unrolling
    /// setting. The preparation walk records the ignore classification for
    /// both settings (everything else it computes is unroll-independent),
    /// so Table 4's with/without comparison needs only one prepared trace.
    ///
    /// Runs the lane-parallel kernel: every configured machine is
    /// scheduled in one walk over the event stream (see
    /// the `lane` module). Bit-identical to
    /// [`PreparedTrace::report_with_unrolling_scalar`], which is kept as
    /// the oracle.
    pub fn report_with_unrolling(&self, unrolling: bool) -> Report {
        let analyzer = self.analyzer;
        let class = self.meta.class(unrolling);
        let slots: Vec<(MachineKind, bool)> = self
            .config
            .machines
            .iter()
            .map(|&kind| (kind, unrolling))
            .collect();
        let passes = run_lanes(
            &analyzer.meta,
            &self.meta.events,
            self.meta.class(true),
            self.meta.class(false),
            &PassConfig::from_analysis(&self.config),
            &slots,
            self.mem_capacity(),
        );
        self.assemble(class, passes)
    }

    /// Both unroll settings from one lane-parallel walk: all machine ×
    /// setting slots (up to 14) are scheduled reading each event exactly
    /// once. Returns `(unrolled, rolled)` reports — the benchmark suite's
    /// Table 4 path.
    pub fn report_both(&self) -> (Report, Report) {
        let analyzer = self.analyzer;
        let machines = &self.config.machines;
        let mut slots: Vec<(MachineKind, bool)> = Vec::with_capacity(machines.len() * 2);
        for unrolling in [true, false] {
            slots.extend(machines.iter().map(|&kind| (kind, unrolling)));
        }
        let mut passes = run_lanes(
            &analyzer.meta,
            &self.meta.events,
            self.meta.class(true),
            self.meta.class(false),
            &PassConfig::from_analysis(&self.config),
            &slots,
            self.mem_capacity(),
        );
        let rolled_passes = passes.split_off(machines.len());
        (
            self.assemble(self.meta.class(true), passes),
            self.assemble(self.meta.class(false), rolled_passes),
        )
    }

    /// The full mode × machine × unroll table from **one** walk over the
    /// prepared events: every requested (disambiguation, value-prediction)
    /// mode contributes its machine × unroll lanes to the same lane
    /// scheduler, value-prediction modes as per-lane hit-bit
    /// masks and disambiguation modes as per-group key remaps — the same
    /// masking trick the kernel already uses for unroll settings, extended
    /// to the speculation axes. Returns `(unrolled, rolled)` report pairs
    /// in `modes` order, each bit-identical to preparing and reporting
    /// under that mode from scratch (asserted by the
    /// `mode_matrix_matches_slices` test and the suite gates).
    ///
    /// # Panics
    ///
    /// Panics unless this preparation used `Perfect` disambiguation (the
    /// default) or every requested mode matches its disambiguation mode.
    pub fn report_mode_matrix(
        &self,
        modes: &[(crate::MemDisambiguation, crate::ValuePrediction)],
    ) -> Vec<(Report, Report)> {
        let analyzer = self.analyzer;
        let machines = &self.config.machines;
        let per_mode = machines.len() * 2;
        let mut class_table: Option<Vec<u32>> = None;
        let mut specs: Vec<(GroupMode, Vec<LaneSlot>)> = Vec::with_capacity(modes.len());
        for (index, &(disambiguation, value_prediction)) in modes.iter().enumerate() {
            assert!(
                self.config.disambiguation == crate::MemDisambiguation::Perfect
                    || disambiguation == self.config.disambiguation,
                "mode matrix needs a perfect-disambiguation base (have {}, want {})",
                self.config.disambiguation.name(),
                disambiguation.name(),
            );
            assert!(
                self.meta.vp_trained || !crate::meta::needs_vp_training(value_prediction),
                "mode matrix lane for {} needs a base preparation that trained the value \
                 predictors (use Analyzer::prepare_multimode)",
                value_prediction.name(),
            );
            let key_mode = if disambiguation == self.config.disambiguation {
                KeyMode::Event
            } else {
                match disambiguation {
                    crate::MemDisambiguation::Perfect => KeyMode::Event,
                    crate::MemDisambiguation::Static => KeyMode::Class(
                        class_table
                            .get_or_insert_with(|| {
                                (0..analyzer.program.text.len())
                                    .map(|pc| analyzer.info.alias.scheduler_class(pc as u32))
                                    .collect()
                            })
                            .clone(),
                    ),
                    crate::MemDisambiguation::None => KeyMode::Single,
                }
            };
            let hit_flag = vp_flag(value_prediction);
            let mut lanes = Vec::with_capacity(per_mode);
            for (setting, unrolling) in [true, false].into_iter().enumerate() {
                for (k, &kind) in machines.iter().enumerate() {
                    lanes.push(LaneSlot {
                        slot: index * per_mode + setting * machines.len() + k,
                        kind,
                        unrolling,
                        vp_flag: hit_flag,
                    });
                }
            }
            specs.push((
                GroupMode {
                    key_mode,
                    accumulate: disambiguation.accumulates(),
                },
                lanes,
            ));
        }
        let sched = LaneScheduler::with_groups(
            specs,
            modes.len() * per_mode,
            analyzer.program.text.len(),
            &PassConfig::from_analysis(&self.config),
            self.mem_capacity(),
        );
        let mut passes = run_scheduler(
            sched,
            &analyzer.meta,
            &self.meta.events,
            self.meta.class(true),
            self.meta.class(false),
        )
        .into_iter();
        modes
            .iter()
            .map(|&(_, value_prediction)| {
                let mode_index = crate::ValuePrediction::ALL
                    .iter()
                    .position(|&m| m == value_prediction)
                    .expect("mode is in ALL");
                let mut branches = self.meta.branches;
                branches.value_pred_hits = self.meta.vp_hits[mode_index];
                let unrolled_passes: Vec<PassResult> =
                    passes.by_ref().take(machines.len()).collect();
                let rolled_passes: Vec<PassResult> =
                    passes.by_ref().take(machines.len()).collect();
                let report_for = |class: &EventClass, mode_passes: Vec<PassResult>| {
                    assemble_report(
                        machines,
                        mode_passes,
                        class.not_ignored(),
                        class.len() as u64,
                        branches,
                    )
                };
                (
                    report_for(self.meta.class(true), unrolled_passes),
                    report_for(self.meta.class(false), rolled_passes),
                )
            })
            .collect()
    }

    /// The scalar machine-major fused path — one cursor per machine, N
    /// walks over the events. Kept as the wall-time baseline and as an
    /// oracle for the lane kernel (the `lane_equivalence` suite asserts
    /// bit-identical reports).
    pub fn report_with_unrolling_scalar(&self, unrolling: bool) -> Report {
        let analyzer = self.analyzer;
        let class = self.meta.class(unrolling);
        let passes = run_fused(
            &analyzer.meta,
            &self.meta.events,
            class,
            &PassConfig::from_analysis(&self.config),
            &self.config.machines,
            self.mem_capacity(),
        );
        self.assemble(class, passes)
    }

    /// Last-write-table sizing hint: the trace's measured distinct
    /// memory-key count (clamped below by the tables' minimum).
    fn mem_capacity(&self) -> usize {
        self.meta.distinct_mem_keys.min(1 << 28) as usize
    }

    /// Folds per-machine pass results into a [`Report`].
    fn assemble(&self, class: &EventClass, passes: Vec<PassResult>) -> Report {
        assemble_report(
            &self.config.machines,
            passes,
            class.not_ignored(),
            class.len() as u64,
            self.meta.branches,
        )
    }
}

/// Folds per-machine pass results into a [`Report`] — shared between the
/// in-memory path ([`PreparedTrace`]) and the streaming path
/// (`Analyzer::run_streamed`), so both produce reports through identical
/// arithmetic.
pub(crate) fn assemble_report(
    machines: &[MachineKind],
    passes: Vec<PassResult>,
    not_ignored: u64,
    raw_instrs: u64,
    branches: crate::stats::BranchReport,
) -> Report {
    let mut results = Vec::with_capacity(passes.len());
    let mut mispred_stats = None;
    let mut seq_instrs = not_ignored;
    for (&kind, pass) in machines.iter().zip(passes) {
        seq_instrs = pass.count;
        let parallelism = if pass.cycles == 0 {
            1.0
        } else {
            pass.count as f64 / pass.cycles as f64
        };
        results.push(MachineResult {
            kind,
            cycles: pass.cycles,
            parallelism,
        });
        if let Some(stats) = pass.mispred_stats {
            mispred_stats = Some(stats);
        }
    }

    Report {
        seq_instrs,
        raw_instrs,
        results,
        branches,
        mispred_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredictorChoice;
    use clfp_lang::compile;

    fn analyze(source: &str, config: AnalysisConfig) -> Report {
        let program = compile(source).unwrap();
        Analyzer::new(&program, config).unwrap().run().unwrap()
    }

    const LOOPY: &str = r#"
        var data: int[64];
        fn main() -> int {
            var seed: int = 12345;
            for (var i: int = 0; i < 64; i = i + 1) {
                seed = seed * 1103515245 + 12345;
                data[i] = seed % 100;
            }
            var s: int = 0;
            for (var i: int = 0; i < 64; i = i + 1) {
                if (data[i] > 50) { s = s + data[i]; }
            }
            return s;
        }
    "#;

    #[test]
    fn machine_hierarchy_on_compiled_code() {
        let report = analyze(LOOPY, AnalysisConfig::quick());
        for kind in MachineKind::ALL {
            for &weaker in kind.dominates() {
                assert!(
                    report.parallelism(weaker) <= report.parallelism(kind) + 1e-9,
                    "{weaker} > {kind}: {} vs {}",
                    report.parallelism(weaker),
                    report.parallelism(kind)
                );
            }
        }
        // Base should be modest, oracle substantially higher.
        assert!(report.parallelism(MachineKind::Base) >= 1.0);
        assert!(report.parallelism(MachineKind::Oracle) > report.parallelism(MachineKind::Base));
    }

    #[test]
    fn branch_report_is_populated() {
        let report = analyze(LOOPY, AnalysisConfig::quick());
        assert!(report.branches.cond_branches > 60);
        assert!(report.branches.prediction_rate() > 50.0);
        assert!(report.branches.instrs_between_branches() > 1.0);
        assert!(report.raw_instrs > report.seq_instrs);
    }

    #[test]
    fn mispred_stats_present_when_sp_runs() {
        let report = analyze(LOOPY, AnalysisConfig::quick());
        assert!(report.mispred_stats.is_some());
        let only_oracle =
            AnalysisConfig::quick().with_machines(&[MachineKind::Oracle]);
        let report = analyze(LOOPY, only_oracle);
        assert!(report.mispred_stats.is_none());
    }

    #[test]
    fn unrolling_changes_results() {
        let on = analyze(LOOPY, AnalysisConfig::quick().with_unrolling(true));
        let off = analyze(LOOPY, AnalysisConfig::quick().with_unrolling(false));
        assert!(on.seq_instrs < off.seq_instrs);
    }

    #[test]
    fn predictor_choice_affects_sp() {
        let profile = analyze(LOOPY, AnalysisConfig::quick());
        let always = analyze(
            LOOPY,
            AnalysisConfig::quick().with_predictor(PredictorChoice::AlwaysTaken),
        );
        // The profile predictor is at least as accurate as always-taken.
        assert!(
            profile.branches.prediction_rate() >= always.branches.prediction_rate() - 1e-9
        );
    }

    #[test]
    fn oracle_equals_sp_family_upper_bound() {
        let report = analyze(LOOPY, AnalysisConfig::quick());
        let oracle = report.parallelism(MachineKind::Oracle);
        for kind in MachineKind::ALL {
            assert!(report.parallelism(kind) <= oracle + 1e-9);
        }
    }

    #[test]
    fn fetch_bandwidth_one_serializes_completely() {
        let program = compile(LOOPY).unwrap();
        let config = AnalysisConfig::quick()
            .with_machines(&[MachineKind::Oracle])
            .with_fetch_bandwidth(1);
        let report = Analyzer::new(&program, config).unwrap().run().unwrap();
        // One instruction per cycle: even ORACLE degenerates to sequential
        // execution (parallelism ~1).
        let result = report.result(MachineKind::Oracle).unwrap();
        assert_eq!(result.cycles, report.seq_instrs);
    }

    #[test]
    fn fetch_bandwidth_is_monotone() {
        let program = compile(LOOPY).unwrap();
        let run = |width: Option<u64>| {
            let mut config = AnalysisConfig::quick().with_machines(&[MachineKind::Oracle]);
            config.fetch_bandwidth = width;
            Analyzer::new(&program, config)
                .unwrap()
                .run()
                .unwrap()
                .parallelism(MachineKind::Oracle)
        };
        let narrow = run(Some(4));
        let wide = run(Some(64));
        let unlimited = run(None);
        assert!(narrow <= wide + 1e-9, "{narrow} vs {wide}");
        assert!(wide <= unlimited + 1e-9, "{wide} vs {unlimited}");
        assert!(narrow <= 4.0 + 1e-9, "width-4 front end caps IPC at 4");
    }

    #[test]
    fn coarser_disambiguation_never_helps() {
        let program = compile(LOOPY).unwrap();
        let run = |bytes: u32| {
            let config = AnalysisConfig::quick()
                .with_machines(&[MachineKind::Oracle, MachineKind::SpCdMf])
                .with_disambiguation_bytes(bytes);
            Analyzer::new(&program, config).unwrap().run().unwrap()
        };
        let word = run(4);
        let line = run(64);
        for kind in [MachineKind::Oracle, MachineKind::SpCdMf] {
            assert!(
                line.result(kind).unwrap().cycles >= word.result(kind).unwrap().cycles,
                "{kind}: coarser granularity shortened the critical path"
            );
        }
        // On this array-heavy program, 64-byte blocks must actually create
        // false dependences.
        assert!(
            line.result(MachineKind::Oracle).unwrap().cycles
                > word.result(MachineKind::Oracle).unwrap().cycles
        );
    }

    #[test]
    fn disabling_renaming_enforces_false_dependences() {
        let program = compile(LOOPY).unwrap();
        let renamed = Analyzer::new(
            &program,
            AnalysisConfig::quick().with_machines(&[MachineKind::Oracle]),
        )
        .unwrap()
        .run()
        .unwrap();
        let unrenamed = Analyzer::new(
            &program,
            AnalysisConfig::quick()
                .with_machines(&[MachineKind::Oracle])
                .with_rename(false),
        )
        .unwrap()
        .run()
        .unwrap();
        // Reusing the same registers serially chains the whole program.
        assert!(
            unrenamed.parallelism(MachineKind::Oracle)
                < renamed.parallelism(MachineKind::Oracle) / 2.0,
            "renamed {:.1} vs unrenamed {:.1}",
            renamed.parallelism(MachineKind::Oracle),
            unrenamed.parallelism(MachineKind::Oracle)
        );
    }

    #[test]
    fn latencies_stretch_the_critical_path() {
        let program = compile(LOOPY).unwrap();
        let unit = Analyzer::new(
            &program,
            AnalysisConfig::quick().with_machines(&[MachineKind::Oracle]),
        )
        .unwrap()
        .run()
        .unwrap();
        let slow = Analyzer::new(
            &program,
            AnalysisConfig::quick()
                .with_machines(&[MachineKind::Oracle])
                .with_latency(crate::Latencies {
                    load: 3,
                    mul_div: 6,
                    other: 1,
                }),
        )
        .unwrap()
        .run()
        .unwrap();
        let unit_cycles = unit.result(MachineKind::Oracle).unwrap().cycles;
        let slow_cycles = slow.result(MachineKind::Oracle).unwrap().cycles;
        assert!(slow_cycles > unit_cycles);
        // And bounded: at most 6x the unit-latency path.
        assert!(slow_cycles <= unit_cycles * 6);
    }

    #[test]
    fn rejects_empty_program() {
        let program = Program::new();
        let err = Analyzer::new(&program, AnalysisConfig::quick()).unwrap_err();
        assert!(matches!(err, AnalyzeError::BadProgram(_)));
    }

    #[test]
    fn result_lookup() {
        let report = analyze(LOOPY, AnalysisConfig::quick());
        assert!(report.result(MachineKind::Cd).is_some());
        let restricted = analyze(
            LOOPY,
            AnalysisConfig::quick().with_machines(&[MachineKind::Base]),
        );
        assert!(restricted.result(MachineKind::Oracle).is_none());
    }

    #[test]
    fn cd_sources_cover_every_event() {
        let program = compile(LOOPY).unwrap();
        let analyzer = Analyzer::new(&program, AnalysisConfig::quick()).unwrap();
        let mut vm = clfp_vm::Vm::new(
            &program,
            VmOptions {
                mem_words: analyzer.config.mem_words,
            },
        );
        let trace = vm.trace(analyzer.config.max_instrs).unwrap();
        let prepared = analyzer.prepare(&trace);
        let sources: Vec<CdSource> = prepared.cd_sources().collect();
        assert_eq!(sources.len(), trace.len());
        // The loopy program must resolve at least one in-procedure branch
        // dependence, and every resolved pc must actually be a branch.
        assert!(sources.iter().any(|s| matches!(s, CdSource::Branch(_))));
        for source in &sources {
            if let CdSource::Branch(pc) = source {
                let instr = program.text[*pc as usize];
                assert!(instr.is_cond_branch() || instr.is_computed_jump());
            }
        }
    }

    #[test]
    fn static_disambiguation_agrees_across_pipelines() {
        use crate::MemDisambiguation;
        let program = compile(LOOPY).unwrap();
        for mode in [MemDisambiguation::Static, MemDisambiguation::None] {
            let config = AnalysisConfig::quick().with_disambiguation(mode);
            let analyzer = Analyzer::new(&program, config).unwrap();
            let mut vm = clfp_vm::Vm::new(
                &program,
                VmOptions {
                    mem_words: analyzer.config.mem_words,
                },
            );
            let trace = vm.trace(analyzer.config.max_instrs).unwrap();
            let lane = analyzer.run_on_trace(&trace);
            let scalar = analyzer
                .prepare(&trace)
                .report_with_unrolling_scalar(analyzer.config.unrolling);
            let reference = analyzer.run_on_trace_reference(&trace);
            let streamed = analyzer
                .run_streamed(crate::StreamOptions {
                    chunk_events: 4096,
                    machine_threads: 0,
                    par_threshold_events: 0,
                })
                .unwrap();
            for report in [&scalar, &reference, &streamed.unrolled] {
                assert_eq!(lane.seq_instrs, report.seq_instrs, "{mode:?}");
                for (a, b) in lane.results.iter().zip(&report.results) {
                    assert_eq!(a.kind, b.kind, "{mode:?}");
                    assert_eq!(a.cycles, b.cycles, "{mode:?} {:?}", a.kind);
                }
            }
        }
    }

    #[test]
    fn value_prediction_agrees_across_pipelines() {
        use crate::ValuePrediction;
        let program = compile(LOOPY).unwrap();
        for mode in [
            ValuePrediction::LastValue,
            ValuePrediction::Stride,
            ValuePrediction::Perfect,
        ] {
            let config = AnalysisConfig::quick().with_value_prediction(mode);
            let analyzer = Analyzer::new(&program, config).unwrap();
            let mut vm = clfp_vm::Vm::new(
                &program,
                VmOptions {
                    mem_words: analyzer.config.mem_words,
                },
            );
            let trace = vm.trace(analyzer.config.max_instrs).unwrap();
            let lane = analyzer.run_on_trace(&trace);
            let scalar = analyzer
                .prepare(&trace)
                .report_with_unrolling_scalar(analyzer.config.unrolling);
            let reference = analyzer.run_on_trace_reference(&trace);
            let streamed = analyzer
                .run_streamed(crate::StreamOptions {
                    chunk_events: 4096,
                    machine_threads: 0,
                    par_threshold_events: 0,
                })
                .unwrap();
            for report in [&scalar, &reference, &streamed.unrolled] {
                assert_eq!(lane.seq_instrs, report.seq_instrs, "{mode:?}");
                for (a, b) in lane.results.iter().zip(&report.results) {
                    assert_eq!(a.kind, b.kind, "{mode:?}");
                    assert_eq!(a.cycles, b.cycles, "{mode:?} {:?}", a.kind);
                }
            }
        }
    }

    // The value-prediction ordering is also a theorem: the correct sets
    // nest (off = ∅ ⊆ last-value ⊆ stride-hybrid ⊆ perfect = all defs)
    // and a correctly predicted producer only ever *lowers* the published
    // availability time, so under monotone max-folds
    // `perfect <= stride <= last-value <= off` in cycles, pointwise.
    #[test]
    fn weaker_value_prediction_never_helps() {
        use crate::ValuePrediction;
        let program = compile(LOOPY).unwrap();
        let run = |mode: ValuePrediction| {
            let config = AnalysisConfig::quick()
                .with_machines(&[MachineKind::Base, MachineKind::Sp, MachineKind::Oracle])
                .with_value_prediction(mode);
            Analyzer::new(&program, config).unwrap().run().unwrap()
        };
        let off = run(ValuePrediction::Off);
        let last = run(ValuePrediction::LastValue);
        let stride = run(ValuePrediction::Stride);
        let perfect = run(ValuePrediction::Perfect);
        for kind in [MachineKind::Base, MachineKind::Sp, MachineKind::Oracle] {
            let o = off.result(kind).unwrap().cycles;
            let l = last.result(kind).unwrap().cycles;
            let s = stride.result(kind).unwrap().cycles;
            let p = perfect.result(kind).unwrap().cycles;
            assert!(l <= o, "{kind}: last-value lost to off ({l} vs {o})");
            assert!(s <= l, "{kind}: stride lost to last-value ({s} vs {l})");
            assert!(p <= s, "{kind}: perfect lost to stride ({p} vs {s})");
        }
        // Strict separation on a hand-built chain: an induction chain a
        // stride predictor follows but last-value misses, behind a chain
        // of irregular values only the oracle predicts.
        let program = clfp_isa::assemble(
            r#"
            .text
            main:
                li r8, 0
                li r9, 99
            loop:
                addi r8, r8, 1     # stride-predictable chain
                mul r10, r8, r8    # irregular: only Perfect breaks it
                add r11, r11, r10
                bgt r9, r8, loop
                halt
            "#,
        )
        .unwrap();
        let run = |mode: ValuePrediction| {
            let config = AnalysisConfig::quick()
                .with_machines(&[MachineKind::Base])
                .with_unrolling(false)
                .with_value_prediction(mode);
            Analyzer::new(&program, config).unwrap().run().unwrap()
        };
        let o = run(ValuePrediction::Off).result(MachineKind::Base).unwrap().cycles;
        let s = run(ValuePrediction::Stride)
            .result(MachineKind::Base)
            .unwrap()
            .cycles;
        let p = run(ValuePrediction::Perfect)
            .result(MachineKind::Base)
            .unwrap()
            .cycles;
        assert!(s < o, "stride should break the induction chain ({s} vs {o})");
        assert!(p < s, "perfect should break the irregular chain ({p} vs {s})");
    }

    // Monotonicity is a theorem, not a trend: coarse modes fold stores
    // into the last-write table with a running max
    // (`MemDisambiguation::accumulates`), so refining the key partition
    // can only remove constraints. `perfect <= static <= none` in
    // cycles, pointwise on every machine.
    #[test]
    fn weaker_disambiguation_never_helps() {
        use crate::MemDisambiguation;
        let program = compile(LOOPY).unwrap();
        let run = |mode: MemDisambiguation| {
            let config = AnalysisConfig::quick()
                .with_machines(&[MachineKind::Oracle, MachineKind::SpCdMf])
                .with_disambiguation(mode);
            Analyzer::new(&program, config).unwrap().run().unwrap()
        };
        let perfect = run(MemDisambiguation::Perfect);
        let stat = run(MemDisambiguation::Static);
        let none = run(MemDisambiguation::None);
        for kind in [MachineKind::Oracle, MachineKind::SpCdMf] {
            let p = perfect.result(kind).unwrap().cycles;
            let s = stat.result(kind).unwrap().cycles;
            let n = none.result(kind).unwrap().cycles;
            assert!(p <= s, "{kind}: static beat the oracle ({p} vs {s})");
            assert!(s <= n, "{kind}: no disambiguation beat static ({s} vs {n})");
        }
        // Strict separation needs disjoint global chains that frame
        // traffic doesn't drown out: `a`'s serial region chain slows
        // Static past the oracle, while `b`'s load only serializes when
        // all of memory is one location.
        let program = clfp_isa::assemble(
            r#"
            .data
            a: .space 64
            b: .space 64
            .text
            main:
                li r8, 1
                sw r8, 0x1000(r0)  # a[0]
                lw r9, 0x1004(r0)  # a[1]: independent only under Perfect
                sw r9, 0x1008(r0)  # a[2]: extends the region chain
                lw r10, 0x1044(r0) # b[1]: serializes only under None
                add r11, r10, r10
                halt
            "#,
        )
        .unwrap();
        let run = |mode: MemDisambiguation| {
            let config = AnalysisConfig::quick()
                .with_machines(&[MachineKind::Oracle])
                .with_disambiguation(mode);
            Analyzer::new(&program, config).unwrap().run().unwrap()
        };
        let p = run(MemDisambiguation::Perfect)
            .result(MachineKind::Oracle)
            .unwrap()
            .cycles;
        let s = run(MemDisambiguation::Static)
            .result(MachineKind::Oracle)
            .unwrap()
            .cycles;
        let n = run(MemDisambiguation::None)
            .result(MachineKind::Oracle)
            .unwrap()
            .cycles;
        assert!(p < s, "static should serialize some oracle parallelism ({p} vs {s})");
        assert!(s < n, "static should beat a single-location memory ({s} vs {n})");
    }

    // Mode slicing is a refactoring of preparation, not an approximation:
    // a slice of one shared (perfect-base) preparation must be
    // indistinguishable from preparing from scratch under the mode —
    // reports, branch statistics, and misprediction stats all included.
    #[test]
    fn mode_slices_match_dedicated_preparation() {
        use crate::{MemDisambiguation, ValuePrediction};
        let program = compile(LOOPY).unwrap();
        let base_config = AnalysisConfig::quick();
        let analyzer = Analyzer::new(&program, base_config.clone()).unwrap();
        let mut vm = clfp_vm::Vm::new(
            &program,
            VmOptions {
                mem_words: analyzer.config.mem_words,
            },
        );
        let trace = vm.trace(analyzer.config.max_instrs).unwrap();
        let prepared = analyzer.prepare_multimode(&trace);
        for dis in MemDisambiguation::ALL {
            for vp in ValuePrediction::ALL {
                let slice = prepared.slice_modes(dis, vp);
                let (slice_unrolled, slice_rolled) = slice.report_both();
                let config = base_config
                    .clone()
                    .with_disambiguation(dis)
                    .with_value_prediction(vp);
                let dedicated = Analyzer::new(&program, config).unwrap();
                let dedicated_prep = dedicated.prepare(&trace);
                let (full_unrolled, full_rolled) = dedicated_prep.report_both();
                let scalar = dedicated_prep.report_with_unrolling_scalar(true);
                for (got, want) in [
                    (&slice_unrolled, &full_unrolled),
                    (&slice_rolled, &full_rolled),
                    (&slice_unrolled, &scalar),
                ] {
                    assert_eq!(got.seq_instrs, want.seq_instrs, "{dis:?}/{vp:?}");
                    assert_eq!(got.raw_instrs, want.raw_instrs, "{dis:?}/{vp:?}");
                    assert_eq!(got.branches, want.branches, "{dis:?}/{vp:?}");
                    assert_eq!(got.mispred_stats, want.mispred_stats, "{dis:?}/{vp:?}");
                    for (a, b) in got.results.iter().zip(&want.results) {
                        assert_eq!(a.kind, b.kind, "{dis:?}/{vp:?}");
                        assert_eq!(a.cycles, b.cycles, "{dis:?}/{vp:?} {:?}", a.kind);
                    }
                }
            }
        }
    }

    // The one-walk mode matrix is the same arithmetic as per-mode slices
    // (and therefore as dedicated preparations — see
    // `mode_slices_match_dedicated_preparation`), just scheduled in one
    // pass: every (mode, machine, unroll) cell must agree exactly.
    #[test]
    fn mode_matrix_matches_slices() {
        use crate::{MemDisambiguation, ValuePrediction};
        let program = compile(LOOPY).unwrap();
        let analyzer = Analyzer::new(&program, AnalysisConfig::quick()).unwrap();
        let mut vm = clfp_vm::Vm::new(
            &program,
            VmOptions {
                mem_words: analyzer.config.mem_words,
            },
        );
        let trace = vm.trace(analyzer.config.max_instrs).unwrap();
        let prepared = analyzer.prepare_multimode(&trace);
        let mut modes = Vec::new();
        for dis in MemDisambiguation::ALL {
            for vp in ValuePrediction::ALL {
                modes.push((dis, vp));
            }
        }
        let matrix = prepared.report_mode_matrix(&modes);
        assert_eq!(matrix.len(), modes.len());
        for (&(dis, vp), (mat_unrolled, mat_rolled)) in modes.iter().zip(&matrix) {
            let slice = prepared.slice_modes(dis, vp);
            let (slice_unrolled, slice_rolled) = slice.report_both();
            for (got, want) in [(mat_unrolled, &slice_unrolled), (mat_rolled, &slice_rolled)] {
                assert_eq!(got.seq_instrs, want.seq_instrs, "{dis:?}/{vp:?}");
                assert_eq!(got.raw_instrs, want.raw_instrs, "{dis:?}/{vp:?}");
                assert_eq!(got.branches, want.branches, "{dis:?}/{vp:?}");
                assert_eq!(got.mispred_stats, want.mispred_stats, "{dis:?}/{vp:?}");
                for (a, b) in got.results.iter().zip(&want.results) {
                    assert_eq!(a.kind, b.kind, "{dis:?}/{vp:?}");
                    assert_eq!(a.cycles, b.cycles, "{dis:?}/{vp:?} {:?}", a.kind);
                }
            }
        }
    }

    // The matrix metrics path (scalar recording sink over per-mode
    // slices) must describe exactly the schedules the one-walk lane
    // matrix reports: same machines, same cycle and instruction counts,
    // for every mode cell — otherwise the attribution tables would
    // diagnose a schedule nobody ran.
    #[test]
    fn mode_matrix_metrics_match_matrix_cycles() {
        use crate::{MemDisambiguation, ValuePrediction};
        let program = compile(LOOPY).unwrap();
        let analyzer = Analyzer::new(&program, AnalysisConfig::quick()).unwrap();
        let mut vm = clfp_vm::Vm::new(
            &program,
            VmOptions {
                mem_words: analyzer.config.mem_words,
            },
        );
        let trace = vm.trace(analyzer.config.max_instrs).unwrap();
        let prepared = analyzer.prepare_multimode(&trace);
        let modes = [
            (MemDisambiguation::Perfect, ValuePrediction::Off),
            (MemDisambiguation::Static, ValuePrediction::Stride),
            (MemDisambiguation::None, ValuePrediction::Perfect),
        ];
        let matrix = prepared.report_mode_matrix(&modes);
        for unrolling in [true, false] {
            let metrics = prepared.mode_matrix_metrics(&modes, unrolling);
            assert_eq!(metrics.len(), modes.len());
            for ((&(dis, vp), (mat_unrolled, mat_rolled)), mode_metrics) in
                modes.iter().zip(&matrix).zip(&metrics)
            {
                let report = if unrolling { mat_unrolled } else { mat_rolled };
                assert_eq!(mode_metrics.len(), report.results.len());
                for ((kind, m), r) in mode_metrics.iter().zip(&report.results) {
                    assert_eq!(*kind, r.kind, "{dis:?}/{vp:?}");
                    assert_eq!(m.cycles, r.cycles, "{dis:?}/{vp:?} {:?}", r.kind);
                    assert!(m.instrs > 0, "{dis:?}/{vp:?} {:?}", r.kind);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "perfect-disambiguation base")]
    fn slicing_from_a_coarse_base_panics() {
        use crate::{MemDisambiguation, ValuePrediction};
        let program = compile(LOOPY).unwrap();
        let config = AnalysisConfig::quick().with_disambiguation(MemDisambiguation::None);
        let analyzer = Analyzer::new(&program, config).unwrap();
        let mut vm = clfp_vm::Vm::new(
            &program,
            VmOptions {
                mem_words: analyzer.config.mem_words,
            },
        );
        let trace = vm.trace(analyzer.config.max_instrs).unwrap();
        let prepared = analyzer.prepare(&trace);
        prepared.slice_modes(MemDisambiguation::Static, ValuePrediction::Off);
    }

    #[test]
    #[should_panic(expected = "trained the value predictors")]
    fn slicing_untrained_base_to_realistic_prediction_panics() {
        use crate::{MemDisambiguation, ValuePrediction};
        let program = compile(LOOPY).unwrap();
        let analyzer = Analyzer::new(&program, AnalysisConfig::quick()).unwrap();
        let mut vm = clfp_vm::Vm::new(
            &program,
            VmOptions {
                mem_words: analyzer.config.mem_words,
            },
        );
        let trace = vm.trace(analyzer.config.max_instrs).unwrap();
        // `prepare` (not `prepare_multimode`) under the default Off mode
        // skips predictor training; asking the slice for stride hit bits
        // it never recorded must fail loudly rather than report zeros.
        let prepared = analyzer.prepare(&trace);
        prepared.slice_modes(MemDisambiguation::Perfect, ValuePrediction::Stride);
    }

    #[test]
    fn reference_path_matches_fused_run() {
        let program = compile(LOOPY).unwrap();
        let config = AnalysisConfig::quick();
        let analyzer = Analyzer::new(&program, config).unwrap();
        let mut vm = clfp_vm::Vm::new(
            &program,
            VmOptions {
                mem_words: analyzer.config.mem_words,
            },
        );
        let trace = vm.trace(analyzer.config.max_instrs).unwrap();
        let fused = analyzer.run_on_trace(&trace);
        let reference = analyzer.run_on_trace_reference(&trace);
        assert_eq!(fused.seq_instrs, reference.seq_instrs);
        assert_eq!(fused.raw_instrs, reference.raw_instrs);
        assert_eq!(fused.branches, reference.branches);
        assert_eq!(fused.mispred_stats, reference.mispred_stats);
        for (f, r) in fused.results.iter().zip(&reference.results) {
            assert_eq!(f.kind, r.kind);
            assert_eq!(f.cycles, r.cycles);
            assert!((f.parallelism - r.parallelism).abs() < 1e-12);
        }
    }
}
