//! Two-pass streaming analysis over a [`TraceSource`].
//!
//! The in-memory pipeline materializes the whole trace (16 bytes/event)
//! plus per-event metadata (~14 bytes/event) before any machine runs — a
//! quarter-gigabyte working set per 10M instructions, and the reason the
//! committed suite stopped at 2M. The paper measured 100M-instruction
//! traces. This module reaches that scale with O(chunk) trace memory by
//! exploiting the VM's determinism:
//!
//! * **Pass 1** streams the execution once to build what the preparation
//!   walk needs *ahead of* the events: the branch-outcome profile (the
//!   paper's profile predictor is trained on the measured run itself) and
//!   the trace summary.
//! * **Pass 2** re-streams the identical execution. Each chunk flows
//!   through a [`MetaBuilder`] (classification, operand decode, dynamic
//!   control-dependence resolution — all carried state lives in the
//!   builder) into per-chunk `EventMeta`/[`EventClass`] buffers, which are
//!   then fed to one [`MachineCursor`] per machine × unroll setting. The
//!   cursors carry the scheduling state across chunks, so the resulting
//!   reports are bit-identical to the in-memory path — both are the same
//!   builders, fed different chunk sizes (asserted across chunk sizes by
//!   the `stream_equivalence` suite).
//!
//! Within pass 2 the machine slots run through the lane-parallel kernel
//! ([`lane`](crate::lane)): every chunk is fed to at most two lane
//! *groups* (control-dependence-using machines and the rest), each
//! scheduling all its machine × unroll lanes in one walk over the chunk.
//! When cores are available the groups run concurrently: the producer
//! (preparation walk) publishes chunks through a double-buffered
//! broadcast and each worker thread owns a fixed subset of the groups.
//! Two buffers are sufficient: the producer may prepare chunk *n+1*
//! while workers drain chunk *n*, and blocks before overwriting a buffer
//! any worker still needs. With one core (or `machine_threads = 1`) the
//! same groups are fed inline, sequentially.

use std::sync::{Condvar, Mutex, RwLock};

use clfp_predict::BranchProfile;
use clfp_vm::{
    ProgramSource, SummaryBuilder, TraceEvent, TraceSource, TraceSummary, VmError, VmOptions,
};

use crate::analyzer::{assemble_report, Analyzer, Report};
use crate::fused::{MachineCursor, MachineState};
use crate::lane::{GroupFeed, LaneScheduler};
use crate::meta::{EventClass, EventMeta, MetaBuilder, ProgramMeta, PC_COND_BRANCH};
use crate::pass::{PassConfig, PassResult};
use crate::{AnalyzeError, MachineKind, PredictorChoice};

/// Tuning knobs for the streaming pipeline.
#[derive(Copy, Clone, Debug, Default)]
pub struct StreamOptions {
    /// Events per chunk; `0` (the default) picks an adaptive size from
    /// the program's text size and the worker count — see
    /// [`StreamOptions::resolved_chunk_events`] for the heuristic.
    pub chunk_events: usize,
    /// Worker threads for the machine passes; `0` = one per available
    /// core, capped at the number of lane groups. `1` forces the
    /// sequential in-line path.
    pub machine_threads: usize,
    /// Minimum trace length (events, measured exactly by pass 1) before
    /// the auto worker count (`machine_threads = 0`) fans the machine
    /// passes out to the threaded broadcast; shorter streams run inline,
    /// where the broadcast's wake/publish handshakes cost more than the
    /// machine work they overlap. `0` picks the default
    /// ([`StreamOptions::DEFAULT_PAR_THRESHOLD`]); an explicit
    /// `machine_threads >= 2` bypasses the fallback entirely.
    pub par_threshold_events: u64,
}

impl StreamOptions {
    /// Default [`par_threshold_events`](StreamOptions::par_threshold_events):
    /// below ~4M events the committed suite measures the sequential path
    /// faster than the broadcast on every host tried.
    pub const DEFAULT_PAR_THRESHOLD: u64 = 4 << 20;

    /// The parallel-fallback threshold this configuration resolves to.
    fn resolved_par_threshold(&self) -> u64 {
        match self.par_threshold_events {
            0 => Self::DEFAULT_PAR_THRESHOLD,
            n => n,
        }
    }

    /// The worker count this configuration resolves to (before capping at
    /// the number of lane groups).
    fn resolved_workers(&self) -> usize {
        match self.machine_threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }

    /// The chunk size this configuration resolves to for a program with
    /// `text_len` static instructions: `chunk_events` when non-zero,
    /// otherwise the adaptive heuristic.
    ///
    /// The heuristic targets chunk-resident data (raw `TraceEvent`s,
    /// decoded per-event metadata rows, classification bits — ~30
    /// bytes/event) at
    /// half a nominal 1 MiB L2, so the second lane group's walk over a
    /// chunk and the next chunk's fill read warm cache. The budget
    /// shrinks with the per-PC lane state the groups keep hot (the
    /// CD group's `branch_time`/`branch_ceiling` vectors, ~128 bytes per
    /// text instruction at full lane width), halves again under the
    /// threaded broadcast's double buffering, and is clamped to
    /// [2¹², 2¹⁶] events, rounded down to a power of two.
    pub fn resolved_chunk_events(&self, text_len: usize) -> usize {
        if self.chunk_events > 0 {
            return self.chunk_events;
        }
        const CACHE_BUDGET: usize = 512 << 10;
        const EVENT_BYTES: usize = 30;
        let state_bytes = text_len * 128;
        let budget = CACHE_BUDGET.saturating_sub(state_bytes).max(64 << 10);
        let buffers = if self.resolved_workers() > 1 { 2 } else { 1 };
        let events = budget / (EVENT_BYTES * buffers);
        // Round down to a power of two so chunk boundaries stay aligned
        // with the classification bitmap words.
        let rounded = (events / 2 + 1).next_power_of_two();
        rounded.clamp(1 << 12, 1 << 16)
    }
}

/// Everything one streamed analysis produces: the full report for both
/// unroll settings (they share the preparation walk, exactly like the
/// in-memory [`PreparedTrace`](crate::PreparedTrace)) plus the trace
/// summary, gathered during pass 1 at no extra cost.
#[derive(Clone, Debug)]
pub struct StreamedReports {
    /// Report with perfect loop unrolling (Table 4 "with unrolling").
    pub unrolled: Report,
    /// Report without unrolling (inlining only).
    pub rolled: Report,
    /// Dynamic instruction-mix summary of the streamed trace.
    pub summary: TraceSummary,
}

impl StreamedReports {
    /// The report for one unroll setting.
    pub fn report(&self, unrolling: bool) -> &Report {
        if unrolling {
            &self.unrolled
        } else {
            &self.rolled
        }
    }
}

/// One prepared chunk: the decoded event stream and both per-setting
/// classifications. Cleared and refilled in place, so steady-state pass 2
/// allocates nothing.
struct ChunkBuf {
    events: Vec<EventMeta>,
    unrolled: EventClass,
    rolled: EventClass,
}

impl ChunkBuf {
    fn new(chunk_events: usize) -> ChunkBuf {
        ChunkBuf {
            events: Vec::with_capacity(chunk_events),
            unrolled: EventClass::with_capacity(chunk_events),
            rolled: EventClass::with_capacity(chunk_events),
        }
    }

    fn fill(&mut self, builder: &mut MetaBuilder<'_>, chunk: &[TraceEvent]) {
        self.events.clear();
        self.unrolled.clear();
        self.rolled.clear();
        builder.push_chunk(chunk, &mut self.events, &mut self.unrolled, &mut self.rolled);
    }
}

/// Broadcast control block. `published` is the highest chunk id written
/// (−1 before the first); `consumed[w]` the highest id worker `w` has
/// fully processed. The producer overwrites buffer `id % 2` only once
/// every worker has consumed chunk `id − 2`, its previous occupant.
struct Ctrl {
    published: i64,
    done: bool,
    consumed: Vec<i64>,
}

struct Broadcast {
    bufs: [RwLock<ChunkBuf>; 2],
    ctrl: Mutex<Ctrl>,
    cv: Condvar,
}

impl<'a> Analyzer<'a> {
    /// Streams the configured execution through the two-pass chunked
    /// pipeline: [`Analyzer::run`] at O(chunk) trace memory, for both
    /// unroll settings, with the machine passes fanned out over worker
    /// threads when cores are available. Bit-identical to the in-memory
    /// path for every machine and unroll setting.
    ///
    /// # Example
    ///
    /// ```
    /// use clfp_lang::compile;
    /// use clfp_limits::{AnalysisConfig, Analyzer, MachineKind, StreamOptions};
    ///
    /// let program = compile(
    ///     "fn main() -> int {
    ///          var s: int = 0;
    ///          for (var i: int = 0; i < 50; i = i + 1) { s = s + i; }
    ///          return s;
    ///      }",
    /// )?;
    /// let analyzer = Analyzer::new(&program, AnalysisConfig::quick())?;
    /// let streamed = analyzer.run_streamed(StreamOptions::default())?;
    /// // Both unroll settings come back from the same two streaming passes.
    /// let oracle = streamed.unrolled.parallelism(MachineKind::Oracle);
    /// assert!(oracle >= streamed.rolled.parallelism(MachineKind::Base));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError`] if the measured execution faults (either
    /// pass — the deterministic VM faults identically or not at all).
    pub fn run_streamed(&self, options: StreamOptions) -> Result<StreamedReports, AnalyzeError> {
        let source = ProgramSource::new(
            self.program,
            VmOptions {
                mem_words: self.config.mem_words,
            },
            self.config.max_instrs,
        );
        self.run_streamed_on(&source, options)
    }

    /// [`Analyzer::run_streamed`] over an arbitrary [`TraceSource`] — an
    /// in-memory [`Trace`](clfp_vm::Trace), a replayed
    /// [`ProgramSource`], or a [repeated](ProgramSource::repeated)
    /// paper-scale stream.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError`] if producing the stream faults.
    pub fn run_streamed_on(
        &self,
        source: &dyn TraceSource,
        options: StreamOptions,
    ) -> Result<StreamedReports, AnalyzeError> {
        let text_len = self.program.text.len();
        let chunk_events = options.resolved_chunk_events(text_len).max(1);
        let pcs = &self.meta;

        // Pass 1: branch profile (when the profile predictor is selected)
        // and trace summary. `PC_COND_BRANCH` is set exactly when
        // `BranchProfile::from_trace` would record the event, so the
        // streamed profile matches the in-memory one bit for bit.
        let mut profile = BranchProfile::new();
        let want_profile = matches!(self.config.predictor, PredictorChoice::Profile);
        let mut summary = SummaryBuilder::new(self.program);
        let pass1_span = clfp_metrics::trace::span("stream.pass1", "stream")
            .arg("chunk_events", chunk_events as u64)
            .arg("profile", want_profile);
        source.stream(chunk_events, &mut |chunk| {
            summary.push_chunk(chunk);
            if want_profile {
                for event in chunk {
                    if pcs.pcs[event.pc as usize].is(PC_COND_BRANCH) {
                        profile.record(event.pc, event.taken);
                    }
                }
            }
        })?;

        // The summary closes here so pass 2 can size the lane kernel's
        // last-write tables from the measured distinct-word count instead
        // of a fixed default.
        let summary = summary.finish();
        drop(pass1_span.arg("events", summary.total));
        let mem_capacity = summary.distinct_mem_words.min(1 << 28) as usize;

        // Pass 2: preparation walk feeding every machine × unroll slot
        // through the lane kernel.
        let pass_config = PassConfig::from_analysis(&self.config);
        let mut builder = MetaBuilder::new(self.program, &self.info, pcs, &self.config, &profile);
        let machines = &self.config.machines;
        let mut slots: Vec<(MachineKind, bool)> = Vec::with_capacity(machines.len() * 2);
        for unrolling in [true, false] {
            slots.extend(machines.iter().map(|&kind| (kind, unrolling)));
        }
        let mut sched = LaneScheduler::new(&slots, text_len, &pass_config, mem_capacity);
        let mut workers = options.resolved_workers().min(sched.groups.len());
        // Pass 1 measured the exact stream length; below the threshold the
        // broadcast's synchronization overhead exceeds the overlap it buys,
        // so the auto setting falls back to the inline path.
        if options.machine_threads == 0 && summary.total < options.resolved_par_threshold() {
            workers = 1;
        }

        let pass2_span = clfp_metrics::trace::span("stream.pass2", "stream")
            .arg("workers", workers as u64)
            .arg("slots", slots.len() as u64)
            .arg("events", summary.total);
        let passes: Vec<PassResult> = if workers <= 1 {
            let mut buf = ChunkBuf::new(chunk_events);
            source.stream(chunk_events, &mut |chunk| {
                buf.fill(&mut builder, chunk);
                sched.feed(pcs, 0, &buf.events, &buf.unrolled, &buf.rolled);
            })?;
            sched.finish()
        } else {
            run_broadcast(
                source,
                chunk_events,
                &mut builder,
                pcs,
                sched,
                slots.len(),
                workers,
            )?
        };
        drop(pass2_span);

        let (unrolled_passes, rolled_passes) = {
            let mut it = passes.into_iter();
            let unrolled: Vec<PassResult> = it.by_ref().take(machines.len()).collect();
            (unrolled, it.collect::<Vec<PassResult>>())
        };
        Ok(StreamedReports {
            unrolled: assemble_report(
                machines,
                unrolled_passes,
                builder.not_ignored(true),
                builder.raw_instrs(),
                builder.branches(),
            ),
            rolled: assemble_report(
                machines,
                rolled_passes,
                builder.not_ignored(false),
                builder.raw_instrs(),
                builder.branches(),
            ),
            summary,
        })
    }

    /// Streaming analogue of
    /// [`PreparedTrace::machine_metrics_with_unrolling`](crate::PreparedTrace::machine_metrics_with_unrolling):
    /// runs every configured machine over the streamed execution with the
    /// recording metrics sink. Machines run one at a time, each over its
    /// own re-stream, so only one collector is live at once; the collector
    /// itself is inherently O(events) — this bounds *trace*-side memory,
    /// not the diagnostic record.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError`] if producing the stream faults.
    pub fn stream_machine_metrics(
        &self,
        source: &dyn TraceSource,
        unrolling: bool,
        chunk_events: usize,
    ) -> Result<Vec<(MachineKind, clfp_metrics::MachineMetrics)>, AnalyzeError> {
        use clfp_metrics::MetricsCollector;

        let chunk_events = chunk_events.max(1);
        let profile = self.stream_profile(source, chunk_events)?;
        let pass_config = PassConfig::from_analysis(&self.config);
        let text_len = self.program.text.len();
        let hint = source.len_hint().map_or(0, |n| n as usize);
        let mut out = Vec::with_capacity(self.config.machines.len());
        for &kind in &self.config.machines {
            let mut builder =
                MetaBuilder::new(self.program, &self.info, &self.meta, &self.config, &profile);
            let mut buf = ChunkBuf::new(chunk_events);
            let mut cursor = MachineCursor::new(kind, text_len, true);
            let mut state = MachineState::new(text_len);
            let mut collector = MetricsCollector::with_capacity(hint);
            source.stream(chunk_events, &mut |chunk| {
                buf.fill(&mut builder, chunk);
                let class = if unrolling { &buf.unrolled } else { &buf.rolled };
                cursor.feed(
                    &self.meta,
                    &buf.events,
                    class,
                    &pass_config,
                    &mut state,
                    &mut collector,
                );
            })?;
            cursor.finish();
            out.push((kind, collector.finish()));
        }
        Ok(out)
    }

    /// Pass 1 without the summary: just the branch profile (empty unless
    /// the profile predictor is configured, in which case the stream is
    /// walked once).
    fn stream_profile(
        &self,
        source: &dyn TraceSource,
        chunk_events: usize,
    ) -> Result<BranchProfile, VmError> {
        let mut profile = BranchProfile::new();
        if matches!(self.config.predictor, PredictorChoice::Profile) {
            let pcs = &self.meta;
            source.stream(chunk_events, &mut |chunk| {
                for event in chunk {
                    if pcs.pcs[event.pc as usize].is(PC_COND_BRANCH) {
                        profile.record(event.pc, event.taken);
                    }
                }
            })?;
        }
        Ok(profile)
    }
}

/// The parallel pass-2 engine: the caller's thread runs the preparation
/// walk (the branch predictor need not be `Send`) and publishes prepared
/// chunks through the double-buffered [`Broadcast`]; each worker owns
/// `groups[idx]` for `idx % workers == w` and feeds every published chunk
/// to them in order. Returns the finished passes in request-slot order.
#[allow(clippy::too_many_arguments)]
fn run_broadcast(
    source: &dyn TraceSource,
    chunk_events: usize,
    builder: &mut MetaBuilder<'_>,
    pcs: &ProgramMeta,
    sched: LaneScheduler,
    total: usize,
    workers: usize,
) -> Result<Vec<PassResult>, VmError> {
    let shared = Broadcast {
        bufs: [
            RwLock::new(ChunkBuf::new(chunk_events)),
            RwLock::new(ChunkBuf::new(chunk_events)),
        ],
        ctrl: Mutex::new(Ctrl {
            published: -1,
            done: false,
            consumed: vec![-1; workers],
        }),
        cv: Condvar::new(),
    };
    let mut worker_groups: Vec<Vec<Box<dyn GroupFeed>>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (idx, group) in sched.groups.into_iter().enumerate() {
        worker_groups[idx % workers].push(group);
    }

    let collected: Vec<(usize, PassResult)> = std::thread::scope(|scope| {
        let shared = &shared;
        let handles: Vec<_> = worker_groups
            .into_iter()
            .enumerate()
            .map(|(w, mut my_groups)| {
                scope.spawn(move || {
                    // Worker-lifetime span: the gap between this and the
                    // worker's lane.group busy time is broadcast wait.
                    let _worker_span = clfp_metrics::trace::span("stream.worker", "stream")
                        .arg("worker", w as u64)
                        .arg("groups", my_groups.len() as u64);
                    let mut next: i64 = 0;
                    loop {
                        let upto = {
                            let mut ctrl = shared.ctrl.lock().unwrap();
                            loop {
                                if ctrl.published >= next {
                                    break ctrl.published;
                                }
                                if ctrl.done {
                                    break i64::MIN;
                                }
                                ctrl = shared.cv.wait(ctrl).unwrap();
                            }
                        };
                        if upto == i64::MIN {
                            break;
                        }
                        for id in next..=upto {
                            let buf = shared.bufs[(id % 2) as usize].read().unwrap();
                            for group in my_groups.iter_mut() {
                                group.feed(pcs, 0, &buf.events, &buf.unrolled, &buf.rolled);
                            }
                        }
                        next = upto + 1;
                        shared.ctrl.lock().unwrap().consumed[w] = upto;
                        shared.cv.notify_all();
                    }
                    my_groups
                        .into_iter()
                        .flat_map(|group| group.finish())
                        .collect::<Vec<(usize, PassResult)>>()
                })
            })
            .collect();

        // Producer: prepare and publish chunks from this thread.
        let mut id: i64 = 0;
        let produced = source.stream(chunk_events, &mut |chunk| {
            {
                let mut ctrl = shared.ctrl.lock().unwrap();
                while ctrl.consumed.iter().copied().min().unwrap_or(id) < id - 2 {
                    ctrl = shared.cv.wait(ctrl).unwrap();
                }
            }
            shared.bufs[(id % 2) as usize]
                .write()
                .unwrap()
                .fill(builder, chunk);
            shared.ctrl.lock().unwrap().published = id;
            shared.cv.notify_all();
            id += 1;
        });
        shared.ctrl.lock().unwrap().done = true;
        shared.cv.notify_all();
        let mut collected = Vec::with_capacity(total);
        for handle in handles {
            collected.extend(handle.join().expect("machine worker panicked"));
        }
        produced.map(|()| collected)
    })?;

    let mut passes: Vec<Option<PassResult>> = (0..total).map(|_| None).collect();
    for (idx, pass) in collected {
        passes[idx] = Some(pass);
    }
    Ok(passes
        .into_iter()
        .map(|pass| pass.expect("every slot produced a result"))
        .collect())
}
