use clfp_isa::Program;
use clfp_predict::{
    AlwaysTaken, Bimodal, BranchPredictor, BranchProfile, Btfn, Gshare, LastValuePredictor,
    ProfilePredictor, StridePredictor, TwoLevel, ValuePredictor,
};

use crate::MachineKind;

/// Which branch predictor drives the speculative machines.
///
/// The paper uses profile-based static prediction with the measurement
/// input (an upper bound for static techniques); the alternatives exist
/// for the ablation benches.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PredictorChoice {
    /// Profile-based static majority prediction (the paper's predictor).
    Profile,
    /// Predict every branch taken.
    AlwaysTaken,
    /// Backward taken, forward not taken.
    Btfn,
    /// 2-bit saturating counters indexed by branch address.
    Bimodal {
        /// Table entries (power of two).
        entries: usize,
    },
    /// Gshare: counters indexed by address XOR global history.
    Gshare {
        /// Table entries (power of two).
        entries: usize,
        /// Global history bits (≤ 16).
        history_bits: u32,
    },
    /// Two-level local predictor (PAg): per-branch history registers over
    /// a shared pattern table.
    TwoLevel {
        /// History-register table entries (power of two).
        entries: usize,
        /// Local history bits (≤ 14).
        history_bits: u32,
    },
}

impl PredictorChoice {
    /// Instantiates the predictor for a program and profile.
    pub fn build(
        self,
        program: &Program,
        profile: &BranchProfile,
    ) -> Box<dyn BranchPredictor> {
        match self {
            PredictorChoice::Profile => Box::new(ProfilePredictor::new(profile)),
            PredictorChoice::AlwaysTaken => Box::new(AlwaysTaken),
            PredictorChoice::Btfn => Box::new(Btfn::new(program)),
            PredictorChoice::Bimodal { entries } => Box::new(Bimodal::new(entries)),
            PredictorChoice::Gshare {
                entries,
                history_bits,
            } => Box::new(Gshare::new(entries, history_bits)),
            PredictorChoice::TwoLevel {
                entries,
                history_bits,
            } => Box::new(TwoLevel::new(entries, history_bits)),
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PredictorChoice::Profile => "profile",
            PredictorChoice::AlwaysTaken => "always-taken",
            PredictorChoice::Btfn => "btfn",
            PredictorChoice::Bimodal { .. } => "bimodal",
            PredictorChoice::Gshare { .. } => "gshare",
            PredictorChoice::TwoLevel { .. } => "two-level",
        }
    }
}

/// How the scheduler's last-write memory lookup is keyed — the
/// memory-disambiguation axis.
///
/// The paper assumes *perfect* disambiguation: dependences exist only
/// between accesses to the same dynamic address. `Static` replaces that
/// oracle with what the interprocedural alias analysis
/// (`clfp_cfg::AliasAnalysis`) can prove from the object code: the table
/// is keyed by alias scheduler class, so every may-aliased store acts as
/// a barrier for every load in its region class. `None` models no
/// disambiguation at all: all of memory is one location and every store
/// serializes every later access.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum MemDisambiguation {
    /// Oracle disambiguation by dynamic address (the paper's model).
    #[default]
    Perfect,
    /// Static alias-analysis disambiguation by region class.
    Static,
    /// No disambiguation: memory is a single location.
    None,
}

impl MemDisambiguation {
    /// All modes, in report order.
    pub const ALL: [MemDisambiguation; 3] = [
        MemDisambiguation::Perfect,
        MemDisambiguation::Static,
        MemDisambiguation::None,
    ];

    /// Short name for reports and fingerprints.
    pub fn name(self) -> &'static str {
        match self {
            MemDisambiguation::Perfect => "perfect",
            MemDisambiguation::Static => "static",
            MemDisambiguation::None => "none",
        }
    }

    /// Whether stores fold into the last-write table with `max` instead
    /// of overwriting it. Under `Perfect` keys the latest store to a
    /// word *is* the load's true producer, so overwrite is exact. Under
    /// a coarser key a later store to a *different* word in the same
    /// class would hide the true producer's completion time — a machine
    /// without the oracle must hold every load until all earlier
    /// may-aliasing stores complete, so the table tracks their running
    /// maximum. This is what makes `perfect >= static >= none` a
    /// pointwise theorem rather than an empirical trend.
    pub fn accumulates(self) -> bool {
        !matches!(self, MemDisambiguation::Perfect)
    }
}

/// The value-speculation axis: whether (and how well) result values are
/// predicted at fetch, breaking true data dependences the way ORACLE
/// breaks control dependences.
///
/// A correctly predicted producer releases its consumers immediately:
/// its completion time is *not* published into the register last-write
/// table (consumers see time 0), while the producer itself still
/// executes on schedule — verification is charged at resolve time, like
/// a mispredicted branch. `Off` is the paper's model (no value
/// speculation) and is bit-identical to a build without this axis.
///
/// The realistic modes nest by construction: the correct set of
/// [`Stride`](ValuePrediction::Stride) (a hybrid last-value + stride
/// predictor, see `clfp_predict::StridePredictor`) contains that of
/// [`LastValue`](ValuePrediction::LastValue), which contains the empty
/// set (`Off`), and [`Perfect`](ValuePrediction::Perfect) predicts every
/// produced value. Since every scheduling fold is a monotone `max`, the
/// parallelism ordering `perfect >= stride >= last-value >= off` is a
/// pointwise theorem — the same construction that makes the
/// [`MemDisambiguation`] axis ordered.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ValuePrediction {
    /// No value speculation (the paper's model).
    #[default]
    Off,
    /// Per-pc last-value prediction.
    LastValue,
    /// Per-pc hybrid last-value + stride prediction.
    Stride,
    /// Oracle: every produced value known at fetch.
    Perfect,
}

impl ValuePrediction {
    /// All modes, weakest to strongest (report order).
    pub const ALL: [ValuePrediction; 4] = [
        ValuePrediction::Off,
        ValuePrediction::LastValue,
        ValuePrediction::Stride,
        ValuePrediction::Perfect,
    ];

    /// Short name for reports and fingerprints.
    pub fn name(self) -> &'static str {
        match self {
            ValuePrediction::Off => "off",
            ValuePrediction::LastValue => "last-value",
            ValuePrediction::Stride => "stride",
            ValuePrediction::Perfect => "perfect",
        }
    }

    /// Instantiates the trained predictor for a program of `text_len`
    /// static instructions. `Off` and `Perfect` need no table (nothing
    /// or everything is predicted) and return `None`.
    pub fn build(self, text_len: usize) -> Option<Box<dyn ValuePredictor>> {
        match self {
            ValuePrediction::Off | ValuePrediction::Perfect => None,
            ValuePrediction::LastValue => Some(Box::new(LastValuePredictor::new(text_len))),
            ValuePrediction::Stride => Some(Box::new(StridePredictor::new(text_len))),
        }
    }
}

/// Configuration for an [`Analyzer`](crate::Analyzer) run.
///
/// Every axis defaults to the paper's setting, so
/// `AnalysisConfig::default()` reproduces the published tables; the
/// builder methods compose to explore one idealization at a time:
///
/// ```
/// use clfp_limits::{
///     AnalysisConfig, Latencies, MachineKind, MemDisambiguation, ValuePrediction,
/// };
///
/// let config = AnalysisConfig::default()
///     .with_max_instrs(500_000)
///     .with_unrolling(false)
///     .with_machines(&[MachineKind::Sp, MachineKind::Oracle])
///     .with_disambiguation(MemDisambiguation::Static)
///     .with_value_prediction(ValuePrediction::Stride)
///     .with_latency(Latencies::realistic());
/// assert_eq!(config.machines.len(), 2);
/// // Every axis is recorded in the provenance fingerprint.
/// assert!(config.fingerprint().contains("value_prediction=stride"));
/// ```
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Maximum dynamic instructions to trace (the paper used 100M; our
    /// workloads converge far earlier).
    pub max_instrs: u64,
    /// Apply perfect loop unrolling (Section 4.2). The paper's headline
    /// Table 3 has it on; Table 4 compares both settings.
    pub unrolling: bool,
    /// Apply perfect inlining. Always on in the paper; exposed for
    /// ablation only.
    pub inlining: bool,
    /// Machines to analyze.
    pub machines: Vec<MachineKind>,
    /// Simulated memory size in words.
    pub mem_words: usize,
    /// Branch predictor for the SP machines.
    pub predictor: PredictorChoice,
    /// Instructions fetchable per cycle; `None` (the paper's setting —
    /// Section 5 explicitly excludes fetch limitations) means unlimited.
    /// With `Some(w)`, dynamic instruction *n* cannot execute before cycle
    /// `n/w + 1`, modeling a finite-bandwidth front end.
    pub fetch_bandwidth: Option<u64>,
    /// Memory-disambiguation granularity in bytes (power of two, ≥ 4).
    /// The paper assumes *perfect* disambiguation = word granularity (4).
    /// Coarser values model imperfect alias analysis: accesses within the
    /// same block conflict, adding false dependences.
    pub disambiguation_bytes: u32,
    /// How the last-write table is keyed: by dynamic address (the paper's
    /// perfect oracle), by static alias region class, or not at all.
    /// Orthogonal to `disambiguation_bytes`, which coarsens the *address*
    /// key and is ignored by the other two modes.
    pub disambiguation: MemDisambiguation,
    /// The value-speculation axis: whether predicted result values break
    /// true data dependences. `Off` is the paper's model.
    pub value_prediction: ValuePrediction,
    /// Whether anti (write-after-read) and output (write-after-write)
    /// dependences are removed by renaming. The paper's setting is `true`
    /// ("we have eliminated all the anti-dependences and output
    /// dependences", Section 4.1); `false` enforces them, modeling a
    /// machine without register renaming.
    pub rename: bool,
    /// Operation latencies. The paper uses one cycle for everything
    /// ("since we want to measure the actual parallelism ... we use one
    /// clock cycle latencies", Section 4.4); realistic latencies consume
    /// parallelism to fill pipeline bubbles.
    pub latency: Latencies,
}

/// Per-class operation latencies in cycles.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Latencies {
    /// Loads.
    pub load: u64,
    /// Multiplies, divides, remainders.
    pub mul_div: u64,
    /// Everything else.
    pub other: u64,
}

impl Default for Latencies {
    fn default() -> Latencies {
        Latencies {
            load: 1,
            mul_div: 1,
            other: 1,
        }
    }
}

impl Latencies {
    /// The paper's unit-latency model.
    pub fn unit() -> Latencies {
        Latencies::default()
    }

    /// A plausible early-90s pipeline: 2-cycle loads, 4-cycle
    /// multiply/divide.
    pub fn realistic() -> Latencies {
        Latencies {
            load: 2,
            mul_div: 4,
            other: 1,
        }
    }
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            max_instrs: 2_000_000,
            unrolling: true,
            inlining: true,
            machines: MachineKind::ALL.to_vec(),
            mem_words: 4 << 20,
            predictor: PredictorChoice::Profile,
            fetch_bandwidth: None,
            disambiguation_bytes: 4,
            disambiguation: MemDisambiguation::Perfect,
            value_prediction: ValuePrediction::Off,
            rename: true,
            latency: Latencies::unit(),
        }
    }
}

impl AnalysisConfig {
    /// A configuration tuned for fast unit tests: small trace cap, small
    /// memory.
    pub fn quick() -> AnalysisConfig {
        AnalysisConfig {
            max_instrs: 200_000,
            mem_words: 1 << 20,
            ..AnalysisConfig::default()
        }
    }

    /// Builder-style: set the trace cap.
    pub fn with_max_instrs(mut self, max_instrs: u64) -> AnalysisConfig {
        self.max_instrs = max_instrs;
        self
    }

    /// Builder-style: toggle perfect unrolling.
    pub fn with_unrolling(mut self, unrolling: bool) -> AnalysisConfig {
        self.unrolling = unrolling;
        self
    }

    /// Builder-style: choose the predictor.
    pub fn with_predictor(mut self, predictor: PredictorChoice) -> AnalysisConfig {
        self.predictor = predictor;
        self
    }

    /// Builder-style: restrict the analyzed machines.
    pub fn with_machines(mut self, machines: &[MachineKind]) -> AnalysisConfig {
        self.machines = machines.to_vec();
        self
    }

    /// Builder-style: impose a fetch-bandwidth limit.
    pub fn with_fetch_bandwidth(mut self, width: u64) -> AnalysisConfig {
        self.fetch_bandwidth = Some(width);
        self
    }

    /// Builder-style: set the memory-disambiguation granularity.
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` is a power of two ≥ 4.
    pub fn with_disambiguation_bytes(mut self, bytes: u32) -> AnalysisConfig {
        assert!(
            bytes >= 4 && bytes.is_power_of_two(),
            "granularity must be a power of two >= 4"
        );
        self.disambiguation_bytes = bytes;
        self
    }

    /// Builder-style: choose the memory-disambiguation mode.
    pub fn with_disambiguation(mut self, mode: MemDisambiguation) -> AnalysisConfig {
        self.disambiguation = mode;
        self
    }

    /// Builder-style: choose the value-prediction mode.
    pub fn with_value_prediction(mut self, mode: ValuePrediction) -> AnalysisConfig {
        self.value_prediction = mode;
        self
    }

    /// Builder-style: toggle register/memory renaming.
    pub fn with_rename(mut self, rename: bool) -> AnalysisConfig {
        self.rename = rename;
        self
    }

    /// Builder-style: set operation latencies.
    pub fn with_latency(mut self, latency: Latencies) -> AnalysisConfig {
        self.latency = latency;
        self
    }

    /// A canonical, stable rendering of every field that affects analysis
    /// results. `clfp-metrics` hashes it (FNV-1a) into the run manifest's
    /// `config_hash`, which is how `regen` detects that an existing
    /// results file was produced under a different configuration. Any
    /// change to the format string must bump the leading version tag.
    pub fn fingerprint(&self) -> String {
        let machines = self
            .machines
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join("+");
        let predictor = match self.predictor {
            PredictorChoice::Profile => "profile".to_string(),
            PredictorChoice::AlwaysTaken => "always-taken".to_string(),
            PredictorChoice::Btfn => "btfn".to_string(),
            PredictorChoice::Bimodal { entries } => format!("bimodal/{entries}"),
            PredictorChoice::Gshare {
                entries,
                history_bits,
            } => format!("gshare/{entries}/{history_bits}"),
            PredictorChoice::TwoLevel {
                entries,
                history_bits,
            } => format!("two-level/{entries}/{history_bits}"),
        };
        let fetch = match self.fetch_bandwidth {
            None => "unlimited".to_string(),
            Some(width) => width.to_string(),
        };
        format!(
            "clfp-config-v3;max_instrs={};unrolling={};inlining={};machines={};mem_words={};predictor={};fetch={};disambiguation_bytes={};disambiguation={};value_prediction={};rename={};latency={}/{}/{}",
            self.max_instrs,
            self.unrolling,
            self.inlining,
            machines,
            self.mem_words,
            predictor,
            fetch,
            self.disambiguation_bytes,
            self.disambiguation.name(),
            self.value_prediction.name(),
            self.rename,
            self.latency.load,
            self.latency.mul_div,
            self.latency.other,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_runs_all_machines() {
        let config = AnalysisConfig::default();
        assert_eq!(config.machines.len(), 7);
        assert!(config.unrolling);
        assert!(config.inlining);
        assert_eq!(config.predictor.name(), "profile");
        assert_eq!(config.value_prediction, ValuePrediction::Off);
    }

    #[test]
    fn value_prediction_modes_build_as_documented() {
        assert_eq!(ValuePrediction::ALL.len(), 4);
        assert!(ValuePrediction::Off.build(16).is_none());
        assert!(ValuePrediction::Perfect.build(16).is_none());
        assert_eq!(
            ValuePrediction::LastValue.build(16).unwrap().name(),
            "last-value"
        );
        assert_eq!(ValuePrediction::Stride.build(16).unwrap().name(), "stride");
    }

    #[test]
    fn fingerprint_separates_configs_and_is_stable() {
        let base = AnalysisConfig::default();
        assert_eq!(base.fingerprint(), AnalysisConfig::default().fingerprint());
        assert!(base.fingerprint().starts_with("clfp-config-v3;"));
        for changed in [
            base.clone().with_max_instrs(1),
            base.clone().with_unrolling(false),
            base.clone().with_machines(&[MachineKind::Sp]),
            base.clone().with_predictor(PredictorChoice::Btfn),
            base.clone().with_fetch_bandwidth(8),
            base.clone().with_disambiguation_bytes(64),
            base.clone().with_disambiguation(MemDisambiguation::Static),
            base.clone().with_disambiguation(MemDisambiguation::None),
            base.clone().with_value_prediction(ValuePrediction::LastValue),
            base.clone().with_value_prediction(ValuePrediction::Stride),
            base.clone().with_value_prediction(ValuePrediction::Perfect),
            base.clone().with_rename(false),
            base.clone().with_latency(Latencies::realistic()),
        ] {
            assert_ne!(base.fingerprint(), changed.fingerprint());
        }
    }

    #[test]
    fn builders_compose() {
        let config = AnalysisConfig::quick()
            .with_max_instrs(123)
            .with_unrolling(false)
            .with_predictor(PredictorChoice::Btfn)
            .with_machines(&[MachineKind::Sp]);
        assert_eq!(config.max_instrs, 123);
        assert!(!config.unrolling);
        assert_eq!(config.machines, vec![MachineKind::Sp]);
        assert_eq!(config.predictor.name(), "btfn");
    }
}
