use std::fmt;

/// One of the paper's seven abstract machine models (Section 3).
///
/// Each model is defined purely by the control-flow constraint it imposes
/// on instructions in a dynamic trace; all other constraints (true data
/// dependences, unit latency, unlimited window) are shared.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MachineKind {
    /// No special handling: an instruction cannot execute before any
    /// preceding conditional branch resolves.
    Base,
    /// Perfect control dependence analysis; instructions wait only for
    /// their immediate control-dependence branch, but all branches execute
    /// in sequential order (single flow of control).
    Cd,
    /// Control dependence plus multiple flows of control: no branch
    /// ordering at all.
    CdMf,
    /// Speculative execution down the predicted path: instructions wait
    /// only for the last preceding *mispredicted* branch; mispredictions
    /// resolve one per cycle.
    Sp,
    /// Speculation plus control dependence: instructions wait for their
    /// nearest mispredicted control-dependence ancestor; mispredictions
    /// still resolve in order.
    SpCd,
    /// Speculation, control dependence, and multiple flows:
    /// mispredictions resolve in parallel.
    SpCdMf,
    /// Perfect branch prediction: no control constraints whatsoever. The
    /// upper bound of the study.
    Oracle,
}

impl MachineKind {
    /// All seven machines, in the paper's Table 3 column order.
    pub const ALL: [MachineKind; 7] = [
        MachineKind::Base,
        MachineKind::Cd,
        MachineKind::CdMf,
        MachineKind::Sp,
        MachineKind::SpCd,
        MachineKind::SpCdMf,
        MachineKind::Oracle,
    ];

    /// The paper's name for the machine (`BASE`, `CD`, `CD-MF`, ...).
    pub fn name(self) -> &'static str {
        match self {
            MachineKind::Base => "BASE",
            MachineKind::Cd => "CD",
            MachineKind::CdMf => "CD-MF",
            MachineKind::Sp => "SP",
            MachineKind::SpCd => "SP-CD",
            MachineKind::SpCdMf => "SP-CD-MF",
            MachineKind::Oracle => "ORACLE",
        }
    }

    /// Whether the machine speculates past predicted branches.
    pub fn speculates(self) -> bool {
        matches!(
            self,
            MachineKind::Sp | MachineKind::SpCd | MachineKind::SpCdMf | MachineKind::Oracle
        )
    }

    /// Whether the machine uses control dependence analysis.
    pub fn uses_control_deps(self) -> bool {
        matches!(
            self,
            MachineKind::Cd | MachineKind::CdMf | MachineKind::SpCd | MachineKind::SpCdMf
        )
    }

    /// Whether the machine can follow multiple flows of control.
    pub fn multiple_flows(self) -> bool {
        matches!(
            self,
            MachineKind::CdMf | MachineKind::SpCdMf | MachineKind::Oracle
        )
    }

    /// Machines whose parallelism is *never above* this machine's, for any
    /// trace — the partial order used by the property tests:
    /// `BASE ≤ CD ≤ CD-MF ≤ ORACLE`, `BASE ≤ SP ≤ SP-CD ≤ SP-CD-MF ≤
    /// ORACLE`, `CD ≤ SP-CD`, `CD-MF ≤ SP-CD-MF`.
    pub fn dominates(self) -> &'static [MachineKind] {
        match self {
            MachineKind::Base => &[],
            MachineKind::Cd => &[MachineKind::Base],
            MachineKind::CdMf => &[MachineKind::Cd],
            MachineKind::Sp => &[MachineKind::Base],
            MachineKind::SpCd => &[MachineKind::Sp, MachineKind::Cd],
            MachineKind::SpCdMf => &[MachineKind::SpCd, MachineKind::CdMf],
            MachineKind::Oracle => &[MachineKind::SpCdMf, MachineKind::CdMf],
        }
    }
}

impl fmt::Display for MachineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = MachineKind::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn feature_matrix_matches_paper() {
        use MachineKind::*;
        assert!(!Base.speculates() && !Base.uses_control_deps() && !Base.multiple_flows());
        assert!(Cd.uses_control_deps() && !Cd.multiple_flows() && !Cd.speculates());
        assert!(CdMf.uses_control_deps() && CdMf.multiple_flows());
        assert!(Sp.speculates() && !Sp.uses_control_deps());
        assert!(SpCd.speculates() && SpCd.uses_control_deps() && !SpCd.multiple_flows());
        assert!(SpCdMf.speculates() && SpCdMf.uses_control_deps() && SpCdMf.multiple_flows());
        assert!(Oracle.speculates() && Oracle.multiple_flows());
    }

    #[test]
    fn dominance_is_acyclic_and_rooted_at_base() {
        for machine in MachineKind::ALL {
            let mut seen = vec![machine];
            let mut frontier = machine.dominates().to_vec();
            while let Some(m) = frontier.pop() {
                if !seen.contains(&m) {
                    seen.push(m);
                    frontier.extend_from_slice(m.dominates());
                }
            }
            // Every chain bottoms out at BASE (except BASE itself).
            if machine != MachineKind::Base {
                assert!(seen.contains(&MachineKind::Base), "{machine} chain misses BASE");
            }
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(MachineKind::SpCdMf.to_string(), "SP-CD-MF");
    }
}
