use std::fmt;

use clfp_vm::VmError;

/// Error produced by the limit analyzer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnalyzeError {
    /// The program failed to execute during tracing or profiling.
    Vm(VmError),
    /// The program is structurally unusable (e.g. empty text segment).
    BadProgram(String),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Vm(err) => write!(f, "trace execution failed: {err}"),
            AnalyzeError::BadProgram(msg) => write!(f, "unanalyzable program: {msg}"),
        }
    }
}

impl std::error::Error for AnalyzeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalyzeError::Vm(err) => Some(err),
            AnalyzeError::BadProgram(_) => None,
        }
    }
}

impl From<VmError> for AnalyzeError {
    fn from(err: VmError) -> AnalyzeError {
        AnalyzeError::Vm(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let err = AnalyzeError::from(VmError::BadPc { pc: 3 });
        assert!(err.to_string().contains("trace execution failed"));
        assert!(std::error::Error::source(&err).is_some());
        let bad = AnalyzeError::BadProgram("empty".into());
        assert!(bad.to_string().contains("unanalyzable"));
        assert!(std::error::Error::source(&bad).is_none());
    }
}
