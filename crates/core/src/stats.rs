//! Statistics collected by the analyzer: branch/prediction figures
//! (Table 2) and misprediction-distance data (Figures 6 and 7).

use std::collections::BTreeMap;

/// Branch statistics for one analyzed trace — the paper's Table 2 row.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct BranchReport {
    /// Dynamic conditional branches in the raw trace.
    pub cond_branches: u64,
    /// How many were taken.
    pub taken: u64,
    /// How many the configured predictor got right.
    pub predicted_correctly: u64,
    /// Dynamic computed jumps (never predicted).
    pub computed_jumps: u64,
    /// Total raw dynamic instructions (before inlining/unrolling removal).
    pub raw_instrs: u64,
    /// Register-defining instructions whose produced value was predicted
    /// correctly under the configured value-prediction mode (0 when the
    /// axis is `Off`).
    pub value_pred_hits: u64,
    /// Register-defining instructions seen by the value predictor (its
    /// training set; counted even when the axis is `Off`).
    pub value_pred_eligible: u64,
}

impl BranchReport {
    /// Prediction rate in percent (the paper's Table 2, column 1).
    pub fn prediction_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            100.0
        } else {
            100.0 * self.predicted_correctly as f64 / self.cond_branches as f64
        }
    }

    /// Average dynamic instructions between conditional branches
    /// (Table 2, column 2).
    pub fn instrs_between_branches(&self) -> f64 {
        if self.cond_branches == 0 {
            self.raw_instrs as f64
        } else {
            self.raw_instrs as f64 / self.cond_branches as f64
        }
    }

    /// Value-prediction hit rate in percent over register-defining
    /// instructions (100.0 when none were eligible, e.g. under `Off`
    /// nothing hits — the rate is then 0.0 unless the trace had no defs).
    pub fn value_prediction_rate(&self) -> f64 {
        if self.value_pred_eligible == 0 {
            100.0
        } else {
            100.0 * self.value_pred_hits as f64 / self.value_pred_eligible as f64
        }
    }
}

/// Misprediction-distance statistics from the SP machine (Figures 6, 7).
///
/// A *segment* is the run of (non-ignored) instructions between two
/// consecutive mispredicted branches; its *distance* is its length and its
/// *parallelism* is length divided by the cycles the SP machine needed for
/// it.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MispredictionStats {
    /// distance -> number of segments with that distance.
    histogram: BTreeMap<u32, u64>,
    /// distance -> (Σ 1/parallelism, segment count) for harmonic means.
    inverse_sums: BTreeMap<u32, (f64, u64)>,
}

impl MispredictionStats {
    /// Creates empty statistics.
    pub fn new() -> MispredictionStats {
        MispredictionStats::default()
    }

    /// Records one segment.
    pub fn record_segment(&mut self, distance: u32, parallelism: f64) {
        if distance == 0 {
            return;
        }
        *self.histogram.entry(distance).or_insert(0) += 1;
        let entry = self.inverse_sums.entry(distance).or_insert((0.0, 0));
        entry.0 += 1.0 / parallelism.max(f64::MIN_POSITIVE);
        entry.1 += 1;
    }

    /// Total recorded segments (= mispredictions observed, ±1 for the
    /// trailing partial segment).
    pub fn total_segments(&self) -> u64 {
        self.histogram.values().sum()
    }

    /// The raw distance histogram.
    pub fn histogram(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.histogram.iter().map(|(&d, &n)| (d, n))
    }

    /// Cumulative distribution of misprediction distances — Figure 6.
    /// Returns `(distance, fraction of segments with distance ≤ d)` pairs.
    pub fn cumulative_distribution(&self) -> Vec<(u32, f64)> {
        let total = self.total_segments();
        if total == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.histogram.len());
        let mut running = 0u64;
        for (&distance, &count) in &self.histogram {
            running += count;
            out.push((distance, running as f64 / total as f64));
        }
        out
    }

    /// Fraction of segments with distance ≤ `d`.
    pub fn fraction_within(&self, d: u32) -> f64 {
        let total = self.total_segments();
        if total == 0 {
            return 1.0;
        }
        let within: u64 = self
            .histogram
            .iter()
            .take_while(|&(&distance, _)| distance <= d)
            .map(|(_, &count)| count)
            .sum();
        within as f64 / total as f64
    }

    /// Harmonic-mean parallelism per distance bucket — Figure 7. Buckets
    /// are geometric: `[1,2), [2,4), [4,8), ...`. Returns
    /// `(bucket_low, harmonic_mean_parallelism, segment_count)`.
    pub fn parallelism_by_distance(&self) -> Vec<(u32, f64, u64)> {
        let mut buckets: BTreeMap<u32, (f64, u64)> = BTreeMap::new();
        for (&distance, &(inv_sum, count)) in &self.inverse_sums {
            let bucket = if distance == 0 {
                1
            } else {
                1u32 << (31 - distance.leading_zeros())
            };
            let entry = buckets.entry(bucket).or_insert((0.0, 0));
            entry.0 += inv_sum;
            entry.1 += count;
        }
        buckets
            .into_iter()
            .map(|(bucket, (inv_sum, count))| {
                let hmean = if inv_sum > 0.0 {
                    count as f64 / inv_sum
                } else {
                    0.0
                };
                (bucket, hmean, count)
            })
            .collect()
    }

    /// Merges another statistics object into this one (used to combine all
    /// benchmarks for the paper's Figure 7).
    pub fn merge(&mut self, other: &MispredictionStats) {
        for (&d, &n) in &other.histogram {
            *self.histogram.entry(d).or_insert(0) += n;
        }
        for (&d, &(inv, n)) in &other.inverse_sums {
            let entry = self.inverse_sums.entry(d).or_insert((0.0, 0));
            entry.0 += inv;
            entry.1 += n;
        }
    }
}

/// Distribution of instructions issued per cycle under a machine model,
/// computed from a per-instruction schedule
/// ([`Analyzer::schedule`](crate::Analyzer::schedule)).
///
/// The paper reports only the aggregate parallelism; the IPC profile shows
/// *where* it lives — a handful of very wide cycles (burst parallelism) vs
/// sustained width.
#[derive(Clone, Debug, Default)]
pub struct IpcProfile {
    /// `issued[c]` = instructions executing at cycle `c+1`.
    issued: Vec<u32>,
}

impl IpcProfile {
    /// Builds the profile from a schedule (cycle per dynamic instruction,
    /// 0 for instructions removed by inlining/unrolling).
    pub fn from_schedule(schedule: &[u64]) -> IpcProfile {
        let max = schedule.iter().copied().max().unwrap_or(0) as usize;
        let mut issued = vec![0u32; max];
        for &cycle in schedule {
            if cycle > 0 {
                issued[(cycle - 1) as usize] += 1;
            }
        }
        IpcProfile { issued }
    }

    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.issued.len() as u64
    }

    /// Total instructions.
    pub fn instructions(&self) -> u64 {
        self.issued.iter().map(|&n| n as u64).sum()
    }

    /// Mean instructions per cycle (the parallelism).
    pub fn mean(&self) -> f64 {
        if self.issued.is_empty() {
            0.0
        } else {
            self.instructions() as f64 / self.cycles() as f64
        }
    }

    /// The widest cycle.
    pub fn peak(&self) -> u32 {
        self.issued.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of all instructions issued in cycles at least `width`
    /// wide — how much of the parallelism is burst-shaped.
    pub fn fraction_in_wide_cycles(&self, width: u32) -> f64 {
        let total = self.instructions();
        if total == 0 {
            return 0.0;
        }
        let wide: u64 = self
            .issued
            .iter()
            .filter(|&&n| n >= width)
            .map(|&n| n as u64)
            .sum();
        wide as f64 / total as f64
    }

    /// Histogram over geometric width buckets: `(bucket_low, cycles)` for
    /// buckets `[1,2) [2,4) [4,8) ...`.
    pub fn width_histogram(&self) -> Vec<(u32, u64)> {
        let mut buckets: BTreeMap<u32, u64> = BTreeMap::new();
        for &n in &self.issued {
            if n == 0 {
                continue;
            }
            let bucket = 1u32 << (31 - n.leading_zeros());
            *buckets.entry(bucket).or_insert(0) += 1;
        }
        buckets.into_iter().collect()
    }
}

/// The harmonic mean of a sequence of positive values — the paper's
/// summary statistic for parallelism across benchmarks.
///
/// Returns 0.0 for an empty sequence.
///
/// # Example
///
/// ```
/// let hm = clfp_limits::harmonic_mean([2.0, 6.0]);
/// assert!((hm - 3.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut inv_sum = 0.0;
    let mut count = 0u64;
    for value in values {
        inv_sum += 1.0 / value.max(f64::MIN_POSITIVE);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        count as f64 / inv_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_report_rates() {
        let report = BranchReport {
            cond_branches: 200,
            taken: 120,
            predicted_correctly: 180,
            computed_jumps: 2,
            raw_instrs: 1200,
            value_pred_hits: 300,
            value_pred_eligible: 400,
        };
        assert!((report.prediction_rate() - 90.0).abs() < 1e-12);
        assert!((report.instrs_between_branches() - 6.0).abs() < 1e-12);
        assert!((report.value_prediction_rate() - 75.0).abs() < 1e-12);
        assert_eq!(BranchReport::default().value_prediction_rate(), 100.0);
    }

    #[test]
    fn branch_report_no_branches() {
        let report = BranchReport {
            raw_instrs: 10,
            ..BranchReport::default()
        };
        assert_eq!(report.prediction_rate(), 100.0);
        assert_eq!(report.instrs_between_branches(), 10.0);
    }

    #[test]
    fn cumulative_distribution_reaches_one() {
        let mut stats = MispredictionStats::new();
        stats.record_segment(5, 2.0);
        stats.record_segment(5, 3.0);
        stats.record_segment(100, 8.0);
        stats.record_segment(1000, 12.0);
        let dist = stats.cumulative_distribution();
        assert_eq!(dist.first().unwrap().0, 5);
        assert!((dist.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!((stats.fraction_within(100) - 0.75).abs() < 1e-12);
        assert_eq!(stats.total_segments(), 4);
    }

    #[test]
    fn zero_distance_segments_ignored() {
        let mut stats = MispredictionStats::new();
        stats.record_segment(0, 1.0);
        assert_eq!(stats.total_segments(), 0);
    }

    #[test]
    fn parallelism_buckets_are_geometric() {
        let mut stats = MispredictionStats::new();
        stats.record_segment(3, 2.0);
        stats.record_segment(3, 2.0);
        stats.record_segment(9, 4.0);
        let buckets = stats.parallelism_by_distance();
        // 3 -> bucket 2; 9 -> bucket 8.
        assert_eq!(buckets[0].0, 2);
        assert!((buckets[0].1 - 2.0).abs() < 1e-12);
        assert_eq!(buckets[0].2, 2);
        assert_eq!(buckets[1].0, 8);
    }

    #[test]
    fn merge_combines() {
        let mut a = MispredictionStats::new();
        a.record_segment(4, 2.0);
        let mut b = MispredictionStats::new();
        b.record_segment(4, 2.0);
        b.record_segment(7, 3.0);
        a.merge(&b);
        assert_eq!(a.total_segments(), 3);
    }

    #[test]
    fn ipc_profile_from_schedule() {
        // Cycles: 1 -> 3 instrs, 2 -> 1 instr, 3 -> 2 instrs; one ignored.
        let schedule = [1, 1, 1, 2, 3, 3, 0];
        let profile = IpcProfile::from_schedule(&schedule);
        assert_eq!(profile.cycles(), 3);
        assert_eq!(profile.instructions(), 6);
        assert!((profile.mean() - 2.0).abs() < 1e-12);
        assert_eq!(profile.peak(), 3);
        assert!((profile.fraction_in_wide_cycles(2) - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(profile.width_histogram(), vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn ipc_profile_empty_schedule() {
        let profile = IpcProfile::from_schedule(&[]);
        assert_eq!(profile.cycles(), 0);
        assert_eq!(profile.mean(), 0.0);
        assert_eq!(profile.peak(), 0);
        assert_eq!(profile.fraction_in_wide_cycles(1), 0.0);
    }

    #[test]
    fn harmonic_mean_examples() {
        assert_eq!(harmonic_mean([]), 0.0);
        assert!((harmonic_mean([4.0]) - 4.0).abs() < 1e-12);
        assert!((harmonic_mean([1.0, 1.0, 4.0]) - (3.0 / 2.25)).abs() < 1e-12);
    }
}
