//! # clfp-limits
//!
//! The paper's primary contribution: a trace-driven analyzer computing the
//! **limits of parallelism under control-flow constraints** for seven
//! abstract machine models (Lam & Wilson, *Limits of Control Flow on
//! Parallelism*, ISCA 1992, Section 3):
//!
//! | machine | speculation | control dependence | multiple flows |
//! |---------|-------------|--------------------|----------------|
//! | [`MachineKind::Base`]   | — | — | — |
//! | [`MachineKind::Cd`]     | — | ✓ | — (branches totally ordered) |
//! | [`MachineKind::CdMf`]   | — | ✓ | ✓ |
//! | [`MachineKind::Sp`]     | ✓ | — | — (mispredictions ordered) |
//! | [`MachineKind::SpCd`]   | ✓ | ✓ | — (mispredictions ordered) |
//! | [`MachineKind::SpCdMf`] | ✓ | ✓ | ✓ |
//! | [`MachineKind::Oracle`] | perfect prediction | — | — |
//!
//! Every machine enforces only **true data dependences** (registers and
//! perfectly disambiguated word-granular memory via a last-write table,
//! Section 4.1) plus its own control-flow rule (Figure 1), under unit
//! latencies and an unlimited scheduling window. Perfect inlining is
//! always applied; perfect unrolling is configurable (Section 4.2 /
//! Table 4). Parallelism is sequential instruction count divided by the
//! critical-path length.
//!
//! The fused scheduler is generic over the `clfp-metrics` sink:
//! [`PreparedTrace::machine_metrics`] re-runs the machines with a
//! recording sink to produce cycle-occupancy histograms and critical-path
//! attribution (re-exported here as [`MachineMetrics`]), while the
//! throughput paths use the statically-eliminated null sink and pay
//! nothing for the instrumentation.
//!
//! ## Example
//!
//! ```
//! use clfp_lang::compile;
//! use clfp_limits::{AnalysisConfig, Analyzer, MachineKind};
//!
//! let program = compile(
//!     "fn main() -> int {
//!          var s: int = 0;
//!          for (var i: int = 0; i < 100; i = i + 1) {
//!              if (i % 3 == 0) { s = s + i; }
//!          }
//!          return s;
//!      }",
//! )?;
//! let report = Analyzer::new(&program, AnalysisConfig::default())?.run()?;
//! // The machine hierarchy must hold.
//! assert!(report.parallelism(MachineKind::Base) <= report.parallelism(MachineKind::Cd));
//! assert!(report.parallelism(MachineKind::SpCdMf) <= report.parallelism(MachineKind::Oracle));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod analyzer;
mod config;
mod error;
mod fused;
mod lane;
mod lastwrite;
mod machine;
mod meta;
mod pass;
mod stats;
mod stream;

pub use analyzer::{Analyzer, CdSource, MachineResult, PreparedTrace, Report};
pub use clfp_metrics::{
    CriticalPathAttribution, EdgeKind, FlowCounters, MachineMetrics, OccupancyHistogram,
};
pub use config::{AnalysisConfig, Latencies, MemDisambiguation, PredictorChoice, ValuePrediction};
pub use error::AnalyzeError;
pub use lastwrite::LastWriteTable;
pub use machine::MachineKind;
pub use stats::{harmonic_mean, BranchReport, IpcProfile, MispredictionStats};
pub use stream::{StreamOptions, StreamedReports};
