//! Randomized property test for lane grouping (behind the
//! `external-tests` feature): for *any* machine subset in *any* request
//! order, over any suite workload and either unroll setting, the lane
//! kernel must produce the identical per-machine results as the scalar
//! fused cursor. This exercises the CD/non-CD split, partial lane groups
//! (1–8 lanes, padding lanes replicated from lane 0), and the scatter of
//! group results back into request order — including the singleton and
//! full-14-lane extremes the deterministic suite pins explicitly.
#![cfg(feature = "external-tests")]

use clfp_limits::{AnalysisConfig, Analyzer, MachineKind};

/// Minimal SplitMix64 PRNG — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn random_machine_subsets_match_scalar() {
    let names = ["qsort", "scan", "sparse", "matmul", "eventsim"];
    let mut programs = Vec::new();
    for name in names {
        let workload = clfp_workloads::by_name(name).expect(name);
        programs.push((name, workload.compile().expect(name)));
    }
    let base = AnalysisConfig::quick().with_max_instrs(10_000);
    let mut traces = Vec::new();
    for (_, program) in &programs {
        let mut vm = clfp_vm::Vm::new(
            program,
            clfp_vm::VmOptions {
                mem_words: base.mem_words,
            },
        );
        traces.push(vm.trace(base.max_instrs).unwrap());
    }

    let mut rng = Rng(0x1992_0515_C0FF_EE00);
    for round in 0..48 {
        let pi = rng.below(programs.len());
        let (name, program) = &programs[pi];

        // A random non-empty subset in a random order (Fisher-Yates over
        // ALL, then a random prefix).
        let mut pool: Vec<MachineKind> = MachineKind::ALL.to_vec();
        for i in (1..pool.len()).rev() {
            pool.swap(i, rng.below(i + 1));
        }
        let machines: Vec<MachineKind> = pool[..1 + rng.below(pool.len())].to_vec();

        let config = AnalysisConfig {
            machines: machines.clone(),
            ..base.clone()
        };
        let analyzer = Analyzer::new(program, config).unwrap();
        let prepared = analyzer.prepare(&traces[pi]);
        let (lane_unrolled, lane_rolled) = prepared.report_both();
        for (unrolling, lane) in [(true, &lane_unrolled), (false, &lane_rolled)] {
            let scalar = prepared.report_with_unrolling_scalar(unrolling);
            let tag = format!("round {round} {name} {machines:?} unroll={unrolling}");
            assert_eq!(lane.seq_instrs, scalar.seq_instrs, "{tag}");
            assert_eq!(lane.mispred_stats, scalar.mispred_stats, "{tag}");
            assert_eq!(lane.results.len(), scalar.results.len(), "{tag}");
            for (g, w) in lane.results.iter().zip(&scalar.results) {
                assert_eq!(g.kind, w.kind, "{tag}: request order");
                assert_eq!(g.cycles, w.cycles, "{tag} {}", g.kind);
                assert_eq!(
                    g.parallelism.to_bits(),
                    w.parallelism.to_bits(),
                    "{tag} {}",
                    g.kind
                );
            }
        }
    }
}
