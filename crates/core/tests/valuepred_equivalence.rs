//! Exact-equivalence suite for the value-prediction axis: every mode of
//! [`clfp_limits::ValuePrediction`] must produce the same schedule through
//! all four pipelines — the lane kernel, the scalar fused cursor, the
//! streaming chunked pipeline (at chunk sizes that straddle call and
//! branch boundaries), and the reference pass, which replays the value
//! predictor independently instead of consuming the prepared
//! `EV_VALPRED` flags. Any divergence here means a pipeline read the
//! publish rule (a correctly predicted definition publishes
//! availability 0) differently from the others.

use clfp_limits::{AnalysisConfig, Analyzer, Report, StreamOptions, ValuePrediction};
use clfp_vm::{Vm, VmOptions};

/// A value-rich exerciser: a stride-predictable induction chain, a
/// last-value-friendly reload of a rarely changing flag, an irregular
/// squaring chain only the oracle predicts, and procedure calls so the
/// inlining/unrolling masks interact with the predictor's training
/// sequence. Its trace length is not a multiple of 7, so the 7-event
/// chunk walk crosses boundaries mid-chunk.
const SOURCE: &str = r#"
    .text
    main:
        li r8, 0
        li r9, 12
        li r11, 0
    mloop:
        addi r8, r8, 1
        mul r10, r8, r8
        add r11, r11, r10
        mv a0, r8
        call work
        sw v0, 0x1000(r0)
        lw r12, 0x1000(r0)
        add r11, r11, r12
        blt r8, r9, mloop
        halt
    work:
        addi sp, sp, -4
        sw ra, 0(sp)
        li v0, 0
        ble a0, r0, wend
        addi v0, a0, 5
    wend:
        lw ra, 0(sp)
        addi sp, sp, 4
        ret
    "#;

fn base_config() -> AnalysisConfig {
    AnalysisConfig::quick().with_max_instrs(30_000)
}

fn assert_reports_equal(got: &Report, want: &Report, tag: &str) {
    assert_eq!(got.seq_instrs, want.seq_instrs, "{tag}: seq_instrs");
    assert_eq!(got.raw_instrs, want.raw_instrs, "{tag}: raw_instrs");
    assert_eq!(got.branches, want.branches, "{tag}: branches");
    assert_eq!(got.mispred_stats, want.mispred_stats, "{tag}: mispred");
    assert_eq!(got.results.len(), want.results.len(), "{tag}: machines");
    for (g, w) in got.results.iter().zip(&want.results) {
        assert_eq!(g.kind, w.kind, "{tag}");
        assert_eq!(g.cycles, w.cycles, "{tag} {}", g.kind);
        assert!(
            (g.parallelism - w.parallelism).abs() < 1e-12,
            "{tag} {}: {} vs {}",
            g.kind,
            g.parallelism,
            w.parallelism
        );
    }
}

fn programs() -> Vec<(String, clfp_isa::Program)> {
    let mut programs = vec![("asm".to_string(), clfp_isa::assemble(SOURCE).unwrap())];
    for name in ["qsort", "scan"] {
        let workload = clfp_workloads::by_name(name).expect(name);
        programs.push((name.to_string(), workload.compile().expect(name)));
    }
    programs
}

#[test]
fn pipelines_agree_across_modes_chunks_and_unrolling() {
    for (name, program) in programs() {
        let mut vm = Vm::new(
            &program,
            VmOptions {
                mem_words: base_config().mem_words,
            },
        );
        let trace = vm.trace(base_config().max_instrs).unwrap();
        for mode in ValuePrediction::ALL {
            for unrolling in [true, false] {
                let config = base_config()
                    .with_unrolling(unrolling)
                    .with_value_prediction(mode);
                let analyzer = Analyzer::new(&program, config).unwrap();
                let prepared = analyzer.prepare(&trace);
                let tag = format!("{name} mode={} unroll={unrolling}", mode.name());

                // Lane kernel vs scalar fused cursor: bit-identical.
                let lane = prepared.report_with_unrolling(unrolling);
                let scalar = prepared.report_with_unrolling_scalar(unrolling);
                assert_reports_equal(&scalar, &lane, &format!("{tag} scalar"));

                // The reference pass rebuilds its own predictor and must
                // land on the same schedule anyway.
                let reference = analyzer.run_on_trace_reference(&trace);
                assert_eq!(reference.seq_instrs, lane.seq_instrs, "{tag} reference");
                assert_eq!(reference.results.len(), lane.results.len(), "{tag}");
                for (r, l) in reference.results.iter().zip(&lane.results) {
                    assert_eq!(r.kind, l.kind, "{tag}");
                    assert_eq!(r.cycles, l.cycles, "{tag} reference {}", r.kind);
                }

                // The streaming pipeline at every chunk size, including
                // single-event chunks and one whole-trace chunk.
                for chunk in [1, 7, 4096, trace.len()] {
                    let streamed = analyzer
                        .run_streamed_on(
                            &trace,
                            StreamOptions {
                                chunk_events: chunk,
                                machine_threads: 1,
                                par_threshold_events: 0,
                            },
                        )
                        .unwrap();
                    assert_reports_equal(
                        streamed.report(unrolling),
                        &lane,
                        &format!("{tag} chunk={chunk}"),
                    );
                }
            }
        }
    }
}

#[test]
fn off_mode_is_bit_identical_to_default() {
    // `Off` is the default: a config that never mentions the axis and one
    // that sets it explicitly must produce the same reports, so the new
    // axis cannot perturb any pre-existing result.
    let (_, program) = programs().remove(1);
    let default_analyzer = Analyzer::new(&program, base_config()).unwrap();
    let off_analyzer = Analyzer::new(
        &program,
        base_config().with_value_prediction(ValuePrediction::Off),
    )
    .unwrap();
    let mut vm = Vm::new(
        &program,
        VmOptions {
            mem_words: base_config().mem_words,
        },
    );
    let trace = vm.trace(base_config().max_instrs).unwrap();
    let default_prepared = default_analyzer.prepare(&trace);
    let off_prepared = off_analyzer.prepare(&trace);
    for unrolling in [true, false] {
        assert_reports_equal(
            &off_prepared.report_with_unrolling(unrolling),
            &default_prepared.report_with_unrolling(unrolling),
            &format!("unroll={unrolling}"),
        );
    }
}
