//! Exact-equivalence suite for the lane-parallel scheduling kernel: the
//! event-major lane walk ([`PreparedTrace::report_with_unrolling`] /
//! [`PreparedTrace::report_both`] and the streamed pipeline behind it)
//! must reproduce the scalar fused cursor
//! ([`PreparedTrace::report_with_unrolling_scalar`]) and the
//! one-machine-at-a-time reference pass
//! ([`Analyzer::run_on_trace_reference`]) **bit for bit** — cycle counts,
//! parallelism bits, branch statistics, and misprediction histograms —
//! for every machine model, every suite workload, both unroll settings,
//! and streaming chunk sizes {1, 7, 4096, whole-trace}. The lane kernel
//! computes the identical max/add folds in the identical event order, so
//! any divergence here is a wrong mask, not floating-point noise.

use clfp_limits::{AnalysisConfig, Analyzer, MachineKind, Report, StreamOptions};
use clfp_vm::{Vm, VmOptions};

/// The `fused` module's procedure-heavy exerciser: calls, CD inheritance,
/// loops, and memory traffic, with a trace length that is not a multiple
/// of 7 so small chunks straddle call and branch boundaries.
const SOURCE: &str = r#"
    .text
    main:
        li r8, 8
    mloop:
        mv a0, r8
        call work
        sw v0, 0x1000(r0)
        lw r9, 0x1000(r0)
        addi r8, r8, -1
        bgt r8, r0, mloop
        halt
    work:
        addi sp, sp, -4
        sw ra, 0(sp)
        li v0, 0
        ble a0, r0, wend
        addi v0, a0, 5
    wend:
        lw ra, 0(sp)
        addi sp, sp, 4
        ret
    "#;

fn config() -> AnalysisConfig {
    AnalysisConfig::quick().with_max_instrs(20_000)
}

/// Bit-exact report equality: parallelism is compared by bit pattern, not
/// tolerance — the lane kernel must run the same arithmetic, not similar
/// arithmetic.
fn assert_reports_identical(got: &Report, want: &Report, tag: &str) {
    assert_eq!(got.seq_instrs, want.seq_instrs, "{tag}: seq_instrs");
    assert_eq!(got.raw_instrs, want.raw_instrs, "{tag}: raw_instrs");
    assert_eq!(got.branches, want.branches, "{tag}: branches");
    assert_eq!(got.mispred_stats, want.mispred_stats, "{tag}: mispred");
    assert_eq!(got.results.len(), want.results.len(), "{tag}: machines");
    for (g, w) in got.results.iter().zip(&want.results) {
        assert_eq!(g.kind, w.kind, "{tag}");
        assert_eq!(g.cycles, w.cycles, "{tag} {}", g.kind);
        assert_eq!(
            g.parallelism.to_bits(),
            w.parallelism.to_bits(),
            "{tag} {}: {} vs {}",
            g.kind,
            g.parallelism,
            w.parallelism
        );
    }
}

/// The asm exerciser plus every suite workload.
fn programs() -> Vec<(String, clfp_isa::Program)> {
    let mut programs = vec![("asm".to_string(), clfp_isa::assemble(SOURCE).unwrap())];
    for workload in clfp_workloads::suite() {
        programs.push((
            workload.name.to_string(),
            workload.compile().expect(workload.name),
        ));
    }
    programs
}

fn trace_of(program: &clfp_isa::Program) -> clfp_vm::Trace {
    let mut vm = Vm::new(
        program,
        VmOptions {
            mem_words: config().mem_words,
        },
    );
    vm.trace(config().max_instrs).unwrap()
}

#[test]
fn lane_kernel_matches_scalar_and_reference_on_every_workload() {
    for (name, program) in programs() {
        let analyzer = Analyzer::new(&program, config()).unwrap();
        let trace = trace_of(&program);
        let prepared = analyzer.prepare(&trace);
        let (both_unrolled, both_rolled) = prepared.report_both();
        for (unrolling, both) in [(true, &both_unrolled), (false, &both_rolled)] {
            let tag = format!("{name} unroll={unrolling}");
            let scalar = prepared.report_with_unrolling_scalar(unrolling);
            let lane = prepared.report_with_unrolling(unrolling);
            assert_reports_identical(&lane, &scalar, &format!("{tag} lane-vs-scalar"));
            assert_reports_identical(both, &scalar, &format!("{tag} both-vs-scalar"));
            let reference = Analyzer::new(&program, config().with_unrolling(unrolling))
                .unwrap()
                .run_on_trace_reference(&trace);
            assert_reports_identical(&lane, &reference, &format!("{tag} lane-vs-reference"));
        }
    }
}

#[test]
fn streamed_lane_kernel_matches_scalar_across_chunk_sizes() {
    for (name, program) in programs() {
        let analyzer = Analyzer::new(&program, config()).unwrap();
        let trace = trace_of(&program);
        let prepared = analyzer.prepare(&trace);
        let want_unrolled = prepared.report_with_unrolling_scalar(true);
        let want_rolled = prepared.report_with_unrolling_scalar(false);
        for chunk in [1, 7, 4096, trace.len()] {
            let streamed = analyzer
                .run_streamed_on(
                    &trace,
                    StreamOptions {
                        chunk_events: chunk,
                        machine_threads: 1,
                        par_threshold_events: 0,
                    },
                )
                .unwrap();
            let tag = format!("{name} chunk={chunk}");
            assert_reports_identical(
                &streamed.unrolled,
                &want_unrolled,
                &format!("{tag} unrolled"),
            );
            assert_reports_identical(&streamed.rolled, &want_rolled, &format!("{tag} rolled"));
        }
    }
}

#[test]
fn singleton_machine_requests_match_scalar() {
    let workload = clfp_workloads::by_name("qsort").unwrap();
    let program = workload.compile().unwrap();
    let trace = trace_of(&program);
    for kind in MachineKind::ALL {
        let config = AnalysisConfig {
            machines: vec![kind],
            ..config()
        };
        let analyzer = Analyzer::new(&program, config).unwrap();
        let prepared = analyzer.prepare(&trace);
        let (unrolled, rolled) = prepared.report_both();
        let tag = format!("singleton {kind}");
        assert_reports_identical(
            &unrolled,
            &prepared.report_with_unrolling_scalar(true),
            &format!("{tag} unrolled"),
        );
        assert_reports_identical(
            &rolled,
            &prepared.report_with_unrolling_scalar(false),
            &format!("{tag} rolled"),
        );
    }
}

#[test]
fn mixed_machine_subsets_match_scalar() {
    // Deliberately scrambled orders: the CD/non-CD lane split must
    // scatter results back into request order.
    let subsets: &[&[MachineKind]] = &[
        &[MachineKind::Oracle, MachineKind::Cd, MachineKind::Sp],
        &[MachineKind::SpCdMf, MachineKind::Base],
        &[
            MachineKind::Sp,
            MachineKind::SpCd,
            MachineKind::CdMf,
            MachineKind::Base,
            MachineKind::Oracle,
        ],
    ];
    let workload = clfp_workloads::by_name("sparse").unwrap();
    let program = workload.compile().unwrap();
    let trace = trace_of(&program);
    for subset in subsets {
        let config = AnalysisConfig {
            machines: subset.to_vec(),
            ..config()
        };
        let analyzer = Analyzer::new(&program, config).unwrap();
        let prepared = analyzer.prepare(&trace);
        let (unrolled, rolled) = prepared.report_both();
        let tag = format!("subset {subset:?}");
        assert_reports_identical(
            &unrolled,
            &prepared.report_with_unrolling_scalar(true),
            &format!("{tag} unrolled"),
        );
        assert_reports_identical(
            &rolled,
            &prepared.report_with_unrolling_scalar(false),
            &format!("{tag} rolled"),
        );
    }
}
