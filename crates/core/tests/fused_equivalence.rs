//! Exact-equivalence suite: the fused multi-machine pass must reproduce
//! the reference one-machine-at-a-time pass bit for bit — cycles,
//! sequential instruction counts, branch statistics, and
//! misprediction-distance histograms — for every machine model, across
//! real workloads, under both unroll settings. The reference pass
//! (`Analyzer::run_on_trace_reference`) is the paper-shaped oracle; any
//! divergence is a bug in the fused path.

use clfp_limits::{AnalysisConfig, Analyzer, MachineKind};
use clfp_predict::BranchProfile;
use clfp_vm::{Vm, VmOptions};

/// Workloads chosen to cover the behaviors that stress the fused pass:
/// data-dependent control (scan), recursion + calls (qsort), dense
/// branching (logic), and numeric loop nests (matmul).
const WORKLOADS: [&str; 4] = ["scan", "qsort", "logic", "matmul"];

fn config() -> AnalysisConfig {
    // Small enough to keep the suite fast, large enough that every
    // workload executes thousands of dynamic branches.
    AnalysisConfig::quick().with_max_instrs(60_000)
}

#[test]
fn fused_equals_reference_for_all_machines_workloads_and_unrolling() {
    for name in WORKLOADS {
        let workload = clfp_workloads::by_name(name).expect(name);
        let program = workload.compile().expect(name);
        let mut vm = Vm::new(
            &program,
            VmOptions {
                mem_words: config().mem_words,
            },
        );
        let trace = vm.trace(config().max_instrs).unwrap();
        // One preparation serves both unroll settings (the benchmark
        // suite's path); it must agree with per-setting analyzers too.
        let shared = Analyzer::new(&program, config()).unwrap();
        let prepared = shared.prepare(&trace);

        for unrolling in [false, true] {
            let config = config().with_unrolling(unrolling);
            let analyzer = Analyzer::new(&program, config.clone()).unwrap();

            let fused = analyzer.run_on_trace(&trace);
            let dual = prepared.report_with_unrolling(unrolling);
            let reference = analyzer.run_on_trace_reference(&trace);

            let tag = format!("{name} unroll={unrolling}");
            for (label, got) in [("fused", &fused), ("dual-prepare", &dual)] {
                assert_eq!(got.seq_instrs, reference.seq_instrs, "{tag} {label}");
                assert_eq!(got.raw_instrs, reference.raw_instrs, "{tag} {label}");
                assert_eq!(got.branches, reference.branches, "{tag} {label}");
                assert_eq!(got.mispred_stats, reference.mispred_stats, "{tag} {label}");
                assert_eq!(got.results.len(), MachineKind::ALL.len(), "{tag} {label}");
                for (f, r) in got.results.iter().zip(&reference.results) {
                    assert_eq!(f.kind, r.kind, "{tag} {label}");
                    assert_eq!(f.cycles, r.cycles, "{tag} {label} {}", f.kind);
                    assert!(
                        (f.parallelism - r.parallelism).abs() < 1e-12,
                        "{tag} {label} {}: {} vs {}",
                        f.kind,
                        f.parallelism,
                        r.parallelism
                    );
                }
            }
        }
    }
}

/// The branch profile derived from the measured trace must be identical to
/// the profile a separate profiling execution would have collected — the
/// seed's two-execution path. The VM is deterministic and the paper
/// profiles "with the same inputs used in the simulations", so eliminating
/// the second execution is semantics-preserving.
#[test]
fn profile_from_trace_equals_separate_profiling_run() {
    for name in WORKLOADS {
        let workload = clfp_workloads::by_name(name).expect(name);
        let program = workload.compile().expect(name);
        let config = config();
        let options = VmOptions {
            mem_words: config.mem_words,
        };

        let separate =
            BranchProfile::collect_with(&program, config.max_instrs, options).unwrap();
        let mut vm = Vm::new(&program, options);
        let trace = vm.trace(config.max_instrs).unwrap();
        let derived = BranchProfile::from_trace(&program, &trace);

        let mut lhs: Vec<_> = separate.iter().collect();
        let mut rhs: Vec<_> = derived.iter().collect();
        lhs.sort_unstable();
        rhs.sort_unstable();
        assert_eq!(lhs, rhs, "{name}: profile counts diverge");
        assert_eq!(
            separate.total_branches(),
            derived.total_branches(),
            "{name}"
        );
    }
}

/// The fused analyzer end-to-end (`run`) must agree with preparing and
/// reporting explicitly, and the machine hierarchy must hold on its
/// output — guarding the public entry points around the fused path.
#[test]
fn run_prepare_report_and_hierarchy_agree() {
    let workload = clfp_workloads::by_name("qsort").unwrap();
    let program = workload.compile().unwrap();
    let config = config();
    let analyzer = Analyzer::new(&program, config.clone()).unwrap();

    let report = analyzer.run().unwrap();
    let mut vm = Vm::new(
        &program,
        VmOptions {
            mem_words: config.mem_words,
        },
    );
    let trace = vm.trace(config.max_instrs).unwrap();
    let explicit = analyzer.prepare(&trace).report();

    assert_eq!(report.seq_instrs, explicit.seq_instrs);
    assert_eq!(report.branches, explicit.branches);
    for (a, b) in report.results.iter().zip(&explicit.results) {
        assert_eq!(a.cycles, b.cycles, "{}", a.kind);
    }
    for kind in MachineKind::ALL {
        for &weaker in kind.dominates() {
            assert!(
                report.parallelism(weaker) <= report.parallelism(kind) + 1e-9,
                "{weaker} > {kind}"
            );
        }
    }
}
