//! Tracing must observe the pipeline, never steer it: with the span
//! recorder actively collecting (the `SpanTracer` path), every report —
//! scalar fused, lane kernel, streamed, and the multimode slices — must
//! be **bit-identical** to the untraced run (the `NullTracer` path the
//! gated free functions compile down to). One test body, not several:
//! the tracing switch is process-global, so the on/off comparison must
//! not interleave with other tests in this binary.

use clfp_limits::{AnalysisConfig, Analyzer, Report, StreamOptions};
use clfp_metrics::trace;
use clfp_vm::{Vm, VmOptions};

fn assert_reports_identical(got: &Report, want: &Report, tag: &str) {
    assert_eq!(got.seq_instrs, want.seq_instrs, "{tag}: seq_instrs");
    assert_eq!(got.raw_instrs, want.raw_instrs, "{tag}: raw_instrs");
    assert_eq!(got.branches, want.branches, "{tag}: branches");
    assert_eq!(got.mispred_stats, want.mispred_stats, "{tag}: mispred");
    assert_eq!(got.results.len(), want.results.len(), "{tag}: machines");
    for (g, w) in got.results.iter().zip(&want.results) {
        assert_eq!(g.kind, w.kind, "{tag}");
        assert_eq!(g.cycles, w.cycles, "{tag} {}", g.kind);
        assert_eq!(
            g.parallelism.to_bits(),
            w.parallelism.to_bits(),
            "{tag} {}: parallelism bits",
            g.kind
        );
    }
}

/// Every report the pipeline can produce for `program` under `config`:
/// (scalar unrolled, scalar rolled, lane unrolled, lane rolled,
/// streamed unrolled, streamed rolled).
fn all_reports(program: &clfp_isa::Program, config: &AnalysisConfig) -> Vec<Report> {
    let analyzer = Analyzer::new(program, config.clone()).unwrap();
    let mut vm = Vm::new(
        program,
        VmOptions {
            mem_words: config.mem_words,
        },
    );
    let trace = vm.trace(config.max_instrs).unwrap();
    let prepared = analyzer.prepare_multimode(&trace);
    let (lane_unrolled, lane_rolled) = prepared.report_both();
    let streamed = analyzer
        .run_streamed_on(&trace, StreamOptions::default())
        .unwrap();
    vec![
        prepared.report_with_unrolling_scalar(true),
        prepared.report_with_unrolling_scalar(false),
        lane_unrolled,
        lane_rolled,
        streamed.unrolled,
        streamed.rolled,
    ]
}

#[test]
fn tracing_does_not_perturb_reports() {
    let config = AnalysisConfig::quick().with_max_instrs(20_000);
    let workloads = ["qsort", "parse"];

    for name in workloads {
        let workload = clfp_workloads::by_name(name).unwrap();
        let program = workload.compile().unwrap();

        trace::set_tracing(false);
        trace::drain();
        let untraced = all_reports(&program, &config);
        assert!(
            trace::drain().records.is_empty(),
            "{name}: spans recorded while tracing was off"
        );

        trace::set_tracing(true);
        let traced = all_reports(&program, &config);
        trace::set_tracing(false);
        let log = trace::drain();

        // Both unroll settings for every configured machine, in every
        // pipeline, with an actively recording tracer.
        let machines = config.machines.len();
        assert_eq!(machines, 7, "quick config runs all 7 machines");
        for (i, (got, want)) in traced.iter().zip(&untraced).enumerate() {
            assert_eq!(got.results.len(), machines, "{name}: report {i}");
            assert_reports_identical(got, want, &format!("{name}: report {i}"));
        }

        // The traced run must actually have traced the pipeline it ran.
        for span in ["vm.trace", "prepare.build", "stream.pass2", "lane.group"] {
            assert!(
                log.spans().any(|s| s.name == span),
                "{name}: no `{span}` span in the traced run"
            );
        }
    }
}
