//! Exact-equivalence suite for the streaming chunked pipeline: analyzing
//! through [`Analyzer::run_streamed_on`] must reproduce the in-memory
//! path bit for bit — cycles, counts, branch statistics, misprediction
//! histograms, and the trace summary — for every machine model, both
//! unroll settings, and every chunk size, including chunks that straddle
//! call and branch boundaries and a parallel broadcast with forced worker
//! counts. Both pipelines run the same incremental builders (the
//! in-memory path is the one-big-chunk special case), so any divergence
//! here is carried-state lost at a chunk boundary.

use clfp_limits::{AnalysisConfig, Analyzer, MachineKind, Report, StreamOptions};
use clfp_vm::{ProgramSource, Vm, VmOptions};

/// The `fused` module's procedure-heavy exerciser: calls, CD inheritance,
/// loops, and memory traffic. Its 114-event trace is not a multiple of 7,
/// so the 7-event chunk walk crosses call and branch boundaries mid-chunk
/// and ends on a partial chunk.
const SOURCE: &str = r#"
    .text
    main:
        li r8, 8
    mloop:
        mv a0, r8
        call work
        sw v0, 0x1000(r0)
        lw r9, 0x1000(r0)
        addi r8, r8, -1
        bgt r8, r0, mloop
        halt
    work:
        addi sp, sp, -4
        sw ra, 0(sp)
        li v0, 0
        ble a0, r0, wend
        addi v0, a0, 5
    wend:
        lw ra, 0(sp)
        addi sp, sp, 4
        ret
    "#;

fn config() -> AnalysisConfig {
    AnalysisConfig::quick().with_max_instrs(60_000)
}

fn assert_reports_equal(got: &Report, want: &Report, tag: &str) {
    assert_eq!(got.seq_instrs, want.seq_instrs, "{tag}: seq_instrs");
    assert_eq!(got.raw_instrs, want.raw_instrs, "{tag}: raw_instrs");
    assert_eq!(got.branches, want.branches, "{tag}: branches");
    assert_eq!(got.mispred_stats, want.mispred_stats, "{tag}: mispred");
    assert_eq!(got.results.len(), want.results.len(), "{tag}: machines");
    for (g, w) in got.results.iter().zip(&want.results) {
        assert_eq!(g.kind, w.kind, "{tag}");
        assert_eq!(g.cycles, w.cycles, "{tag} {}", g.kind);
        assert!(
            (g.parallelism - w.parallelism).abs() < 1e-12,
            "{tag} {}: {} vs {}",
            g.kind,
            g.parallelism,
            w.parallelism
        );
    }
}

fn programs() -> Vec<(String, clfp_isa::Program)> {
    let mut programs = vec![("asm".to_string(), clfp_isa::assemble(SOURCE).unwrap())];
    for name in ["qsort", "scan"] {
        let workload = clfp_workloads::by_name(name).expect(name);
        programs.push((name.to_string(), workload.compile().expect(name)));
    }
    programs
}

#[test]
fn streamed_matches_in_memory_across_chunk_sizes() {
    for (name, program) in programs() {
        let analyzer = Analyzer::new(&program, config()).unwrap();
        let mut vm = Vm::new(
            &program,
            VmOptions {
                mem_words: config().mem_words,
            },
        );
        let trace = vm.trace(config().max_instrs).unwrap();
        if name == "asm" {
            assert_eq!(trace.len(), 114, "exerciser trace drifted");
            assert!(!trace.len().is_multiple_of(7), "want boundary-straddling chunks");
        }
        let prepared = analyzer.prepare(&trace);
        let want_unrolled = prepared.report_with_unrolling(true);
        let want_rolled = prepared.report_with_unrolling(false);
        let want_summary = trace.summarize(&program);

        for chunk in [1, 7, 4096, trace.len()] {
            let streamed = analyzer
                .run_streamed_on(
                    &trace,
                    StreamOptions {
                        chunk_events: chunk,
                        machine_threads: 1,
                        par_threshold_events: 0,
                    },
                )
                .unwrap();
            let tag = format!("{name} chunk={chunk}");
            assert_reports_equal(&streamed.unrolled, &want_unrolled, &format!("{tag} unrolled"));
            assert_reports_equal(&streamed.rolled, &want_rolled, &format!("{tag} rolled"));
            assert_eq!(streamed.summary, want_summary, "{tag}: summary");
        }
    }
}

#[test]
fn parallel_broadcast_matches_sequential() {
    for (name, program) in programs() {
        let analyzer = Analyzer::new(&program, config()).unwrap();
        let mut vm = Vm::new(
            &program,
            VmOptions {
                mem_words: config().mem_words,
            },
        );
        let trace = vm.trace(config().max_instrs).unwrap();
        // Small chunks force many broadcast handoffs.
        let sequential = analyzer
            .run_streamed_on(
                &trace,
                StreamOptions {
                    chunk_events: 512,
                    machine_threads: 1,
                    par_threshold_events: 0,
                },
            )
            .unwrap();
        // 4 and 3 workers: even and uneven splits of the 14 slots.
        for threads in [4, 3] {
            let parallel = analyzer
                .run_streamed_on(
                    &trace,
                    StreamOptions {
                        chunk_events: 512,
                        machine_threads: threads,
                        par_threshold_events: 0,
                    },
                )
                .unwrap();
            let tag = format!("{name} threads={threads}");
            assert_reports_equal(
                &parallel.unrolled,
                &sequential.unrolled,
                &format!("{tag} unrolled"),
            );
            assert_reports_equal(
                &parallel.rolled,
                &sequential.rolled,
                &format!("{tag} rolled"),
            );
            assert_eq!(parallel.summary, sequential.summary, "{tag}: summary");
        }
    }
}

#[test]
fn run_streamed_matches_run() {
    let workload = clfp_workloads::by_name("qsort").unwrap();
    let program = workload.compile().unwrap();
    for unrolling in [true, false] {
        let analyzer = Analyzer::new(&program, config().with_unrolling(unrolling)).unwrap();
        let want = analyzer.run().unwrap();
        let streamed = analyzer.run_streamed(StreamOptions::default()).unwrap();
        assert_reports_equal(
            streamed.report(unrolling),
            &want,
            &format!("unroll={unrolling}"),
        );
    }
}

#[test]
fn repeated_source_streams_to_exact_limit() {
    let program = clfp_isa::assemble(SOURCE).unwrap();
    let analyzer = Analyzer::new(&program, config()).unwrap();
    let options = VmOptions {
        mem_words: config().mem_words,
    };
    let one_run = Vm::new(&program, options).trace(u64::MAX).unwrap().len() as u64;
    // Not a multiple of the single-run length: the final repetition is cut
    // mid-execution, and chunks straddle the restart boundary.
    let limit = one_run * 3 + 11;
    let source = ProgramSource::new(&program, options, limit).repeated();
    let streamed = analyzer
        .run_streamed_on(
            &source,
            StreamOptions {
                chunk_events: 64,
                machine_threads: 1,
                par_threshold_events: 0,
            },
        )
        .unwrap();
    assert_eq!(streamed.unrolled.raw_instrs, limit);
    assert_eq!(streamed.summary.total, limit);
    // The machine hierarchy must hold on the synthesized stream too.
    for kind in MachineKind::ALL {
        for &weaker in kind.dominates() {
            assert!(
                streamed.unrolled.parallelism(weaker)
                    <= streamed.unrolled.parallelism(kind) + 1e-9,
                "{weaker} > {kind}"
            );
        }
    }
}
