//! Analyzer throughput: events/second for each machine-model pass over a
//! real workload trace. The per-machine spread shows what each
//! constraint's bookkeeping costs (ORACLE touches only the last-write
//! tables; the CD machines resolve reverse-dominance-frontier instances;
//! the SP machines add prediction ceilings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use clfp_limits::{AnalysisConfig, Analyzer, MachineKind};
use clfp_vm::{Vm, VmOptions};
use clfp_workloads::by_name;

fn machine_passes(c: &mut Criterion) {
    let workload = by_name("qsort").expect("workload exists");
    let program = workload.compile().expect("compiles");
    let config = AnalysisConfig {
        max_instrs: 200_000,
        ..AnalysisConfig::default()
    };
    let analyzer = Analyzer::new(&program, config.clone()).expect("analyzer");
    let mut vm = Vm::new(&program, VmOptions::default());
    let trace = vm.trace(config.max_instrs).expect("trace");

    let mut group = c.benchmark_group("machine_pass");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    for kind in MachineKind::ALL {
        let single = AnalysisConfig {
            machines: vec![kind],
            ..config.clone()
        };
        let analyzer_one = Analyzer::new(&program, single).expect("analyzer");
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| black_box(analyzer_one.run_on_trace(&trace)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("all_machines");
    group.throughput(Throughput::Elements(trace.len() as u64 * 7));
    group.sample_size(10);
    group.bench_function("qsort_200k_x7", |b| {
        b.iter(|| black_box(analyzer.run_on_trace(&trace)));
    });
    group.finish();
}

criterion_group!(benches, machine_passes);
criterion_main!(benches);
