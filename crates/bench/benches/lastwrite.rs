//! The paper's "large hash table ... to record writes to memory"
//! (Section 4.4): our open-addressing [`LastWriteTable`] against
//! `std::collections::HashMap`, on an address stream shaped like a real
//! trace (hot stack reuse + scattered heap).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::collections::HashMap;
use std::hint::black_box;

use clfp_limits::LastWriteTable;

/// A deterministic trace-shaped (addr, is_store) stream.
fn address_stream(n: usize) -> Vec<(u32, bool)> {
    let mut out = Vec::with_capacity(n);
    let mut state = 0x2545F491_4F6CDD1Du64;
    for i in 0..n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // 70% hot stack slots, 30% scattered heap words.
        let addr = if state % 10 < 7 {
            0x3FF000 + (state >> 8) as u32 % 64
        } else {
            (state >> 16) as u32 % 1_000_000
        };
        out.push((addr, i % 3 == 0));
    }
    out
}

fn last_write_tables(c: &mut Criterion) {
    let stream = address_stream(200_000);

    let mut group = c.benchmark_group("last_write_table");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(20);
    group.bench_function("clfp_open_addressing", |b| {
        b.iter(|| {
            let mut table = LastWriteTable::with_capacity(1 << 16);
            let mut acc = 0u64;
            for (i, &(addr, is_store)) in stream.iter().enumerate() {
                if is_store {
                    table.set(addr, i as u64);
                } else {
                    acc = acc.wrapping_add(table.get(addr));
                }
            }
            black_box(acc)
        });
    });
    group.bench_function("std_hashmap", |b| {
        b.iter(|| {
            let mut table: HashMap<u32, u64> = HashMap::with_capacity(1 << 16);
            let mut acc = 0u64;
            for (i, &(addr, is_store)) in stream.iter().enumerate() {
                if is_store {
                    table.insert(addr, i as u64);
                } else {
                    acc = acc.wrapping_add(table.get(&addr).copied().unwrap_or(0));
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, last_write_tables);
criterion_main!(benches);
