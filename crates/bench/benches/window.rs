//! Fetch-bandwidth sweep: the paper's limits assume an *unlimited*
//! instruction window ("we do not include any limitations on fetching
//! instructions", Section 5). This ablation shows what that idealization
//! is worth by capping the front end at W instructions per cycle and
//! watching the SP-CD-MF limit converge to the unlimited value as W grows
//! — and collapse toward W when the front end is narrow, which is where
//! real superscalars of the era lived.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clfp_limits::{AnalysisConfig, Analyzer, MachineKind};
use clfp_workloads::by_name;

fn fetch_window_sweep(c: &mut Criterion) {
    let workload = by_name("qsort").expect("workload exists");
    let program = workload.compile().expect("compiles");

    let mut group = c.benchmark_group("fetch_window");
    group.sample_size(10);
    for width in [Some(2u64), Some(4), Some(8), Some(32), Some(128), None] {
        let mut config = AnalysisConfig {
            max_instrs: 200_000,
            machines: vec![MachineKind::SpCdMf],
            ..AnalysisConfig::default()
        };
        config.fetch_bandwidth = width;
        let analyzer = Analyzer::new(&program, config).expect("analyzer");
        let report = analyzer.run().expect("runs");
        let label = width.map_or("unlimited".to_string(), |w| w.to_string());
        println!(
            "qsort/SP-CD-MF with fetch width {label:>9}: parallelism {:8.2}",
            report.parallelism(MachineKind::SpCdMf)
        );
        group.bench_with_input(BenchmarkId::from_parameter(&label), &width, |b, _| {
            b.iter(|| black_box(analyzer.run().unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, fetch_window_sweep);
criterion_main!(benches);
