//! The realism staircase: start from the paper's idealized SP-CD-MF limit
//! and add back, one at a time, the constraints the study deliberately
//! removed — finite fetch, no register renaming, imperfect memory
//! disambiguation, real latencies. Each step shows what that idealization
//! was worth, connecting the limit study's numbers to the performance of
//! buildable machines (the paper's own framing of "limits vs lower
//! bounds", Section 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clfp_limits::{AnalysisConfig, Analyzer, Latencies, MachineKind};
use clfp_vm::{Vm, VmOptions};
use clfp_workloads::by_name;

fn realism_staircase(c: &mut Criterion) {
    let workload = by_name("qsort").expect("workload exists");
    let program = workload.compile().expect("compiles");
    let mut vm = Vm::new(&program, VmOptions::default());
    let trace = vm.trace(200_000).expect("trace");

    let base = AnalysisConfig {
        max_instrs: 200_000,
        machines: vec![MachineKind::SpCdMf],
        ..AnalysisConfig::default()
    };
    let steps: Vec<(&str, AnalysisConfig)> = vec![
        ("ideal (paper)", base.clone()),
        ("+latencies", base.clone().with_latency(Latencies::realistic())),
        (
            "+cacheline disambiguation",
            base.clone()
                .with_latency(Latencies::realistic())
                .with_disambiguation_bytes(64),
        ),
        (
            "+no renaming",
            base.clone()
                .with_latency(Latencies::realistic())
                .with_disambiguation_bytes(64)
                .with_rename(false),
        ),
        (
            "+fetch width 8",
            base.clone()
                .with_latency(Latencies::realistic())
                .with_disambiguation_bytes(64)
                .with_rename(false)
                .with_fetch_bandwidth(8),
        ),
    ];

    let mut group = c.benchmark_group("realism_staircase");
    group.sample_size(10);
    for (label, config) in steps {
        let analyzer = Analyzer::new(&program, config).expect("analyzer");
        let report = analyzer.run_on_trace(&trace);
        println!(
            "qsort/SP-CD-MF {label:28}: parallelism {:8.2}",
            report.parallelism(MachineKind::SpCdMf)
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| black_box(analyzer.run_on_trace(&trace)))
        });
    }
    group.finish();
}

criterion_group!(benches, realism_staircase);
criterion_main!(benches);
