//! Substrate throughput: the tracing VM (pixie equivalent), the MiniC
//! compiler, the assembler, and the static analyses — the pieces the
//! study needs before any limit can be measured.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use clfp_cfg::StaticInfo;
use clfp_vm::{Vm, VmOptions};
use clfp_workloads::by_name;

fn vm_execution(c: &mut Criterion) {
    let workload = by_name("matmul").expect("workload exists");
    let program = workload.compile().expect("compiles");
    let limit = 200_000u64;

    let mut group = c.benchmark_group("vm");
    group.throughput(Throughput::Elements(limit));
    group.sample_size(10);
    group.bench_function("execute_200k", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, VmOptions::default());
            black_box(vm.run(limit).unwrap());
        });
    });
    group.bench_function("trace_200k", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, VmOptions::default());
            black_box(vm.trace(limit).unwrap());
        });
    });
    group.finish();
}

fn toolchain(c: &mut Criterion) {
    let workload = by_name("eventsim").expect("workload exists");
    let source = workload.source();
    let program = workload.compile().expect("compiles");

    let mut group = c.benchmark_group("toolchain");
    group.bench_function("compile_eventsim", |b| {
        b.iter(|| black_box(clfp_lang::compile(black_box(source)).unwrap()));
    });
    group.bench_function("static_analysis_eventsim", |b| {
        b.iter(|| black_box(StaticInfo::analyze(black_box(&program))));
    });
    let asm = clfp_lang::compile_with_listing(source).unwrap().1;
    group.bench_function("assemble_eventsim", |b| {
        b.iter(|| black_box(clfp_isa::assemble(black_box(&asm)).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, vm_execution, toolchain);
criterion_main!(benches);
