//! Design-choice ablations called out in DESIGN.md:
//!
//! * predictor sensitivity of the SP machine (profile vs BTFN vs bimodal
//!   vs gshare vs always-taken) — the paper claims dynamic prediction
//!   performs like its profile scheme;
//! * inlining on/off — how much the stack-pointer chain costs;
//! * running one machine vs all seven over the same trace.
//!
//! These are *measurement* benches: the interesting output is printed once
//! per run (the parallelism numbers), while criterion times the passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clfp_limits::{AnalysisConfig, Analyzer, MachineKind, PredictorChoice};
use clfp_vm::{Vm, VmOptions};
use clfp_workloads::by_name;

fn predictor_sensitivity(c: &mut Criterion) {
    let workload = by_name("logic").expect("workload exists");
    let program = workload.compile().expect("compiles");
    let mut vm = Vm::new(&program, VmOptions::default());
    let trace = vm.trace(150_000).expect("trace");

    let predictors = [
        PredictorChoice::Profile,
        PredictorChoice::Btfn,
        PredictorChoice::AlwaysTaken,
        PredictorChoice::Bimodal { entries: 4096 },
        PredictorChoice::Gshare {
            entries: 4096,
            history_bits: 8,
        },
    ];
    let mut group = c.benchmark_group("predictor_sensitivity_sp");
    group.sample_size(10);
    for predictor in predictors {
        let config = AnalysisConfig {
            max_instrs: 150_000,
            machines: vec![MachineKind::Sp],
            predictor,
            ..AnalysisConfig::default()
        };
        let analyzer = Analyzer::new(&program, config).expect("analyzer");
        let report = analyzer.run_on_trace(&trace);
        println!(
            "logic/SP with {:12}: accuracy {:5.2}%, parallelism {:6.2}",
            predictor.name(),
            report.branches.prediction_rate(),
            report.parallelism(MachineKind::Sp)
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(predictor.name()),
            &predictor,
            |b, _| b.iter(|| black_box(analyzer.run_on_trace(&trace))),
        );
    }
    group.finish();
}

fn inlining_ablation(c: &mut Criterion) {
    let workload = by_name("parse").expect("workload exists");
    let program = workload.compile().expect("compiles");
    let mut vm = Vm::new(&program, VmOptions::default());
    let trace = vm.trace(150_000).expect("trace");

    let mut group = c.benchmark_group("inlining_ablation");
    group.sample_size(10);
    for (label, inlining) in [("perfect_inlining", true), ("no_inlining", false)] {
        let config = AnalysisConfig {
            max_instrs: 150_000,
            inlining,
            machines: vec![MachineKind::Oracle],
            ..AnalysisConfig::default()
        };
        let analyzer = Analyzer::new(&program, config).expect("analyzer");
        let report = analyzer.run_on_trace(&trace);
        println!(
            "parse/ORACLE {label}: parallelism {:8.2} ({} instrs on the clock)",
            report.parallelism(MachineKind::Oracle),
            report.seq_instrs
        );
        group.bench_function(label, |b| {
            b.iter(|| black_box(analyzer.run_on_trace(&trace)))
        });
    }
    group.finish();
}

criterion_group!(benches, predictor_sensitivity, inlining_ablation);
criterion_main!(benches);
