//! Guarded-instructions ablation (the paper's Section 6): if-converting
//! guarded assignments to conditional moves removes hard-to-predict
//! branches, lengthening the distance between mispredictions and lifting
//! the SP machines — at the cost of extra data dependences (a cmov reads
//! its destination).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clfp_lang::CodegenOptions;
use clfp_limits::{AnalysisConfig, Analyzer, MachineKind};
use clfp_workloads::by_name;

fn guarded_instructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("guarded_instructions");
    group.sample_size(10);
    for name in ["scan", "logic"] {
        let workload = by_name(name).expect("workload exists");
        for (label, if_conversion) in [("branches", false), ("guarded", true)] {
            let program = workload
                .compile_with(CodegenOptions { if_conversion, ..CodegenOptions::default() })
                .expect("compiles");
            let config = AnalysisConfig {
                max_instrs: 300_000,
                machines: vec![MachineKind::Sp, MachineKind::SpCd, MachineKind::SpCdMf],
                ..AnalysisConfig::default()
            };
            let analyzer = Analyzer::new(&program, config).expect("analyzer");
            let report = analyzer.run().expect("runs");
            let within100 = report
                .mispred_stats
                .as_ref()
                .map(|s| s.fraction_within(100))
                .unwrap_or(1.0);
            println!(
                "{name}/{label}: {} branches, {:.2}% predicted, {:.0}% mispredictions within \
                 100 instrs, SP {:.2} SP-CD {:.2} SP-CD-MF {:.2}",
                report.branches.cond_branches,
                report.branches.prediction_rate(),
                within100 * 100.0,
                report.parallelism(MachineKind::Sp),
                report.parallelism(MachineKind::SpCd),
                report.parallelism(MachineKind::SpCdMf),
            );
            group.bench_function(format!("{name}_{label}"), |b| {
                b.iter(|| black_box(analyzer.run().unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, guarded_instructions);
criterion_main!(benches);
