//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! regen                      # all tables and figures, default trace cap
//! regen --table 3            # only Table 3
//! regen --figure 6           # only Figure 6
//! regen --max-instr 500000   # cap traces at 500k instructions
//! regen --out results/       # also write each section as markdown
//! regen --timing             # time lane vs scalar fused vs reference
//!                            # pipelines, write BENCH_suite.json
//! regen --scaling            # stream qsort+stencil at 2M..100M instrs,
//!                            # write BENCH_scaling.json (wall + peak RSS)
//! regen --lint               # lint + cross-check the suite, write
//!                            # results/lint_suite.json, fail on findings
//! regen --alias              # sweep memory disambiguation (perfect vs
//!                            # static vs none), write
//!                            # results/disambiguation.md, fail if the
//!                            # alias soundness gate trips
//! regen --valuepred          # sweep value prediction (off / last-value /
//!                            # stride / perfect), write
//!                            # results/value_prediction.md, fail if the
//!                            # monotonicity gate trips
//! regen --metrics            # per-machine execution metrics, write
//!                            # results/metrics_suite.json + attribution.md
//! regen --trace trace.json   # run the timed suite with span tracing on,
//!                            # write a Perfetto/chrome://tracing JSON plus
//!                            # results/pipeline_profile.md
//! regen --check-perf         # run the timed suite and gate its walls
//!                            # against the committed BENCH_suite.json
//!                            # (--perf-tolerance PCT, default 50); exit 4
//!                            # on regression
//! regen --no-cache           # skip the on-disk trace cache, always re-execute
//! regen --force              # overwrite results from a different config
//! ```
//!
//! By default regen installs the on-disk trace cache
//! (`$CLFP_CACHE_DIR` or `target/clfp-cache`): the first run of a
//! workload at a given trace cap executes the VM and stores the raw
//! trace; later runs — including every suite in the same invocation and
//! every future invocation — load it back from disk, skipping VM
//! execution and branch profiling entirely. Cache files are keyed by
//! program fingerprint, trace cap, and trace-format version, and are
//! re-validated on every read, so a stale or corrupt file is rebuilt
//! rather than trusted. `--no-cache` restores the always-re-execute
//! behaviour (the reference cost baseline never reads the cache either
//! way).
//!
//! Every artifact regen writes is stamped with a [`RunManifest`] recording
//! the exact configuration, git revision, and host that produced it.
//! Overwriting a result that carries a *different* config hash (or none at
//! all) is refused unless `--force` is given, so stale or mixed-provenance
//! results cannot silently accumulate in `results/`.

use std::process::ExitCode;

use clfp_bench::{
    check_perf, figure4, figure5, figure6, figure7, pipeline_profile_md, run_alias_suite,
    run_lint_suite, run_metrics_suite, run_scaling_suite, run_suite, run_suite_timed,
    run_valuepred_suite, static_inventory, suite_manifest, table1, table2, table3, table4,
};
use clfp_limits::{AnalysisConfig, StreamOptions};
use clfp_metrics::RunManifest;
use clfp_vm::TraceCache;

struct Args {
    table: Option<u32>,
    figure: Option<u32>,
    max_instrs: u64,
    out: Option<std::path::PathBuf>,
    timing: bool,
    scaling: bool,
    lint: bool,
    alias: bool,
    valuepred: bool,
    metrics: bool,
    no_cache: bool,
    force: bool,
    trace: Option<std::path::PathBuf>,
    check_perf: bool,
    perf_tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        table: None,
        figure: None,
        max_instrs: 2_000_000,
        out: None,
        timing: false,
        scaling: false,
        lint: false,
        alias: false,
        valuepred: false,
        metrics: false,
        no_cache: false,
        force: false,
        trace: None,
        check_perf: false,
        perf_tolerance: 50.0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--table" => {
                let value = iter.next().ok_or("--table needs a number")?;
                args.table = Some(value.parse().map_err(|_| format!("bad table `{value}`"))?);
            }
            "--figure" => {
                let value = iter.next().ok_or("--figure needs a number")?;
                args.figure = Some(value.parse().map_err(|_| format!("bad figure `{value}`"))?);
            }
            "--max-instr" | "--max-instrs" => {
                let value = iter.next().ok_or("--max-instr needs a number")?;
                args.max_instrs = value
                    .parse()
                    .map_err(|_| format!("bad instruction cap `{value}`"))?;
            }
            "--out" => {
                let value = iter.next().ok_or("--out needs a directory")?;
                args.out = Some(value.into());
            }
            "--timing" => {
                args.timing = true;
            }
            "--scaling" => {
                args.scaling = true;
            }
            "--lint" => {
                args.lint = true;
            }
            "--alias" => {
                args.alias = true;
            }
            "--valuepred" => {
                args.valuepred = true;
            }
            "--metrics" => {
                args.metrics = true;
            }
            "--no-cache" => {
                args.no_cache = true;
            }
            "--force" => {
                args.force = true;
            }
            "--trace" => {
                let value = iter.next().ok_or("--trace needs an output file")?;
                args.trace = Some(value.into());
            }
            "--check-perf" => {
                args.check_perf = true;
            }
            "--perf-tolerance" => {
                let value = iter.next().ok_or("--perf-tolerance needs a percentage")?;
                args.perf_tolerance = value
                    .parse()
                    .map_err(|_| format!("bad tolerance `{value}`"))?;
                if args.perf_tolerance < 0.0 || args.perf_tolerance.is_nan() {
                    return Err(format!("bad tolerance `{value}`"));
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: regen [--table N] [--figure N] [--max-instrs M] [--out DIR]\n\
                     \x20            [--timing] [--scaling] [--lint] [--alias] [--valuepred]\n\
                     \x20            [--metrics] [--trace FILE] [--check-perf]\n\
                     \x20            [--perf-tolerance PCT] [--no-cache] [--force]\n\
                     Regenerates the paper's tables (1-4) and figures (4-7); with\n\
                     --out, also writes each as a markdown file under DIR, and\n\
                     --max-instrs M caps every measured trace at M dynamic\n\
                     instructions (default 2000000). With\n\
                     --timing, instead times the full-suite regeneration (fused\n\
                     analyzer vs the reference pipeline vs the streaming chunked\n\
                     pipeline, per-stage wall times) and\n\
                     writes BENCH_suite.json to DIR (or the current directory).\n\
                     With --scaling, instead streams qsort and stencil through the\n\
                     chunked pipeline at 2M/10M/50M/100M dynamic instructions\n\
                     (repeating each deterministic execution to length), records\n\
                     wall time and peak RSS per point, and writes\n\
                     BENCH_scaling.json to DIR (or the current directory).\n\
                     With --lint, instead lints + cross-checks the suite, writes\n\
                     lint_suite.json to DIR (default results/), and fails on any\n\
                     unwaived diagnostic. With --alias, instead analyzes every\n\
                     workload under all three memory-disambiguation modes\n\
                     (perfect / static alias classes / none), writes\n\
                     disambiguation.md to DIR (default results/), and fails if\n\
                     any dynamic conflict lands on a statically no-alias pair or\n\
                     the static-mode pipelines diverge. With --valuepred, instead\n\
                     analyzes every workload under all four value-prediction modes\n\
                     (off / last-value / stride / perfect oracle), writes\n\
                     value_prediction.md to DIR (default results/), and fails if a\n\
                     stronger mode lengthens any schedule or the stride-mode\n\
                     pipelines diverge. With --metrics, instead collects\n\
                     per-machine execution metrics (cycle occupancy, critical-path\n\
                     attribution, binding-edge counters) and writes\n\
                     metrics_suite.json + attribution.md to DIR (default results/).\n\
                     With --trace FILE, runs the timed suite with span tracing on\n\
                     and writes FILE as Chrome trace-event JSON (load it in\n\
                     ui.perfetto.dev) plus pipeline_profile.md to DIR (default\n\
                     results/): per-stage and per-lane-group wall-time attribution.\n\
                     With --check-perf, runs the timed suite and compares its\n\
                     pipeline walls against the BENCH_suite.json in DIR (default\n\
                     the current directory); a wall more than --perf-tolerance\n\
                     percent (default 50) over the baseline, or any failed\n\
                     bit-identity gate, exits with status 4.\n\
                     Raw traces are cached on disk under $CLFP_CACHE_DIR (default\n\
                     target/clfp-cache) keyed by program, trace cap, and format\n\
                     version, so reruns skip VM execution and branch profiling;\n\
                     --no-cache always re-executes instead (manage the cache with\n\
                     `clfp cache`).\n\
                     Every artifact carries a run manifest; regen refuses to\n\
                     overwrite a result produced under a different configuration\n\
                     unless --force is given."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Writes `contents` to `path` unless an existing file there was produced
/// under a different (or unknown) configuration and `force` is off.
/// Returns false when the write was refused or failed.
fn write_guarded(
    path: &std::path::Path,
    contents: &str,
    current_hash: &str,
    force: bool,
) -> bool {
    if !force {
        if let Ok(existing) = std::fs::read_to_string(path) {
            match RunManifest::config_hash_of(&existing) {
                Some(hash) if hash == current_hash => {}
                Some(hash) => {
                    eprintln!(
                        "regen: refusing to overwrite {} (existing config hash {hash}, \
                         this run is {current_hash}; pass --force to override)",
                        path.display()
                    );
                    return false;
                }
                None => {
                    eprintln!(
                        "regen: refusing to overwrite {} (no run manifest — unknown \
                         provenance; pass --force to override)",
                        path.display()
                    );
                    return false;
                }
            }
        }
    }
    if let Err(err) = std::fs::write(path, contents) {
        eprintln!("regen: cannot write {}: {err}", path.display());
        return false;
    }
    true
}

/// Prints a section and, when `--out` is set, writes it — stamped with the
/// run manifest — under DIR. Returns false if the write was refused/failed.
fn emit(args: &Args, manifest: &RunManifest, name: &str, content: &str) -> bool {
    println!("{content}");
    let Some(dir) = &args.out else { return true };
    if let Err(err) = std::fs::create_dir_all(dir) {
        eprintln!("regen: cannot create {}: {err}", dir.display());
        return false;
    }
    let stamped = format!("{}\n{content}", manifest.to_markdown_header());
    write_guarded(
        &dir.join(format!("{name}.md")),
        &stamped,
        &manifest.config_hash,
        args.force,
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("regen: {message}");
            return ExitCode::FAILURE;
        }
    };

    clfp_bench::set_trace_cache(if args.no_cache {
        None
    } else {
        Some(TraceCache::new(TraceCache::default_dir()))
    });

    let config = AnalysisConfig {
        max_instrs: args.max_instrs,
        ..AnalysisConfig::default()
    };
    let manifest = suite_manifest(&config);

    if args.metrics {
        eprintln!(
            "collecting metrics: 10 workloads x 7 machines, recording sink (trace cap {})...",
            args.max_instrs
        );
        let suite = match run_metrics_suite(&config) {
            Ok(suite) => suite,
            Err(err) => {
                eprintln!("regen: metrics suite failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        let dir = args
            .out
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("results"));
        if let Err(err) = std::fs::create_dir_all(&dir) {
            eprintln!("regen: cannot create {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
        let attribution = format!(
            "{}\n{}",
            suite.manifest.to_markdown_header(),
            suite.attribution_md()
        );
        println!("{}", suite.attribution_md());
        let mut ok = true;
        for (file, contents) in [
            ("metrics_suite.json", suite.to_json()),
            ("attribution.md", attribution),
        ] {
            let path = dir.join(file);
            if write_guarded(&path, &contents, &manifest.config_hash, args.force) {
                eprintln!("wrote {}", path.display());
            } else {
                ok = false;
            }
        }
        return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if args.lint {
        eprintln!(
            "linting 10 workloads x 2 unroll settings (trace cap {})...",
            args.max_instrs
        );
        let suite = match run_lint_suite(&config) {
            Ok(suite) => suite,
            Err(err) => {
                eprintln!("regen: lint suite failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", suite.summary());
        let dir = args
            .out
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("results"));
        let path = dir.join("lint_suite.json");
        if let Err(err) = std::fs::create_dir_all(&dir) {
            eprintln!("regen: cannot create {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
        if !write_guarded(&path, &suite.to_json(), &manifest.config_hash, args.force) {
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        return if suite.is_clean() {
            ExitCode::SUCCESS
        } else {
            eprintln!("regen: outstanding lint diagnostics");
            ExitCode::FAILURE
        };
    }

    if args.alias {
        eprintln!(
            "sweeping memory disambiguation: 10 workloads x 7 machines x 3 modes \
             (trace cap {})...",
            args.max_instrs
        );
        let suite = match run_alias_suite(&config) {
            Ok(suite) => suite,
            Err(err) => {
                eprintln!("regen: alias suite failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", suite.disambiguation_md());
        let dir = args
            .out
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("results"));
        if let Err(err) = std::fs::create_dir_all(&dir) {
            eprintln!("regen: cannot create {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("disambiguation.md");
        let stamped = format!(
            "{}\n{}",
            suite.manifest.to_markdown_header(),
            suite.disambiguation_md()
        );
        if !write_guarded(&path, &stamped, &manifest.config_hash, args.force) {
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        return if suite.is_sound() && suite.pipelines_agree() {
            ExitCode::SUCCESS
        } else {
            eprintln!("regen: alias soundness or pipeline-agreement gate failed");
            ExitCode::FAILURE
        };
    }

    if args.valuepred {
        eprintln!(
            "sweeping value prediction: 10 workloads x 7 machines x 4 modes \
             (trace cap {})...",
            args.max_instrs
        );
        let suite = match run_valuepred_suite(&config) {
            Ok(suite) => suite,
            Err(err) => {
                eprintln!("regen: value-prediction suite failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", suite.value_prediction_md());
        let dir = args
            .out
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("results"));
        if let Err(err) = std::fs::create_dir_all(&dir) {
            eprintln!("regen: cannot create {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("value_prediction.md");
        let stamped = format!(
            "{}\n{}",
            suite.manifest.to_markdown_header(),
            suite.value_prediction_md()
        );
        if !write_guarded(&path, &stamped, &manifest.config_hash, args.force) {
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        return if suite.is_monotone() && suite.pipelines_agree() {
            ExitCode::SUCCESS
        } else {
            eprintln!("regen: value-prediction monotonicity or pipeline-agreement gate failed");
            ExitCode::FAILURE
        };
    }

    if args.scaling {
        const WORKLOADS: [&str; 2] = ["qsort", "stencil"];
        const POINTS: [u64; 4] = [2_000_000, 10_000_000, 50_000_000, 100_000_000];
        eprintln!(
            "streaming scaling: {WORKLOADS:?} at {POINTS:?} dynamic instrs \
             (repeated executions, chunked pipeline)..."
        );
        let suite = match run_scaling_suite(&config, &WORKLOADS, &POINTS, StreamOptions::default())
        {
            Ok(suite) => suite,
            Err(err) => {
                eprintln!("regen: scaling suite failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", suite.summary());
        let path = args
            .out
            .as_deref()
            .unwrap_or(std::path::Path::new("."))
            .join("BENCH_scaling.json");
        if let Some(dir) = args.out.as_deref() {
            if let Err(err) = std::fs::create_dir_all(dir) {
                eprintln!("regen: cannot create {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        if !write_guarded(&path, &suite.to_json(), &manifest.config_hash, args.force) {
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        let clean = suite
            .points
            .iter()
            .all(|p| p.matches_inmemory != Some(false));
        return if clean {
            ExitCode::SUCCESS
        } else {
            eprintln!("regen: streaming diverged from the in-memory pipeline");
            ExitCode::FAILURE
        };
    }

    if args.timing || args.trace.is_some() || args.check_perf {
        eprintln!(
            "timing full-suite regen, lane vs scalar fused vs reference pipeline (trace cap {})...",
            args.max_instrs
        );
        // --trace turns the span recorder on for exactly the suite run it
        // exports; the drained log feeds both the Perfetto JSON and the
        // pipeline-profile attribution table.
        if args.trace.is_some() {
            clfp_metrics::trace::set_tracing(true);
        }
        let timing = match run_suite_timed(&config) {
            Ok(timing) => timing,
            Err(err) => {
                clfp_metrics::trace::set_tracing(false);
                eprintln!("regen: timing suite failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        let log = args.trace.is_some().then(|| {
            clfp_metrics::trace::set_tracing(false);
            clfp_metrics::trace::drain()
        });
        println!("{}", timing.summary());
        let mut ok = true;

        if let (Some(trace_path), Some(log)) = (args.trace.as_deref(), log.as_ref()) {
            if let Err(err) =
                std::fs::write(trace_path, clfp_metrics::trace::chrome_trace_json(log))
            {
                eprintln!("regen: cannot write {}: {err}", trace_path.display());
                ok = false;
            } else {
                eprintln!(
                    "wrote {} ({} spans; open in ui.perfetto.dev or chrome://tracing)",
                    trace_path.display(),
                    log.spans().count()
                );
            }
            let dir = args
                .out
                .clone()
                .unwrap_or_else(|| std::path::PathBuf::from("results"));
            if let Err(err) = std::fs::create_dir_all(&dir) {
                eprintln!("regen: cannot create {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
            let profile_path = dir.join("pipeline_profile.md");
            let stamped = format!(
                "{}\n{}",
                timing.manifest.to_markdown_header(),
                pipeline_profile_md(&timing, log)
            );
            if write_guarded(&profile_path, &stamped, &manifest.config_hash, args.force) {
                eprintln!("wrote {}", profile_path.display());
            } else {
                ok = false;
            }
        }

        // Gate before any baseline write: a regressed run must never
        // replace the baseline it just failed against.
        if args.check_perf {
            let baseline_path = args
                .out
                .as_deref()
                .unwrap_or(std::path::Path::new("."))
                .join("BENCH_suite.json");
            let baseline = match std::fs::read_to_string(&baseline_path) {
                Ok(contents) => contents,
                Err(err) => {
                    eprintln!(
                        "regen: cannot read baseline {}: {err}",
                        baseline_path.display()
                    );
                    return ExitCode::FAILURE;
                }
            };
            match check_perf(&timing, &baseline, args.perf_tolerance) {
                Ok(check) => {
                    for line in &check.lines {
                        eprintln!("perf: {line}");
                    }
                    if !check.passed() {
                        for regression in &check.regressions {
                            eprintln!("regen: perf regression: {regression}");
                        }
                        return ExitCode::from(4);
                    }
                    eprintln!(
                        "perf gate passed against {} (tolerance +{:.0}%)",
                        baseline_path.display(),
                        args.perf_tolerance
                    );
                }
                Err(message) => {
                    eprintln!("regen: perf baseline unusable: {message}");
                    return ExitCode::FAILURE;
                }
            }
        }

        if args.timing {
            let path = args
                .out
                .as_deref()
                .unwrap_or(std::path::Path::new("."))
                .join("BENCH_suite.json");
            if let Some(dir) = args.out.as_deref() {
                if let Err(err) = std::fs::create_dir_all(dir) {
                    eprintln!("regen: cannot create {}: {err}", dir.display());
                    return ExitCode::FAILURE;
                }
            }
            if !write_guarded(&path, &timing.to_json(), &manifest.config_hash, args.force) {
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
        return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let wants = |kind: &str, n: u32| -> bool {
        match (kind, args.table, args.figure) {
            (_, None, None) => true,
            ("table", Some(t), _) => t == n,
            ("figure", _, Some(f)) => f == n,
            _ => false,
        }
    };

    let mut ok = true;
    if wants("table", 1) {
        ok &= emit(&args, &manifest, "table1", &table1());
        ok &= emit(&args, &manifest, "inventory", &static_inventory());
    }

    let needs_runs = wants("table", 2)
        || wants("table", 3)
        || wants("table", 4)
        || wants("figure", 4)
        || wants("figure", 5)
        || wants("figure", 6)
        || wants("figure", 7);
    if !needs_runs {
        return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    eprintln!(
        "running 10 workloads x 7 machines x 2 unroll settings (trace cap {})...",
        args.max_instrs
    );
    let start = std::time::Instant::now();
    let reports = match run_suite(&config) {
        Ok(reports) => reports,
        Err(err) => {
            eprintln!("regen: suite failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("suite analyzed in {:.1}s", start.elapsed().as_secs_f64());
    eprintln!();

    for r in &reports {
        eprintln!(
            "  {:10} raw trace {:>9} instrs, {:>9} after inlining/unrolling",
            r.workload.name, r.unrolled.raw_instrs, r.unrolled.seq_instrs
        );
    }
    eprintln!();

    if wants("table", 2) {
        ok &= emit(&args, &manifest, "table2", &table2(&reports));
    }
    if wants("table", 3) {
        ok &= emit(&args, &manifest, "table3", &table3(&reports));
    }
    if wants("table", 4) {
        ok &= emit(&args, &manifest, "table4", &table4(&reports));
    }
    if wants("figure", 4) {
        ok &= emit(&args, &manifest, "figure4", &figure4(&reports));
    }
    if wants("figure", 5) {
        ok &= emit(&args, &manifest, "figure5", &figure5(&reports));
    }
    if wants("figure", 6) {
        ok &= emit(&args, &manifest, "figure6", &figure6(&reports));
    }
    if wants("figure", 7) {
        ok &= emit(&args, &manifest, "figure7", &figure7(&reports));
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
