//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! regen                      # all tables and figures, default trace cap
//! regen --table 3            # only Table 3
//! regen --figure 6           # only Figure 6
//! regen --max-instr 500000   # cap traces at 500k instructions
//! regen --out results/       # also write each section as markdown
//! regen --timing             # time fused vs reference pipeline,
//!                            # write BENCH_suite.json
//! regen --lint               # lint + cross-check the suite, write
//!                            # results/lint_suite.json, fail on findings
//! ```

use std::process::ExitCode;

use clfp_bench::{
    figure4, figure5, figure6, figure7, run_lint_suite, run_suite, run_suite_timed,
    static_inventory, table1, table2, table3, table4,
};
use clfp_limits::AnalysisConfig;

struct Args {
    table: Option<u32>,
    figure: Option<u32>,
    max_instrs: u64,
    out: Option<std::path::PathBuf>,
    timing: bool,
    lint: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        table: None,
        figure: None,
        max_instrs: 2_000_000,
        out: None,
        timing: false,
        lint: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--table" => {
                let value = iter.next().ok_or("--table needs a number")?;
                args.table = Some(value.parse().map_err(|_| format!("bad table `{value}`"))?);
            }
            "--figure" => {
                let value = iter.next().ok_or("--figure needs a number")?;
                args.figure = Some(value.parse().map_err(|_| format!("bad figure `{value}`"))?);
            }
            "--max-instr" | "--max-instrs" => {
                let value = iter.next().ok_or("--max-instr needs a number")?;
                args.max_instrs = value
                    .parse()
                    .map_err(|_| format!("bad instruction cap `{value}`"))?;
            }
            "--out" => {
                let value = iter.next().ok_or("--out needs a directory")?;
                args.out = Some(value.into());
            }
            "--timing" => {
                args.timing = true;
            }
            "--lint" => {
                args.lint = true;
            }
            "--help" | "-h" => {
                println!(
                    "usage: regen [--table N] [--figure N] [--max-instr M] [--out DIR] [--timing] [--lint]\n\
                     Regenerates the paper's tables (1-4) and figures (4-7); with\n\
                     --out, also writes each as a markdown file under DIR. With\n\
                     --timing, instead times the full-suite regeneration (fused\n\
                     analyzer vs the reference pipeline, per-stage wall times) and\n\
                     writes BENCH_suite.json to DIR (or the current directory).\n\
                     With --lint, instead lints + cross-checks the suite, writes\n\
                     lint_suite.json to DIR (default results/), and fails on any\n\
                     unwaived diagnostic."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Prints a section and, when `--out` is set, writes it to a file too.
fn emit(out: &Option<std::path::PathBuf>, name: &str, content: &str) {
    println!("{content}");
    if let Some(dir) = out {
        if let Err(err) = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(dir.join(format!("{name}.md")), content))
        {
            eprintln!("regen: cannot write {name}.md: {err}");
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("regen: {message}");
            return ExitCode::FAILURE;
        }
    };

    if args.lint {
        let config = AnalysisConfig {
            max_instrs: args.max_instrs,
            ..AnalysisConfig::default()
        };
        eprintln!(
            "linting 10 workloads x 2 unroll settings (trace cap {})...",
            args.max_instrs
        );
        let suite = match run_lint_suite(&config) {
            Ok(suite) => suite,
            Err(err) => {
                eprintln!("regen: lint suite failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", suite.summary());
        let dir = args
            .out
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("results"));
        let path = dir.join("lint_suite.json");
        if let Err(err) = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, suite.to_json()))
        {
            eprintln!("regen: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        return if suite.is_clean() {
            ExitCode::SUCCESS
        } else {
            eprintln!("regen: outstanding lint diagnostics");
            ExitCode::FAILURE
        };
    }

    if args.timing {
        let config = AnalysisConfig {
            max_instrs: args.max_instrs,
            ..AnalysisConfig::default()
        };
        eprintln!(
            "timing full-suite regen, fused vs reference pipeline (trace cap {})...",
            args.max_instrs
        );
        let timing = match run_suite_timed(&config) {
            Ok(timing) => timing,
            Err(err) => {
                eprintln!("regen: timing suite failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", timing.summary());
        let path = args
            .out
            .as_deref()
            .unwrap_or(std::path::Path::new("."))
            .join("BENCH_suite.json");
        if let Some(dir) = args.out.as_deref() {
            if let Err(err) = std::fs::create_dir_all(dir) {
                eprintln!("regen: cannot create {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(err) = std::fs::write(&path, timing.to_json()) {
            eprintln!("regen: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    let wants = |kind: &str, n: u32| -> bool {
        match (kind, args.table, args.figure) {
            (_, None, None) => true,
            ("table", Some(t), _) => t == n,
            ("figure", _, Some(f)) => f == n,
            _ => false,
        }
    };

    if wants("table", 1) {
        emit(&args.out, "table1", &table1());
        emit(&args.out, "inventory", &static_inventory());
    }

    let needs_runs = wants("table", 2)
        || wants("table", 3)
        || wants("table", 4)
        || wants("figure", 4)
        || wants("figure", 5)
        || wants("figure", 6)
        || wants("figure", 7);
    if !needs_runs {
        return ExitCode::SUCCESS;
    }

    let config = AnalysisConfig {
        max_instrs: args.max_instrs,
        ..AnalysisConfig::default()
    };
    eprintln!(
        "running 10 workloads x 7 machines x 2 unroll settings (trace cap {})...",
        args.max_instrs
    );
    let start = std::time::Instant::now();
    let reports = match run_suite(&config) {
        Ok(reports) => reports,
        Err(err) => {
            eprintln!("regen: suite failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("suite analyzed in {:.1}s", start.elapsed().as_secs_f64());
    eprintln!();

    for r in &reports {
        eprintln!(
            "  {:10} raw trace {:>9} instrs, {:>9} after inlining/unrolling",
            r.workload.name, r.unrolled.raw_instrs, r.unrolled.seq_instrs
        );
    }
    eprintln!();

    if wants("table", 2) {
        emit(&args.out, "table2", &table2(&reports));
    }
    if wants("table", 3) {
        emit(&args.out, "table3", &table3(&reports));
    }
    if wants("table", 4) {
        emit(&args.out, "table4", &table4(&reports));
    }
    if wants("figure", 4) {
        emit(&args.out, "figure4", &figure4(&reports));
    }
    if wants("figure", 5) {
        emit(&args.out, "figure5", &figure5(&reports));
    }
    if wants("figure", 6) {
        emit(&args.out, "figure6", &figure6(&reports));
    }
    if wants("figure", 7) {
        emit(&args.out, "figure7", &figure7(&reports));
    }
    ExitCode::SUCCESS
}
