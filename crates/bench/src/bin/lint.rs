//! Lints the workload suite and cross-checks every trace against the
//! static model, for both unroll settings.
//!
//! ```text
//! lint                                 # full suite, default trace cap
//! lint --max-instr 500000              # cap traces at 500k instructions
//! lint --out results/lint_suite.json   # where to write the JSON record
//! lint --verbose                       # print waived diagnostics too
//! ```
//!
//! Exits nonzero when any diagnostic is outstanding — i.e. not covered by
//! a standing waiver in [`clfp_bench::SUITE_WAIVERS`]. Error-severity
//! findings (static/dynamic disagreements) can never be waived.

use std::process::ExitCode;

use clfp_bench::run_lint_suite;
use clfp_limits::AnalysisConfig;

struct Args {
    max_instrs: u64,
    out: std::path::PathBuf,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        max_instrs: 2_000_000,
        out: "results/lint_suite.json".into(),
        verbose: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--max-instr" | "--max-instrs" => {
                let value = iter.next().ok_or("--max-instr needs a number")?;
                args.max_instrs = value
                    .parse()
                    .map_err(|_| format!("bad instruction cap `{value}`"))?;
            }
            "--out" => {
                let value = iter.next().ok_or("--out needs a file path")?;
                args.out = value.into();
            }
            "--verbose" | "-v" => {
                args.verbose = true;
            }
            "--help" | "-h" => {
                println!(
                    "usage: lint [--max-instr N] [--out FILE] [--verbose]\n\
                     Runs the static lint pass and the static/dynamic\n\
                     cross-checker over every suite workload (both unroll\n\
                     settings), writes FILE (default results/lint_suite.json),\n\
                     and exits nonzero on any unwaived diagnostic."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("lint: {message}");
            return ExitCode::FAILURE;
        }
    };

    let config = AnalysisConfig {
        max_instrs: args.max_instrs,
        ..AnalysisConfig::default()
    };
    eprintln!(
        "linting 10 workloads x 2 unroll settings (trace cap {})...",
        args.max_instrs
    );
    let start = std::time::Instant::now();
    let suite = match run_lint_suite(&config) {
        Ok(suite) => suite,
        Err(err) => {
            eprintln!("lint: suite failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("suite checked in {:.1}s\n", start.elapsed().as_secs_f64());

    println!("{}", suite.summary());
    if args.verbose {
        for report in &suite.reports {
            for finding in &report.findings {
                if let Some(reason) = finding.waived_reason {
                    println!("waived  {}: {}", report.name, finding.diagnostic);
                    println!("        reason: {reason}");
                }
            }
        }
    }

    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(err) = std::fs::create_dir_all(dir) {
                eprintln!("lint: cannot create {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(err) = std::fs::write(&args.out, suite.to_json()) {
        eprintln!("lint: cannot write {}: {err}", args.out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", args.out.display());

    if suite.is_clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: outstanding diagnostics (see above)");
        ExitCode::FAILURE
    }
}
