//! # clfp-bench
//!
//! The experiment harness: runs the full workload suite through the limit
//! analyzer and regenerates **every table and figure** of the paper's
//! evaluation section as text/markdown, via the `regen` binary:
//!
//! ```text
//! cargo run --release -p clfp-bench --bin regen            # everything
//! cargo run --release -p clfp-bench --bin regen -- --table 3
//! cargo run --release -p clfp-bench --bin regen -- --figure 6 --max-instr 500000
//! ```
//!
//! `regen --timing` times every pipeline stage (compile, trace,
//! preparation, per-machine passes) for both the fused analyzer and the
//! seed-equivalent reference pipeline, writing the comparison to
//! `BENCH_suite.json` — the perf record for the fused-pass optimization.
//! `regen --scaling` streams repeated workload executions through the
//! chunked pipeline at increasing trace lengths (2M to 100M dynamic
//! instructions), recording wall time and peak RSS per point to
//! `BENCH_scaling.json` — the record that paper-scale runs complete in
//! O(chunk) trace memory.
//! `regen --lint` gates the suite on the `clfp-verify` checks,
//! `regen --alias` sweeps the memory-disambiguation axis (perfect vs
//! static alias classes vs none) across the suite and writes
//! `results/disambiguation.md` gated on the dynamic alias-soundness
//! check ([`run_alias_suite`]),
//! `regen --valuepred` sweeps the value-prediction axis (off vs
//! last-value vs stride vs a perfect value oracle) and writes
//! `results/value_prediction.md` gated on the `clfp-verify`
//! monotonicity check ([`run_valuepred_suite`]), and
//! `regen --metrics` re-runs it with the `clfp-metrics` recording sink
//! ([`run_metrics_suite`]), writing cycle-occupancy histograms and
//! critical-path attribution (`results/metrics_suite.json`,
//! `results/attribution.md`; see `docs/OBSERVABILITY.md`).
//!
//! Every artifact is stamped with a [`RunManifest`] ([`suite_manifest`]),
//! and `regen` refuses to overwrite results whose recorded config hash
//! differs from the current run's unless `--force` is given. Criterion
//! micro-benchmarks live in `benches/` (parked; see the crate manifest).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use clfp_limits::{
    harmonic_mean, AnalysisConfig, Analyzer, AnalyzeError, EdgeKind, MachineKind, MachineMetrics,
    MemDisambiguation, MispredictionStats, Report, StreamOptions, ValuePrediction,
};
use clfp_metrics::RunManifest;
use clfp_predict::BranchProfile;
use clfp_vm::{ProgramSource, Trace, TraceCache, TraceSummary};
use clfp_verify::{
    check_valuepred_monotonicity, lint_program, Diagnostic, DiagnosticKind, Severity, TraceChecks,
};
use clfp_workloads::{suite, Workload, WorkloadClass};

/// Process-wide trace cache used by every suite runner's trace
/// acquisition. `None` (the default) executes the VM directly — library
/// callers and unit tests see unchanged behavior; `regen` installs the
/// default cache at startup unless `--no-cache` is given.
static TRACE_CACHE: OnceLock<Option<TraceCache>> = OnceLock::new();

/// Installs (or explicitly disables, with `None`) the process-wide trace
/// cache every suite runner routes trace acquisition through. The first
/// call wins — the cache choice must not change while suites are running —
/// and later calls are ignored, returning `false`.
pub fn set_trace_cache(cache: Option<TraceCache>) -> bool {
    TRACE_CACHE.set(cache).is_ok()
}

/// The installed trace cache, if any.
fn trace_cache() -> Option<&'static TraceCache> {
    TRACE_CACHE.get().and_then(|cache| cache.as_ref())
}

/// The measured trace for `program` under `config`, through the process
/// trace cache when one is installed ([`set_trace_cache`]). The boolean is
/// `true` when the events came back from a warm cache file instead of a VM
/// execution.
fn measured_trace(
    program: &clfp_isa::Program,
    config: &AnalysisConfig,
) -> Result<(Trace, bool), AnalyzeError> {
    let options = clfp_vm::VmOptions {
        mem_words: config.mem_words,
    };
    if let Some(cache) = trace_cache() {
        let (trace, warm) = cache.ensure(program, options, config.max_instrs)?;
        Ok((trace, warm))
    } else {
        let mut vm = clfp_vm::Vm::new(program, options);
        Ok((vm.trace(config.max_instrs)?, false))
    }
}

/// The worker-pool size [`par_map_suite`] actually fans out over: the
/// host's available parallelism capped at the workload count. Recorded in
/// every suite manifest (`pool_threads`).
pub fn suite_pool_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(suite().len())
}

/// Analysis results for one workload, with and without perfect unrolling.
pub struct WorkloadReport {
    /// The workload.
    pub workload: Workload,
    /// Report with perfect unrolling (the paper's headline setting).
    pub unrolled: Report,
    /// Report without perfect unrolling (Table 4's baseline).
    pub rolled: Report,
}

/// Runs `map` over every suite workload, fanning out over a worker pool
/// bounded by the host's available parallelism — workloads are
/// independent, but oversubscribing the cores just makes their multi-MB
/// trace working sets thrash each other's caches. Results come back in
/// suite order; the first error wins.
///
/// # Errors
///
/// Propagates the first `map` error (by suite order).
pub fn par_map_suite<T, F>(map: F) -> Result<Vec<T>, AnalyzeError>
where
    T: Send,
    F: Fn(Workload) -> Result<T, AnalyzeError> + Sync,
{
    let workloads = suite();
    let workers = suite_pool_threads().min(workloads.len());
    if workers <= 1 {
        return workloads.into_iter().map(map).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<T, AnalyzeError>>>> =
        Mutex::new((0..workloads.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= workloads.len() {
                    break;
                }
                let result = map(workloads[i]);
                results.lock().unwrap()[i] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|result| result.expect("every workload index was claimed"))
        .collect()
}

/// Runs the whole suite under `config`, producing both unrolling settings
/// from a single trace and a single preparation walk per workload.
/// Workloads fan out over a worker pool sized to the host's cores.
///
/// # Errors
///
/// Propagates the first analyzer error (a faulting workload would be a
/// bug).
pub fn run_suite(config: &AnalysisConfig) -> Result<Vec<WorkloadReport>, AnalyzeError> {
    par_map_suite(|workload| analyze_workload(workload, config))
}

fn analyze_workload(
    workload: Workload,
    config: &AnalysisConfig,
) -> Result<WorkloadReport, AnalyzeError> {
    let program = workload
        .compile()
        .map_err(|err| AnalyzeError::BadProgram(format!("{}: {err}", workload.name)))?;
    let analyzer = Analyzer::new(&program, config.clone())?;
    let (trace, _warm) = measured_trace(&program, config)?;
    let prepared = analyzer.prepare(&trace);
    // Both unroll settings in a single lane-kernel walk over the trace.
    let (unrolled, rolled) = prepared.report_both();

    Ok(WorkloadReport {
        workload,
        unrolled,
        rolled,
    })
}

/// [`run_suite`] through the scalar fused cursor
/// ([`PreparedTrace::report_with_unrolling_scalar`](clfp_limits::PreparedTrace::report_with_unrolling_scalar))
/// instead of the lane kernel — the pre-lane production path, kept as an
/// oracle ([`run_suite_timed`] reports its wall as a per-stage sum from
/// the instrumented walk rather than re-running this pass).
///
/// # Errors
///
/// Propagates the first analyzer error.
pub fn run_suite_scalar(config: &AnalysisConfig) -> Result<Vec<WorkloadReport>, AnalyzeError> {
    par_map_suite(|workload| {
        let program = workload
            .compile()
            .map_err(|err| AnalyzeError::BadProgram(format!("{}: {err}", workload.name)))?;
        let analyzer = Analyzer::new(&program, config.clone())?;
        let (trace, _warm) = measured_trace(&program, config)?;
        let prepared = analyzer.prepare(&trace);
        let unrolled = prepared.report_with_unrolling_scalar(true);
        let rolled = prepared.report_with_unrolling_scalar(false);
        Ok(WorkloadReport {
            workload,
            unrolled,
            rolled,
        })
    })
}

/// Runs the whole suite through the seed-equivalent reference pipeline:
/// one profiling execution per unroll setting (what the pre-fused
/// `Analyzer::new` always ran), one measured trace, then the
/// one-machine-at-a-time reference passes. Exists as an end-to-end
/// oracle; results must be identical to [`run_suite`]
/// ([`run_suite_timed`] reports its wall as a per-stage sum from the
/// instrumented walk rather than re-running this pass).
///
/// # Errors
///
/// Propagates the first analyzer error.
pub fn run_suite_reference(config: &AnalysisConfig) -> Result<Vec<WorkloadReport>, AnalyzeError> {
    par_map_suite(|workload| analyze_workload_reference(workload, config))
}

fn analyze_workload_reference(
    workload: Workload,
    config: &AnalysisConfig,
) -> Result<WorkloadReport, AnalyzeError> {
    let program = workload
        .compile()
        .map_err(|err| AnalyzeError::BadProgram(format!("{}: {err}", workload.name)))?;
    let options = clfp_vm::VmOptions {
        mem_words: config.mem_words,
    };
    // The seed constructed one analyzer per unroll setting, each running
    // its own profiling execution before the measured trace. This pipeline
    // is the cost baseline, so it never reads the trace cache.
    let _profile_unrolled = BranchProfile::collect_with(&program, config.max_instrs, options)?;
    let _profile_rolled = BranchProfile::collect_with(&program, config.max_instrs, options)?;
    let mut vm = clfp_vm::Vm::new(&program, options);
    let trace = vm.trace(config.max_instrs)?;

    let unrolled_config = AnalysisConfig {
        unrolling: true,
        ..config.clone()
    };
    let unrolled = Analyzer::new(&program, unrolled_config)?.run_on_trace_reference(&trace);
    let rolled_config = AnalysisConfig {
        unrolling: false,
        ..config.clone()
    };
    let rolled = Analyzer::new(&program, rolled_config)?.run_on_trace_reference(&trace);

    Ok(WorkloadReport {
        workload,
        unrolled,
        rolled,
    })
}

/// Per-workload wall times for each pipeline stage, in milliseconds.
#[derive(Clone, Debug)]
pub struct WorkloadTiming {
    /// Workload name.
    pub name: &'static str,
    /// MiniC compilation.
    pub compile_ms: f64,
    /// The two profiling executions the seed pipeline ran (eliminated by
    /// deriving the profile from the measured trace).
    pub profiling_ms: f64,
    /// The measured trace execution (shared by both pipelines).
    pub trace_ms: f64,
    /// The shared machine-independent preparation walk
    /// (`Analyzer::prepare`: classification, memory keys, CD resolution).
    pub prepare_ms: f64,
    /// The scalar fused per-machine passes over the prepared trace (one
    /// cursor walk per machine × unroll slot, the pre-lane path).
    pub machines_ms: f64,
    /// All 14 machine × unroll slots through the lane-parallel kernel —
    /// one walk over the prepared trace (the `run_suite` production
    /// path).
    pub lane_machines_ms: f64,
    /// Fused analysis total: `prepare_ms + machines_ms`.
    pub fused_analysis_ms: f64,
    /// Reference analysis: one-machine-at-a-time passes, both unroll
    /// settings.
    pub reference_analysis_ms: f64,
    /// Streaming chunked analysis over the same trace (two-pass, all 14
    /// machine slots, sequential — `machine_threads: 1`).
    pub stream_ms: f64,
    /// Streaming chunked analysis with the parallel machine broadcast
    /// (`machine_threads: 0`, i.e. the host's available parallelism,
    /// subject to the short-stream sequential fallback).
    pub stream_par_ms: f64,
    /// Whether the measured trace came from a warm cache file (in which
    /// case `trace_ms` is the file load and `profiling_ms` is zero — the
    /// profiling executions only exist to re-execute the program).
    pub cache_hit: bool,
    /// Raw dynamic instructions in the measured trace.
    pub raw_instrs: u64,
}

/// Wall-time comparison of the fused suite against the seed-equivalent
/// reference pipeline, as produced by [`run_suite_timed`].
#[derive(Clone, Debug)]
pub struct SuiteTiming {
    /// Trace cap used.
    pub max_instrs: u64,
    /// Worker threads available on the host.
    pub threads: usize,
    /// Worker-pool size [`par_map_suite`] actually fanned out over (host
    /// parallelism capped at the workload count).
    pub pool_threads: usize,
    /// Trace-cache state of this run: `"off"` when no cache is installed,
    /// `"warm"` when every workload's trace was already cached before the
    /// first suite ran, `"cold"` otherwise.
    pub cache: &'static str,
    /// Scalar fused pipeline wall (the pre-lane production path,
    /// [`run_suite_scalar`] equivalent): the sum over workloads of
    /// `compile + trace + prepare + machines` stage times, all measured
    /// once in the single instrumented suite walk.
    pub fused_wall_ms: f64,
    /// Lane-kernel pipeline wall (the [`run_suite`] production path):
    /// the sum over workloads of `compile + trace + prepare +
    /// lane_machines` stage times.
    pub lane_wall_ms: f64,
    /// Seed-equivalent reference pipeline wall
    /// ([`run_suite_reference`] equivalent): the sum over workloads of
    /// `compile + trace + profiling + reference_analysis` stage times
    /// (profiling belongs to this pipeline only — the fused path derives
    /// its branch profile from the measured trace).
    pub reference_wall_ms: f64,
    /// `reference_wall_ms / fused_wall_ms`.
    pub speedup: f64,
    /// Whether the production and reference pipelines produced identical
    /// Tables 2-4.
    pub reports_match: bool,
    /// Chunk size (events) used by the streaming comparison runs
    /// (`0` = adaptive per workload, the default).
    pub chunk_events: usize,
    /// Whether the streaming chunked pipeline reproduced the in-memory
    /// reports bit for bit on every workload, both unroll settings.
    pub stream_matches: bool,
    /// Whether the lane kernel reproduced the scalar fused cursor's
    /// reports bit for bit on every workload, both unroll settings.
    pub lane_matches: bool,
    /// Whether the lane kernel and the scalar cursor also agree bit for
    /// bit under `Static` memory disambiguation (alias-class keys) on
    /// every workload, both unroll settings.
    pub alias_matches: bool,
    /// Whether the lane kernel and the scalar cursor also agree bit for
    /// bit under `Stride` value prediction (the strongest realistic
    /// mode) on every workload, both unroll settings.
    pub valuepred_matches: bool,
    /// Whether every workload's trace survives a cache-file roundtrip bit
    /// for bit: the stored events reload identically and streaming the
    /// cache file through the chunked pipeline reproduces the in-memory
    /// reports exactly.
    pub cache_matches: bool,
    /// Provenance of this run (config hash, git describe, timestamp).
    pub manifest: RunManifest,
    /// Per-workload, per-stage breakdown (measured sequentially).
    pub workloads: Vec<WorkloadTiming>,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Start timestamp for a synthesized `suite.*` stage span. Returns 0 when
/// tracing is off, which makes the matching [`stage_span`] a no-op — the
/// untraced timed suite pays one relaxed load per stage and nothing else.
fn stage_start() -> u64 {
    if clfp_metrics::trace::tracing_enabled() {
        clfp_metrics::trace::now_monotonic_us().max(1)
    } else {
        0
    }
}

/// Close a synthesized suite-stage span opened by [`stage_start`]. The
/// stage timings double as the span durations, so the pipeline profile's
/// attribution sums the exact numbers `--timing` reports.
fn stage_span(name: &'static str, workload: &'static str, start_us: u64) {
    if start_us == 0 {
        return;
    }
    let dur_us = clfp_metrics::trace::now_monotonic_us().saturating_sub(start_us);
    clfp_metrics::trace::record_span(
        name,
        "suite",
        start_us,
        dur_us,
        vec![("workload", workload.into())],
    );
}

/// Exact (bit-for-bit) equality of two analysis reports: counts, branch
/// statistics, misprediction histograms, and every machine's cycle count
/// and parallelism. Used to gate the streaming pipeline against the
/// in-memory one.
pub fn reports_equal(a: &Report, b: &Report) -> bool {
    a.seq_instrs == b.seq_instrs
        && a.raw_instrs == b.raw_instrs
        && a.branches == b.branches
        && a.mispred_stats == b.mispred_stats
        && a.results.len() == b.results.len()
        && a.results.iter().zip(&b.results).all(|(x, y)| {
            x.kind == y.kind
                && x.cycles == y.cycles
                && x.parallelism.to_bits() == y.parallelism.to_bits()
        })
}

/// Times the full-suite regeneration, fused vs the seed-equivalent
/// reference pipeline, in one instrumented walk over the suite: every
/// stage of every pipeline runs and is timed exactly once per workload,
/// pipeline walls are sums of their stages, and the same walk feeds the
/// bit-identity gates (lane vs scalar, streaming, static alias, value
/// prediction, cache roundtrip) and cross-checks that all pipelines emit
/// identical tables.
///
/// # Errors
///
/// Propagates the first analyzer error from either pipeline.
pub fn run_suite_timed(config: &AnalysisConfig) -> Result<SuiteTiming, AnalyzeError> {
    // Classify the run before anything executes: warm only if every
    // workload's trace is already cached. The probe is a header
    // validation per workload, not a trace read.
    let _suite_span = clfp_metrics::trace::span("suite.total", "suite")
        .arg("max_instrs", config.max_instrs);
    let probe_t0 = stage_start();
    let cache_state = match trace_cache() {
        None => "off",
        Some(cache) => {
            let mut warm = true;
            for workload in suite() {
                let program = workload.compile().map_err(|err| {
                    AnalyzeError::BadProgram(format!("{}: {err}", workload.name))
                })?;
                warm &= cache.lookup(&program, config.max_instrs).is_some();
            }
            if warm {
                "warm"
            } else {
                "cold"
            }
        }
    };
    stage_span("suite.cache_probe", "suite", probe_t0);
    // The cache-roundtrip gate needs a directory to write through: the
    // installed cache's when one is on, a scratch directory otherwise
    // (removed at the end — a cache-off run must leave nothing behind).
    let (verify_cache, scratch_dir) = match trace_cache() {
        Some(active) => (TraceCache::new(active.dir()), None),
        None => {
            let dir = std::env::temp_dir().join(format!("clfp-cache-gate-{}", std::process::id()));
            (TraceCache::new(&dir), Some(dir))
        }
    };

    // One instrumented pass over the suite, sequential by design: every
    // stage of every pipeline runs and is timed exactly once per workload,
    // and the pipeline walls are sums of those stage times (see the
    // `SuiteTiming` wall fields for the exact compositions). The previous
    // shape — three end-to-end suite passes followed by a per-workload
    // re-run of every stage — paid the entire analysis twice per
    // `--timing` invocation just to report the same numbers.
    let chunk_events = StreamOptions::default().chunk_events;
    let mut stream_matches = true;
    let mut lane_matches = true;
    let mut alias_matches = true;
    let mut valuepred_matches = true;
    let mut cache_matches = true;
    let mut scalar_reports = Vec::new();
    let mut lane_reports = Vec::new();
    let mut reference_reports = Vec::new();
    let mut workloads = Vec::new();
    for (index, workload) in suite().into_iter().enumerate() {
        let options = clfp_vm::VmOptions {
            mem_words: config.mem_words,
        };
        let t0 = stage_start();
        let start = Instant::now();
        let program = workload
            .compile()
            .map_err(|err| AnalyzeError::BadProgram(format!("{}: {err}", workload.name)))?;
        let compile_ms = ms(start);
        stage_span("suite.compile", workload.name, t0);

        // On a warm run the front end collapses: the trace stage is a
        // cache-file load and the seed's profiling executions — which
        // only exist to re-execute the program — are skipped outright.
        // A cold run keeps the honest VM costs even though the earlier
        // suite walls already populated the cache.
        let t0 = stage_start();
        let start = Instant::now();
        let (trace, cache_hit) = if cache_state == "warm" {
            measured_trace(&program, config)?
        } else {
            let mut vm = clfp_vm::Vm::new(&program, options);
            (vm.trace(config.max_instrs)?, false)
        };
        let trace_ms = ms(start);
        stage_span("suite.trace", workload.name, t0);

        let profiling_ms = if cache_hit {
            0.0
        } else {
            let t0 = stage_start();
            let start = Instant::now();
            let _p1 = BranchProfile::collect_with(&program, config.max_instrs, options)?;
            let _p2 = BranchProfile::collect_with(&program, config.max_instrs, options)?;
            let elapsed = ms(start);
            stage_span("suite.profiling", workload.name, t0);
            elapsed
        };

        let unrolled_config = AnalysisConfig {
            unrolling: true,
            ..config.clone()
        };
        let rolled_config = AnalysisConfig {
            unrolling: false,
            ..config.clone()
        };
        let t0 = stage_start();
        let unrolled = Analyzer::new(&program, unrolled_config)?;
        let rolled = Analyzer::new(&program, rolled_config)?;
        stage_span("suite.analyzers", workload.name, t0);

        // Multimode: trains the realistic value predictors alongside the
        // normal walk so the Static / Stride gates below can run as cheap
        // slices of this one preparation instead of full re-preparations.
        let t0 = stage_start();
        let start = Instant::now();
        let prepared = unrolled.prepare_multimode(&trace);
        let prepare_ms = ms(start);
        stage_span("suite.prepare", workload.name, t0);
        let t0 = stage_start();
        let start = Instant::now();
        let inmem_unrolled = prepared.report_with_unrolling_scalar(true);
        let inmem_rolled = prepared.report_with_unrolling_scalar(false);
        let machines_ms = ms(start);
        stage_span("suite.machines.scalar", workload.name, t0);
        let fused_analysis_ms = prepare_ms + machines_ms;

        let t0 = stage_start();
        let start = Instant::now();
        let (lane_unrolled, lane_rolled) = prepared.report_both();
        let lane_machines_ms = ms(start);
        stage_span("suite.machines.lane", workload.name, t0);
        lane_matches &= reports_equal(&lane_unrolled, &inmem_unrolled)
            && reports_equal(&lane_rolled, &inmem_rolled);

        let t0 = stage_start();
        let start = Instant::now();
        let reference_unrolled = unrolled.run_on_trace_reference(&trace);
        let reference_rolled = rolled.run_on_trace_reference(&trace);
        let reference_analysis_ms = ms(start);
        stage_span("suite.reference", workload.name, t0);

        // Static memory disambiguation flows through the same mem_key
        // seam in every pipeline; lane and scalar must still agree.
        // Sliced, not re-prepared: `slice_modes` is itself pinned
        // bit-identical to a dedicated preparation by
        // `mode_slices_match_dedicated_preparation` and the alias suite.
        let t0 = stage_start();
        let static_sliced =
            prepared.slice_modes(MemDisambiguation::Static, config.value_prediction);
        let (static_unrolled, static_rolled) = static_sliced.report_both();
        alias_matches &= reports_equal(
            &static_unrolled,
            &static_sliced.report_with_unrolling_scalar(true),
        ) && reports_equal(
            &static_rolled,
            &static_sliced.report_with_unrolling_scalar(false),
        );
        stage_span("suite.gate.static", workload.name, t0);

        // Value prediction flows through the EV_VALPRED flag in the event
        // metadata; the lane kernel's masked publish must agree with the
        // scalar cursor's branch under the strongest realistic mode.
        let t0 = stage_start();
        let vp_sliced = prepared.slice_modes(config.disambiguation, ValuePrediction::Stride);
        let (vp_unrolled, vp_rolled) = vp_sliced.report_both();
        valuepred_matches &= reports_equal(
            &vp_unrolled,
            &vp_sliced.report_with_unrolling_scalar(true),
        ) && reports_equal(
            &vp_rolled,
            &vp_sliced.report_with_unrolling_scalar(false),
        );
        stage_span("suite.gate.valuepred", workload.name, t0);

        // The streaming chunked pipeline over the same trace: two
        // re-streams (profile + machines) in O(chunk) working memory,
        // first sequential, then with the parallel machine broadcast.
        let t0 = stage_start();
        let start = Instant::now();
        let streamed = unrolled.run_streamed_on(
            &trace,
            StreamOptions {
                chunk_events,
                machine_threads: 1,
                par_threshold_events: 0,
            },
        )?;
        let stream_ms = ms(start);
        stage_span("suite.stream", workload.name, t0);
        let t0 = stage_start();
        let start = Instant::now();
        let _ = unrolled.run_streamed_on(
            &trace,
            StreamOptions {
                chunk_events,
                machine_threads: 0,
                par_threshold_events: 0,
            },
        )?;
        let stream_par_ms = ms(start);
        stage_span("suite.stream_par", workload.name, t0);
        stream_matches &= reports_equal(&streamed.unrolled, &inmem_unrolled)
            && reports_equal(&streamed.rolled, &inmem_rolled);

        // Cache roundtrip gate: every workload's trace is stored and
        // reloaded eagerly — the events must compare equal bit for bit.
        // The full streamed-from-file analysis (which additionally pins
        // the `FileTraceSource` chunked walk against the in-memory
        // reports) runs on the first workload only: it re-prices an
        // entire streaming pass, and the event-equality check already
        // covers the serialization seam on the other nine.
        let t0 = stage_start();
        cache_matches &= match verify_cache.store(&program, config.max_instrs, &trace) {
            Ok(file) => {
                let reloaded = file
                    .load_trace()
                    .map(|t| t.events() == trace.events())
                    .unwrap_or(false);
                let file_stream_ok = if index == 0 {
                    let from_file = unrolled.run_streamed_on(
                        &file,
                        StreamOptions {
                            chunk_events,
                            machine_threads: 1,
                            par_threshold_events: 0,
                        },
                    )?;
                    reports_equal(&from_file.unrolled, &inmem_unrolled)
                        && reports_equal(&from_file.rolled, &inmem_rolled)
                } else {
                    true
                };
                reloaded && file_stream_ok
            }
            Err(_) => false,
        };
        stage_span("suite.gate.cache", workload.name, t0);

        workloads.push(WorkloadTiming {
            name: workload.name,
            compile_ms,
            profiling_ms,
            trace_ms,
            prepare_ms,
            machines_ms,
            lane_machines_ms,
            fused_analysis_ms,
            reference_analysis_ms,
            stream_ms,
            stream_par_ms,
            cache_hit,
            raw_instrs: trace.len() as u64,
        });
        scalar_reports.push(WorkloadReport {
            workload,
            unrolled: inmem_unrolled,
            rolled: inmem_rolled,
        });
        lane_reports.push(WorkloadReport {
            workload,
            unrolled: lane_unrolled,
            rolled: lane_rolled,
        });
        reference_reports.push(WorkloadReport {
            workload,
            unrolled: reference_unrolled,
            rolled: reference_rolled,
        });
    }

    if let Some(dir) = scratch_dir {
        verify_cache.clear().ok();
        std::fs::remove_dir(&dir).ok();
    }

    let reports_match = table2(&lane_reports) == table2(&reference_reports)
        && table3(&lane_reports) == table3(&reference_reports)
        && table4(&lane_reports) == table4(&reference_reports)
        && table3(&lane_reports) == table3(&scalar_reports);

    // Pipeline walls as sums of the measured stages: each pipeline pays
    // the shared front end (compile + trace acquisition) plus its own
    // analysis. Profiling belongs to the reference pipeline only — the
    // fused path derives the branch profile from the measured trace.
    let fused_wall_ms: f64 = workloads
        .iter()
        .map(|w| w.compile_ms + w.trace_ms + w.prepare_ms + w.machines_ms)
        .sum();
    let lane_wall_ms: f64 = workloads
        .iter()
        .map(|w| w.compile_ms + w.trace_ms + w.prepare_ms + w.lane_machines_ms)
        .sum();
    let reference_wall_ms: f64 = workloads
        .iter()
        .map(|w| w.compile_ms + w.trace_ms + w.profiling_ms + w.reference_analysis_ms)
        .sum();

    let pool_threads = suite_pool_threads();
    Ok(SuiteTiming {
        max_instrs: config.max_instrs,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        pool_threads,
        cache: cache_state,
        fused_wall_ms,
        lane_wall_ms,
        reference_wall_ms,
        speedup: reference_wall_ms / fused_wall_ms.max(f64::MIN_POSITIVE),
        reports_match,
        chunk_events,
        stream_matches,
        lane_matches,
        alias_matches,
        valuepred_matches,
        cache_matches,
        manifest: suite_manifest(config)
            .with_pool_threads(pool_threads)
            .with_cache(cache_state),
        workloads,
    })
}

/// The provenance manifest for a suite run under `config` (see
/// [`RunManifest`]): config hash, git describe, timestamp, host
/// parallelism. Embedded in every generated artifact.
pub fn suite_manifest(config: &AnalysisConfig) -> RunManifest {
    RunManifest::capture(&config.fingerprint(), config.max_instrs, config.unrolling)
}

impl SuiteTiming {
    /// Serializes the comparison as JSON (`BENCH_suite.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(
            "  \"suite\": \"full-suite regen, lane kernel vs scalar fused vs reference pipeline\",\n",
        );
        out.push_str(&format!("  \"max_instrs\": {},\n", self.max_instrs));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"pool_threads\": {},\n", self.pool_threads));
        out.push_str(&format!("  \"cache\": \"{}\",\n", self.cache));
        out.push_str(&format!("  \"fused_wall_ms\": {:.1},\n", self.fused_wall_ms));
        out.push_str(&format!("  \"lane_wall_ms\": {:.1},\n", self.lane_wall_ms));
        out.push_str(&format!(
            "  \"reference_wall_ms\": {:.1},\n",
            self.reference_wall_ms
        ));
        out.push_str(&format!("  \"speedup\": {:.2},\n", self.speedup));
        out.push_str(&format!("  \"reports_match\": {},\n", self.reports_match));
        out.push_str(&format!("  \"chunk_events\": {},\n", self.chunk_events));
        out.push_str(&format!(
            "  \"stream_matches\": {},\n",
            self.stream_matches
        ));
        out.push_str(&format!("  \"lane_matches\": {},\n", self.lane_matches));
        out.push_str(&format!("  \"alias_matches\": {},\n", self.alias_matches));
        out.push_str(&format!(
            "  \"valuepred_matches\": {},\n",
            self.valuepred_matches
        ));
        out.push_str(&format!("  \"cache_matches\": {},\n", self.cache_matches));
        out.push_str(&format!(
            "  \"manifest\": {},\n",
            self.manifest.to_json_object("  ")
        ));
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"raw_instrs\": {}, \"compile_ms\": {:.1}, \
                 \"profiling_ms\": {:.1}, \"trace_ms\": {:.1}, \
                 \"prepare_ms\": {:.1}, \"machines_ms\": {:.1}, \
                 \"lane_machines_ms\": {:.1}, \
                 \"fused_analysis_ms\": {:.1}, \"reference_analysis_ms\": {:.1}, \
                 \"stream_ms\": {:.1}, \"stream_par_ms\": {:.1}, \"cache_hit\": {}}}{}\n",
                w.name,
                w.raw_instrs,
                w.compile_ms,
                w.profiling_ms,
                w.trace_ms,
                w.prepare_ms,
                w.machines_ms,
                w.lane_machines_ms,
                w.fused_analysis_ms,
                w.reference_analysis_ms,
                w.stream_ms,
                w.stream_par_ms,
                w.cache_hit,
                if i + 1 == self.workloads.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable summary for the terminal.
    pub fn summary(&self) -> String {
        let mut out = String::from(
            "## Suite Timing: lane kernel vs scalar fused vs reference pipeline\n\n\
             | workload | raw instrs | compile | profiling (ref only) | trace | prepare | machine passes | lane passes | fused total | reference analysis | stream (1t) | stream (par) |\n\
             |----------|------------|---------|----------------------|-------|---------|----------------|-------------|-------------|--------------------|-------------|--------------|\n",
        );
        for w in &self.workloads {
            out.push_str(&format!(
                "| {} | {} | {:.0} ms | {:.0} ms | {:.0} ms | {:.0} ms | {:.0} ms | {:.0} ms | {:.0} ms | {:.0} ms | {:.0} ms | {:.0} ms |\n",
                w.name,
                w.raw_instrs,
                w.compile_ms,
                w.profiling_ms,
                w.trace_ms,
                w.prepare_ms,
                w.machines_ms,
                w.lane_machines_ms,
                w.fused_analysis_ms,
                w.reference_analysis_ms,
                w.stream_ms,
                w.stream_par_ms,
            ));
        }
        let machines_total: f64 = self.workloads.iter().map(|w| w.machines_ms).sum();
        let lane_total: f64 = self.workloads.iter().map(|w| w.lane_machines_ms).sum();
        out.push_str(&format!(
            "\nfull-suite wall time: fused {:.2}s vs reference {:.2}s -> {:.2}x speedup; \
             lane-kernel suite {:.2}s; machine passes: scalar {:.0} ms vs lane {:.0} ms \
             -> {:.2}x\n\
             (tables identical: {}; streaming bit-identical: {}; lane bit-identical: {}; \
             static-alias bit-identical: {}; value-pred bit-identical: {}; \
             cache roundtrip bit-identical: {}; cache {}; pool {} thread(s); {})\n",
            self.fused_wall_ms / 1e3,
            self.reference_wall_ms / 1e3,
            self.speedup,
            self.lane_wall_ms / 1e3,
            machines_total,
            lane_total,
            machines_total / lane_total.max(f64::MIN_POSITIVE),
            self.reports_match,
            self.stream_matches,
            self.lane_matches,
            self.alias_matches,
            self.valuepred_matches,
            self.cache_matches,
            self.cache,
            self.pool_threads,
            if self.chunk_events == 0 {
                "adaptive chunks".to_string()
            } else {
                format!("chunk {} events", self.chunk_events)
            },
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Pipeline profile and perf-regression gate
// ---------------------------------------------------------------------------

/// Renders `results/pipeline_profile.md` from one traced
/// [`run_suite_timed`] walk: the drained span log attributed to named
/// pipeline stages, the per-lane-group machine-walk table, and the cache
/// counter totals. The stage table's denominator is the `suite.total`
/// span, so the quoted coverage is of the instrumented suite wall itself,
/// not of whatever the caller did around it.
pub fn pipeline_profile_md(timing: &SuiteTiming, log: &clfp_metrics::trace::TraceLog) -> String {
    use clfp_metrics::trace::{aggregate_spans, ArgValue};

    let total_us = log.span_total_us("suite.total").max(1);
    let stages: Vec<_> = aggregate_spans(log)
        .into_iter()
        .filter(|s| s.name.starts_with("suite.") && s.name != "suite.total")
        .collect();
    let attributed_us: u64 = stages.iter().map(|s| s.total_us).sum();

    let mut out = String::from("# Pipeline profile\n\n");
    out.push_str(&format!(
        "One instrumented `run_suite_timed` walk over the {}-workload suite \
         (trace cap {}, cache {}), recorded by the span tracer and exported \
         by `regen --trace`. Stage spans are synthesized from the same \
         timings `--timing` reports, so the two artifacts agree by \
         construction.\n\n",
        timing.workloads.len(),
        timing.max_instrs,
        timing.cache,
    ));

    out.push_str("## Stage attribution\n\n");
    out.push_str("| stage | spans | total ms | share of suite wall |\n");
    out.push_str("|-------|------:|---------:|--------------------:|\n");
    for s in &stages {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.1}% |\n",
            s.name,
            s.count,
            s.total_us as f64 / 1e3,
            s.total_us as f64 * 100.0 / total_us as f64,
        ));
    }
    out.push_str(&format!(
        "\nAttributed {:.1} ms of the {:.1} ms instrumented suite wall \
         (`suite.total`) to named stages: **{:.1}% coverage**.\n\n",
        attributed_us as f64 / 1e3,
        total_us as f64 / 1e3,
        attributed_us as f64 * 100.0 / total_us as f64,
    ));

    // Per-machine lane attribution: every `lane.group` span is one
    // scheduler group's walk; identical slot signatures (same machines,
    // same width, same key mode) aggregate across workloads and calls.
    struct GroupRow {
        cd: bool,
        width: u64,
        key_mode: String,
        slots: String,
        walks: u64,
        events: u64,
        chunks: u64,
        busy_us: u64,
    }
    let arg_u64 = |span: &clfp_metrics::trace::SpanEvent, key: &str| match span.arg(key) {
        Some(ArgValue::U64(v)) => *v,
        _ => 0,
    };
    let arg_str = |span: &clfp_metrics::trace::SpanEvent, key: &str| match span.arg(key) {
        Some(ArgValue::Str(v)) => v.clone(),
        _ => String::new(),
    };
    let mut groups: Vec<GroupRow> = Vec::new();
    for span in log.spans().filter(|s| s.name == "lane.group") {
        let cd = matches!(span.arg("cd"), Some(ArgValue::Bool(true)));
        let width = arg_u64(span, "width");
        let key_mode = arg_str(span, "key_mode");
        let slots = arg_str(span, "slots");
        let row = groups.iter_mut().find(|g| {
            g.cd == cd && g.width == width && g.key_mode == key_mode && g.slots == slots
        });
        let row = match row {
            Some(row) => row,
            None => {
                groups.push(GroupRow {
                    cd,
                    width,
                    key_mode,
                    slots,
                    walks: 0,
                    events: 0,
                    chunks: 0,
                    busy_us: 0,
                });
                groups.last_mut().expect("just pushed")
            }
        };
        row.walks += 1;
        row.events += arg_u64(span, "events");
        row.chunks += arg_u64(span, "chunks");
        row.busy_us += span.dur_us;
    }
    groups.sort_by_key(|g| std::cmp::Reverse(g.busy_us));

    out.push_str("## Lane-group machine walks\n\n");
    out.push_str(
        "One row per distinct scheduler group (machine slots sharing one \
         kernel walk); `slot` is `index:machine{+u|-u}[*vp]`. Busy time is \
         the group's accumulated feed time, so interleaved groups do not \
         double-count each other.\n\n",
    );
    out.push_str("| slots | cd | width | key mode | walks | events fed | chunks | busy ms |\n");
    out.push_str("|-------|----|------:|----------|------:|-----------:|-------:|--------:|\n");
    for g in &groups {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {} | {} | {:.1} |\n",
            g.slots,
            if g.cd { "yes" } else { "no" },
            g.width,
            g.key_mode,
            g.walks,
            g.events,
            g.chunks,
            g.busy_us as f64 / 1e3,
        ));
    }

    // Counter samples carry the running total at sample time, so the
    // per-name maximum is the total for the traced run.
    let mut counters: Vec<(String, u64)> = Vec::new();
    for record in &log.records {
        if let clfp_metrics::trace::TraceRecord::Counter(c) = record {
            match counters.iter_mut().find(|(name, _)| *name == c.name) {
                Some((_, v)) => *v = (*v).max(c.value),
                None => counters.push((c.name.clone(), c.value)),
            }
        }
    }
    counters.sort();
    if !counters.is_empty() {
        out.push_str("\n## Counters\n\n| counter | total |\n|---------|------:|\n");
        for (name, value) in &counters {
            out.push_str(&format!("| {name} | {value} |\n"));
        }
    }
    out
}

/// Outcome of [`check_perf`]: the per-wall comparison lines (always
/// populated) and the regressions found (empty when the gate passes).
#[derive(Clone, Debug)]
pub struct PerfCheck {
    /// One human-readable line per compared quantity.
    pub lines: Vec<String>,
    /// One line per regression; empty means the gate passed.
    pub regressions: Vec<String>,
}

impl PerfCheck {
    /// Whether the current run is within tolerance of the baseline.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// The first JSON number following `"key":` in `json`, if any. Top-level
/// wall keys appear exactly once in `BENCH_suite.json`, so a line scan is
/// enough — no JSON parser, no dependency.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The first JSON string following `"key":` in `json`, if any.
fn json_string(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The perf-regression gate behind `regen --check-perf`: compares a fresh
/// [`run_suite_timed`] result against a committed `BENCH_suite.json`
/// baseline. Each pipeline wall (fused, lane, reference) regresses when
/// the current time exceeds baseline × (1 + `tolerance_pct`/100); the
/// current run's bit-identity gates must also all hold. Wall times on a
/// shared host are noisy, so the default tolerance is generous — the gate
/// exists to catch order-of-magnitude pessimizations, not 5% jitter.
///
/// # Errors
///
/// Returns a message (not a regression) when the baseline is unusable:
/// missing wall keys, or produced under a different config hash than the
/// current run — cross-config wall times are not comparable.
pub fn check_perf(
    current: &SuiteTiming,
    baseline_json: &str,
    tolerance_pct: f64,
) -> Result<PerfCheck, String> {
    let baseline_hash = json_string(baseline_json, "config_hash")
        .ok_or("baseline has no \"config_hash\" — not a BENCH_suite.json?")?;
    if baseline_hash != current.manifest.config_hash {
        return Err(format!(
            "baseline config hash {baseline_hash} != current {} — \
             regenerate the baseline (or match --max-instrs) before gating",
            current.manifest.config_hash
        ));
    }
    let mut check = PerfCheck {
        lines: Vec::new(),
        regressions: Vec::new(),
    };
    for (key, now) in [
        ("fused_wall_ms", current.fused_wall_ms),
        ("lane_wall_ms", current.lane_wall_ms),
        ("reference_wall_ms", current.reference_wall_ms),
    ] {
        let base = json_number(baseline_json, key)
            .ok_or_else(|| format!("baseline has no \"{key}\""))?;
        let limit = base * (1.0 + tolerance_pct / 100.0);
        let verdict = if now <= limit { "ok" } else { "REGRESSED" };
        check.lines.push(format!(
            "{key}: {now:.1} ms vs baseline {base:.1} ms (limit {limit:.1} ms at \
             +{tolerance_pct:.0}%) -- {verdict}"
        ));
        if now > limit {
            check
                .regressions
                .push(format!("{key} {now:.1} ms > limit {limit:.1} ms"));
        }
    }
    for (name, ok) in [
        ("reports_match", current.reports_match),
        ("stream_matches", current.stream_matches),
        ("lane_matches", current.lane_matches),
        ("alias_matches", current.alias_matches),
        ("valuepred_matches", current.valuepred_matches),
        ("cache_matches", current.cache_matches),
    ] {
        if !ok {
            check
                .regressions
                .push(format!("bit-identity gate {name} failed in the current run"));
        }
    }
    Ok(check)
}

// ---------------------------------------------------------------------------
// Streaming scaling suite
// ---------------------------------------------------------------------------

/// One point of the streaming scaling curve: a single workload streamed to
/// `max_instrs` dynamic instructions through the chunked pipeline.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Workload name.
    pub workload: &'static str,
    /// Instruction cap the source was streamed to.
    pub max_instrs: u64,
    /// Raw dynamic instructions actually analyzed (equals `max_instrs`
    /// for a repeated source).
    pub raw_instrs: u64,
    /// End-to-end wall time of the two-pass streamed analysis, in ms.
    pub wall_ms: f64,
    /// Analysis throughput: `raw_instrs / wall seconds`.
    pub events_per_sec: f64,
    /// Peak resident set size of the whole process so far, in MiB
    /// (`VmHWM` from `/proc/self/status`; 0 when unavailable). The
    /// high-water mark is monotone, so points must be visited in
    /// increasing size order for per-point attribution to be meaningful.
    pub peak_rss_mb: f64,
    /// For the smallest point only: whether a plain (non-repeated)
    /// streamed run reproduced the in-memory analysis bit for bit.
    pub matches_inmemory: Option<bool>,
}

/// Results of [`run_scaling_suite`] (`BENCH_scaling.json`): wall time and
/// peak RSS of the streaming chunked pipeline at increasing trace lengths,
/// demonstrating paper-scale (100M-instruction) runs in O(chunk) trace
/// memory.
#[derive(Clone, Debug)]
pub struct ScalingSuite {
    /// Chunk size (events) requested; 0 means the adaptive per-workload
    /// default ([`StreamOptions::resolved_chunk_events`]).
    pub chunk_events: usize,
    /// Worker threads the machine broadcast ran with (resolved).
    pub machine_threads: usize,
    /// Provenance of this run (config hash, git describe, timestamp).
    pub manifest: RunManifest,
    /// Points in increasing `max_instrs` order, workloads interleaved.
    pub points: Vec<ScalingPoint>,
}

/// The process's peak resident set size in MiB, read from the `VmHWM`
/// line of `/proc/self/status`. Returns 0.0 when unavailable (non-Linux).
pub fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Streams each named workload to every instruction cap in `points`
/// through the chunked pipeline, synthesizing arbitrarily long traces by
/// repeating the program's deterministic execution
/// ([`ProgramSource::repeated`]). Points are visited in increasing order
/// (across all workloads) because the RSS high-water mark only grows. At
/// the smallest point each workload is additionally cross-checked: a
/// plain single-execution stream must reproduce the in-memory analysis
/// bit for bit.
///
/// # Errors
///
/// Propagates compile/VM/analyzer failures and unknown workload names.
pub fn run_scaling_suite(
    config: &AnalysisConfig,
    workloads: &[&str],
    points: &[u64],
    options: StreamOptions,
) -> Result<ScalingSuite, AnalyzeError> {
    let mut caps: Vec<u64> = points.to_vec();
    caps.sort_unstable();
    let options_vm = clfp_vm::VmOptions {
        mem_words: config.mem_words,
    };
    let mut compiled = Vec::new();
    for &name in workloads {
        let workload = clfp_workloads::by_name(name)
            .map_err(|err| AnalyzeError::BadProgram(format!("unknown workload `{name}`: {err}")))?;
        let program = workload
            .compile()
            .map_err(|err| AnalyzeError::BadProgram(format!("{name}: {err}")))?;
        compiled.push((workload.name, program));
    }

    let mut results = Vec::new();
    for (pi, &limit) in caps.iter().enumerate() {
        for (name, program) in &compiled {
            let analyzer = Analyzer::new(program, config.clone())?;
            let source = ProgramSource::new(program, options_vm, limit).repeated();
            let start = Instant::now();
            let streamed = analyzer.run_streamed_on(&source, options)?;
            let wall_ms = ms(start);
            let raw_instrs = streamed.unrolled.raw_instrs;

            let matches_inmemory = if pi == 0 {
                let mut vm = clfp_vm::Vm::new(program, options_vm);
                let trace = vm.trace(limit)?;
                let prepared = analyzer.prepare(&trace);
                let plain = ProgramSource::new(program, options_vm, limit);
                let check = analyzer.run_streamed_on(&plain, options)?;
                Some(
                    reports_equal(&check.unrolled, &prepared.report_with_unrolling(true))
                        && reports_equal(&check.rolled, &prepared.report_with_unrolling(false))
                        && check.summary == trace.summarize(program),
                )
            } else {
                None
            };

            results.push(ScalingPoint {
                workload: name,
                max_instrs: limit,
                raw_instrs,
                wall_ms,
                events_per_sec: raw_instrs as f64 / (wall_ms / 1e3).max(f64::MIN_POSITIVE),
                peak_rss_mb: peak_rss_mb(),
                matches_inmemory,
            });
        }
    }

    let machine_threads = if options.machine_threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        options.machine_threads
    };
    Ok(ScalingSuite {
        chunk_events: options.chunk_events,
        machine_threads,
        manifest: suite_manifest(config),
        points: results,
    })
}

impl ScalingSuite {
    /// Serializes the curve as JSON (`BENCH_scaling.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(
            "  \"suite\": \"streaming scaling: wall time and peak RSS vs trace length\",\n",
        );
        out.push_str(&format!("  \"chunk_events\": {},\n", self.chunk_events));
        out.push_str(&format!(
            "  \"machine_threads\": {},\n",
            self.machine_threads
        ));
        out.push_str(&format!(
            "  \"manifest\": {},\n",
            self.manifest.to_json_object("  ")
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"max_instrs\": {}, \"raw_instrs\": {}, \
                 \"wall_ms\": {:.1}, \"events_per_sec\": {:.0}, \"peak_rss_mb\": {:.1}, \
                 \"matches_inmemory\": {}}}{}\n",
                p.workload,
                p.max_instrs,
                p.raw_instrs,
                p.wall_ms,
                p.events_per_sec,
                p.peak_rss_mb,
                p.matches_inmemory
                    .map_or("null".to_string(), |m| m.to_string()),
                if i + 1 == self.points.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable summary for the terminal.
    pub fn summary(&self) -> String {
        let mut out = String::from(
            "## Streaming Scaling: wall time and peak RSS vs trace length\n\n\
             | workload | instrs | wall | Minstrs/s | peak RSS | in-memory match |\n\
             |----------|--------|------|-----------|----------|-----------------|\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "| {} | {} | {:.1} s | {:.1} | {:.0} MiB | {} |\n",
                p.workload,
                p.max_instrs,
                p.wall_ms / 1e3,
                p.events_per_sec / 1e6,
                p.peak_rss_mb,
                p.matches_inmemory
                    .map_or("-".to_string(), |m| m.to_string()),
            ));
        }
        let chunks = if self.chunk_events == 0 {
            "adaptive chunks".to_string()
        } else {
            format!("chunk {} events", self.chunk_events)
        };
        out.push_str(&format!(
            "\n{chunks}, {} machine worker(s); RSS is the process \
             high-water mark (monotone across points)\n",
            self.machine_threads,
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Lint & cross-check suite
// ---------------------------------------------------------------------------

/// Accepts all diagnostics of one kind, optionally scoped to one workload.
///
/// Waivers exist for code-quality findings about the *measured programs*
/// (the MiniC workloads) that are understood and do not affect the limit
/// analysis. [`Severity::Error`] diagnostics can never be waived: they mean
/// the static model and the dynamic behavior disagree.
#[derive(Clone, Copy, Debug)]
pub struct Waiver {
    /// Workload name, or `None` to match every workload.
    pub workload: Option<&'static str>,
    /// The diagnostic kind being accepted.
    pub kind: DiagnosticKind,
    /// Why this finding is acceptable.
    pub reason: &'static str,
}

/// The standing waivers for the benchmark suite, with reasons.
///
/// Re-audited when the alias-region lints landed: the whole suite is
/// clean under `never-stored-region-load` and `region-dead-store` (every
/// workload initializes the regions it reads and reads the regions it
/// writes — results are reduced into `v0`, not stored and abandoned), so
/// neither kind needs a waiver. The two waivers below remain the only
/// accepted findings, and `alias-soundness-violation` joins the
/// error-severity kinds that can never be waived.
pub const SUITE_WAIVERS: &[Waiver] = &[
    Waiver {
        workload: None,
        kind: DiagnosticKind::DeadStore,
        reason: "MiniC codegen is deliberately naive (no DCE): every \
                 expression result is materialized into a register even \
                 when nothing reads it, e.g. a call used as a statement; \
                 harmless extra work in the measured program",
    },
    Waiver {
        workload: None,
        kind: DiagnosticKind::UnreachableBlock,
        reason: "MiniC emits a fallback `return 0` (li v0, 0) after every \
                 function body; when all paths already returned, the \
                 fallback block is jumped over, dead by construction, and \
                 never traced",
    },
];

/// Looks up a waiver for a diagnostic. Errors are never waived.
pub fn waiver_for(workload: &str, diagnostic: &Diagnostic) -> Option<&'static str> {
    if diagnostic.severity() == Severity::Error {
        return None;
    }
    SUITE_WAIVERS
        .iter()
        .find(|w| w.kind == diagnostic.kind && w.workload.is_none_or(|name| name == workload))
        .map(|w| w.reason)
}

/// One diagnostic plus its waiver status.
#[derive(Clone, Debug)]
pub struct LintFinding {
    /// The finding itself.
    pub diagnostic: Diagnostic,
    /// The standing waiver covering it, if any.
    pub waived_reason: Option<&'static str>,
}

/// Lint and cross-check results for one workload.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Workload name.
    pub name: &'static str,
    /// Raw dynamic instructions in the checked trace.
    pub raw_instrs: u64,
    /// Sequential instructions with perfect unrolling.
    pub seq_unrolled: u64,
    /// Sequential instructions without unrolling.
    pub seq_rolled: u64,
    /// Every diagnostic, static and dynamic, with waiver status.
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// Findings not covered by a waiver.
    pub fn outstanding(&self) -> impl Iterator<Item = &LintFinding> {
        self.findings.iter().filter(|f| f.waived_reason.is_none())
    }

    fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.diagnostic.severity() == severity)
            .count()
    }
}

/// Results of [`run_lint_suite`]: every workload linted statically and
/// cross-checked dynamically for both unroll settings.
#[derive(Clone, Debug)]
pub struct LintSuite {
    /// Trace cap used.
    pub max_instrs: u64,
    /// Provenance of this run (config hash, git describe, timestamp).
    pub manifest: RunManifest,
    /// Per-workload results, in suite order.
    pub reports: Vec<LintReport>,
}

/// Lints one workload and cross-checks its trace against the static model.
///
/// # Errors
///
/// Propagates compile/VM/analyzer failures (not diagnostics).
pub fn lint_workload(
    workload: Workload,
    config: &AnalysisConfig,
) -> Result<LintReport, AnalyzeError> {
    let program = workload
        .compile()
        .map_err(|err| AnalyzeError::BadProgram(format!("{}: {err}", workload.name)))?;
    // Only the sequential counts are needed from the machine passes, and
    // they are machine-independent: analyze the cheapest model.
    let lint_config = AnalysisConfig {
        machines: vec![MachineKind::Base],
        ..config.clone()
    };
    let analyzer = Analyzer::new(&program, lint_config)?;
    let info = analyzer.static_info();

    let mut diagnostics = lint_program(&program, info);

    let (trace, _warm) = measured_trace(&program, config)?;
    let prepared = analyzer.prepare(&trace);
    let checks = TraceChecks::new(&program, info);
    diagnostics.extend(checks.check_edges(&trace));
    diagnostics.extend(checks.check_cd_sources(&trace, prepared.cd_sources()));
    diagnostics.extend(checks.check_unroll_masks(&trace));
    diagnostics.extend(checks.check_alias_soundness(&trace));
    let unrolled = prepared.report_with_unrolling(true);
    let rolled = prepared.report_with_unrolling(false);
    diagnostics.extend(checks.check_seq_count(&trace, true, unrolled.seq_instrs));
    diagnostics.extend(checks.check_seq_count(&trace, false, rolled.seq_instrs));

    Ok(LintReport {
        name: workload.name,
        raw_instrs: trace.len() as u64,
        seq_unrolled: unrolled.seq_instrs,
        seq_rolled: rolled.seq_instrs,
        findings: diagnostics
            .into_iter()
            .map(|diagnostic| LintFinding {
                waived_reason: waiver_for(workload.name, &diagnostic),
                diagnostic,
            })
            .collect(),
    })
}

/// Lints every suite workload and cross-checks its trace for both unroll
/// settings, fanning out over [`par_map_suite`].
///
/// # Errors
///
/// Propagates the first compile/VM/analyzer failure. Diagnostics are data,
/// not errors; inspect [`LintSuite::is_clean`].
pub fn run_lint_suite(config: &AnalysisConfig) -> Result<LintSuite, AnalyzeError> {
    Ok(LintSuite {
        max_instrs: config.max_instrs,
        manifest: suite_manifest(config),
        reports: par_map_suite(|workload| lint_workload(workload, config))?,
    })
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<char>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl LintSuite {
    /// Whether every diagnostic across the suite is either absent or
    /// covered by a standing waiver. The lint gate passes only when true.
    pub fn is_clean(&self) -> bool {
        self.reports.iter().all(|r| r.outstanding().next().is_none())
    }

    /// Serializes the results as JSON (`results/lint_suite.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"suite\": \"static lint + static/dynamic cross-check\",\n");
        out.push_str(&format!("  \"max_instrs\": {},\n", self.max_instrs));
        out.push_str("  \"unroll_settings\": [false, true],\n");
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str(&format!(
            "  \"manifest\": {},\n",
            self.manifest.to_json_object("  ")
        ));
        out.push_str("  \"workloads\": [\n");
        for (i, report) in self.reports.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"raw_instrs\": {}, \
                 \"seq_instrs_unrolled\": {}, \"seq_instrs_rolled\": {}, \
                 \"errors\": {}, \"warnings\": {}, \"infos\": {},\n",
                report.name,
                report.raw_instrs,
                report.seq_unrolled,
                report.seq_rolled,
                report.count(Severity::Error),
                report.count(Severity::Warning),
                report.count(Severity::Info),
            ));
            out.push_str("     \"diagnostics\": [");
            for (j, finding) in report.findings.iter().enumerate() {
                let d = &finding.diagnostic;
                out.push_str(&format!(
                    "\n       {{\"kind\": \"{}\", \"severity\": \"{}\", \"pc\": {}, \
                     \"message\": \"{}\", \"waived\": {}, \"waiver_reason\": {}}}{}",
                    d.kind,
                    d.severity(),
                    d.pc.map_or("null".to_string(), |pc| pc.to_string()),
                    json_escape(&d.message),
                    finding.waived_reason.is_some(),
                    finding
                        .waived_reason
                        .map_or("null".to_string(), |r| format!("\"{}\"", json_escape(r))),
                    if j + 1 == report.findings.len() { "\n     " } else { "," },
                ));
            }
            out.push_str(&format!(
                "]}}{}\n",
                if i + 1 == self.reports.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable summary for the terminal.
    pub fn summary(&self) -> String {
        let mut out = String::from(
            "## Lint & Cross-Check Suite\n\n\
             | workload | raw instrs | seq (unrolled) | errors | warnings | infos | waived | status |\n\
             |----------|------------|----------------|--------|----------|-------|--------|--------|\n",
        );
        for report in &self.reports {
            let waived = report
                .findings
                .iter()
                .filter(|f| f.waived_reason.is_some())
                .count();
            let outstanding = report.outstanding().count();
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
                report.name,
                report.raw_instrs,
                report.seq_unrolled,
                report.count(Severity::Error),
                report.count(Severity::Warning),
                report.count(Severity::Info),
                waived,
                if outstanding == 0 { "clean" } else { "FAIL" },
            ));
        }
        let mut outstanding: Vec<(&str, &LintFinding)> = Vec::new();
        for report in &self.reports {
            outstanding.extend(report.outstanding().map(|f| (report.name, f)));
        }
        if outstanding.is_empty() {
            out.push_str(
                "\nall diagnostics clean or covered by standing waivers \
                 (see SUITE_WAIVERS)\n",
            );
        } else {
            out.push_str("\noutstanding diagnostics:\n");
            for (name, finding) in outstanding {
                out.push_str(&format!("  {name}: {}\n", finding.diagnostic));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Memory-disambiguation suite
// ---------------------------------------------------------------------------

/// Results for one workload across the memory-disambiguation axis:
/// the same measured trace scheduled under perfect (by-address), static
/// (alias-class), and no disambiguation, plus the soundness and
/// pipeline-agreement gates for the static mode.
#[derive(Clone, Debug)]
pub struct AliasWorkloadReport {
    /// The workload.
    pub workload: Workload,
    /// Raw dynamic instructions in the measured trace.
    pub raw_instrs: u64,
    /// Scheduler classes the alias analysis partitioned memory into.
    pub num_classes: u32,
    /// Unrolled report per mode, in [`MemDisambiguation::ALL`] order.
    pub reports: Vec<(MemDisambiguation, Report)>,
    /// Dynamic alias-soundness check over the in-memory trace: no
    /// observed address conflict fell on a statically no-alias pair.
    pub sound_inmemory: bool,
    /// The same check through the chunked streaming walker.
    pub sound_streamed: bool,
    /// Whether lane kernel, scalar fused cursor, and streaming pipeline
    /// produced bit-identical reports under `Static` disambiguation.
    pub pipelines_agree: bool,
}

impl AliasWorkloadReport {
    /// The unrolled report for `mode`.
    pub fn report_for(&self, mode: MemDisambiguation) -> &Report {
        &self
            .reports
            .iter()
            .find(|(m, _)| *m == mode)
            .expect("every mode was run")
            .1
    }
}

/// Results of [`run_alias_suite`] (`results/disambiguation.md`): every
/// workload scheduled under all three memory-disambiguation modes, with
/// the dynamic soundness gate and the static-mode pipeline-agreement
/// gate.
#[derive(Clone, Debug)]
pub struct AliasSuite {
    /// Trace cap used.
    pub max_instrs: u64,
    /// Chunk size (events) used by the streamed soundness check.
    pub chunk_events: usize,
    /// Provenance of this run (config hash, git describe, timestamp).
    pub manifest: RunManifest,
    /// Per-workload results, in suite order.
    pub reports: Vec<AliasWorkloadReport>,
}

/// Chunk size the streamed alias-soundness gate re-walks each trace with.
const ALIAS_GATE_CHUNK_EVENTS: usize = 4096;

/// Analyzes one workload under all three disambiguation modes from a
/// single measured trace, a single preparation walk, and a single
/// multi-config scheduling walk
/// ([`PreparedTrace::report_mode_matrix`](clfp_limits::PreparedTrace::report_mode_matrix)),
/// and runs the soundness + pipeline gates.
///
/// `full_oracle` additionally prices a from-scratch static-mode
/// preparation and a small-chunk streamed pass as fully independent
/// oracles for the static row; [`run_alias_suite`] enables it on the
/// first workload (the scalar-cursor agreement gate still runs on every
/// workload, and `slice_modes` itself is pinned bit-identical to a
/// dedicated preparation by `mode_slices_match_dedicated_preparation`).
///
/// # Errors
///
/// Propagates compile/VM/analyzer failures.
pub fn alias_workload(
    workload: Workload,
    config: &AnalysisConfig,
    full_oracle: bool,
) -> Result<AliasWorkloadReport, AnalyzeError> {
    let program = workload
        .compile()
        .map_err(|err| AnalyzeError::BadProgram(format!("{}: {err}", workload.name)))?;
    let (trace, _warm) = measured_trace(&program, config)?;

    // One preparation under the perfect-disambiguation base; the coarser
    // modes become extra lanes of the same scheduling walk
    // (`report_mode_matrix`), replacing the three per-mode preparations
    // this suite used to run.
    let analyzer = Analyzer::new(
        &program,
        config
            .clone()
            .with_disambiguation(MemDisambiguation::Perfect),
    )?;
    let prepared = analyzer.prepare(&trace);

    // The alias analysis and the dynamic soundness gate are
    // mode-independent; run them once.
    let info = analyzer.static_info();
    let num_classes = info.alias.num_classes();
    let checks = TraceChecks::new(&program, info);
    let sound_inmemory = checks.check_alias_soundness(&trace).is_empty();
    let sound_streamed = checks
        .check_alias_soundness_source(&trace, ALIAS_GATE_CHUNK_EVENTS)?
        .is_empty();

    let modes: Vec<(MemDisambiguation, ValuePrediction)> = MemDisambiguation::ALL
        .iter()
        .map(|&mode| (mode, config.value_prediction))
        .collect();
    let matrix = prepared.report_mode_matrix(&modes);

    let mut reports = Vec::new();
    let mut pipelines_agree = true;
    for (&mode, (unrolled, rolled)) in MemDisambiguation::ALL.iter().zip(matrix) {
        if mode == MemDisambiguation::Static {
            // Every workload: the scalar fused cursor over a static-mode
            // slice of the shared preparation must agree with the matrix
            // lanes — lane kernel vs scalar cursor on identical metadata.
            let static_sliced = prepared.slice_modes(mode, config.value_prediction);
            pipelines_agree = reports_equal(
                &unrolled,
                &static_sliced.report_with_unrolling_scalar(true),
            ) && reports_equal(
                &rolled,
                &static_sliced.report_with_unrolling_scalar(false),
            );
            if full_oracle {
                // First workload: fully independent oracles — a dedicated
                // static-mode preparation (no sharing with the matrix
                // base) through the scalar cursor, and the small-chunk
                // streaming pipeline. All must serialize the same alias
                // classes.
                let static_analyzer =
                    Analyzer::new(&program, config.clone().with_disambiguation(mode))?;
                let static_prepared = static_analyzer.prepare(&trace);
                let streamed = static_analyzer.run_streamed_on(
                    &trace,
                    StreamOptions {
                        chunk_events: ALIAS_GATE_CHUNK_EVENTS,
                        machine_threads: 1,
                        par_threshold_events: 0,
                    },
                )?;
                pipelines_agree = pipelines_agree
                    && reports_equal(
                        &unrolled,
                        &static_prepared.report_with_unrolling_scalar(true),
                    )
                    && reports_equal(
                        &rolled,
                        &static_prepared.report_with_unrolling_scalar(false),
                    )
                    && reports_equal(&streamed.unrolled, &unrolled)
                    && reports_equal(&streamed.rolled, &rolled);
            }
        }
        reports.push((mode, unrolled));
    }

    Ok(AliasWorkloadReport {
        workload,
        raw_instrs: trace.len() as u64,
        num_classes,
        reports,
        sound_inmemory,
        sound_streamed,
        pipelines_agree,
    })
}

/// Runs the whole suite across the disambiguation axis, fanning out over
/// [`par_map_suite`].
///
/// # Errors
///
/// Propagates the first compile/VM/analyzer failure.
pub fn run_alias_suite(config: &AnalysisConfig) -> Result<AliasSuite, AnalyzeError> {
    let oracle_on = suite().first().map(|w| w.name);
    Ok(AliasSuite {
        max_instrs: config.max_instrs,
        chunk_events: ALIAS_GATE_CHUNK_EVENTS,
        manifest: suite_manifest(config),
        reports: par_map_suite(|workload| {
            alias_workload(workload, config, Some(workload.name) == oracle_on)
        })?,
    })
}

impl AliasSuite {
    /// Whether the dynamic soundness gate passed on every workload,
    /// through both the in-memory and the streamed walker.
    pub fn is_sound(&self) -> bool {
        self.reports
            .iter()
            .all(|r| r.sound_inmemory && r.sound_streamed)
    }

    /// Whether the static-mode pipelines agreed bit for bit everywhere.
    pub fn pipelines_agree(&self) -> bool {
        self.reports.iter().all(|r| r.pipelines_agree)
    }

    fn mode_table(&self, mode: MemDisambiguation) -> String {
        let mut out = String::from(
            "| program | BASE | CD | CD-MF | SP | SP-CD | SP-CD-MF | ORACLE |\n\
             |---------|------|----|-------|----|-------|----------|--------|\n",
        );
        for r in &self.reports {
            let report = r.report_for(mode);
            let mut line = format!("| {} |", r.workload.name);
            for kind in MachineKind::ALL {
                line.push_str(&format!(" {} |", fmt_parallelism(report.parallelism(kind))));
            }
            line.push('\n');
            out.push_str(&line);
        }
        let mut line = String::from("| **harmonic mean** |");
        for kind in MachineKind::ALL {
            let hm = harmonic_mean(
                self.reports
                    .iter()
                    .map(|r| r.report_for(mode).parallelism(kind)),
            );
            line.push_str(&format!(" {} |", fmt_parallelism(hm)));
        }
        line.push('\n');
        out.push_str(&line);
        out
    }

    /// The disambiguation-axis report (`results/disambiguation.md`):
    /// parallelism per machine under each mode, per-workload retention
    /// relative to perfect disambiguation, and the gate results.
    pub fn disambiguation_md(&self) -> String {
        let mut out = String::from(
            "## Memory Disambiguation: Perfect vs Static vs None\n\n\
             The paper assumes *perfect* memory disambiguation: a load\n\
             depends on a store only when they touched the same dynamic\n\
             address. `static` replaces the oracle with the interprocedural\n\
             alias analysis — accesses are keyed by their static alias\n\
             class, so any may-aliased pair serializes. `none` keys every\n\
             access to one location: all of memory is a single dependence\n\
             chain. Parallelism below is with perfect unrolling, harmonic\n\
             mean over all programs.\n",
        );
        for (mode, blurb) in [
            (
                MemDisambiguation::Perfect,
                "oracle, by dynamic address (the paper's model)",
            ),
            (
                MemDisambiguation::Static,
                "alias classes from the interprocedural analysis",
            ),
            (MemDisambiguation::None, "memory as a single location"),
        ] {
            out.push_str(&format!("\n### `{}`: {}\n\n", mode.name(), blurb));
            out.push_str(&self.mode_table(mode));
        }

        out.push_str(
            "\n### Retention on SP-CD-MF\n\n\
             How much of the perfect-disambiguation parallelism each\n\
             weaker mode keeps, on the machine where memory dependences\n\
             bind tightest. `classes` is the number of scheduler classes\n\
             the analysis partitioned the program's memory into. Under\n\
             the coarse modes a load waits for *every* earlier\n\
             may-aliasing store (the table accumulates a running max),\n\
             so the modes are strictly ordered: refining the key\n\
             partition can only remove constraints, and\n\
             `perfect >= static >= none` holds pointwise.\n\n\
             | program | classes | perfect | static | static/perfect | none | none/perfect |\n\
             |---------|---------|---------|--------|----------------|------|--------------|\n",
        );
        for r in &self.reports {
            let kind = MachineKind::SpCdMf;
            let perfect = r.report_for(MemDisambiguation::Perfect).parallelism(kind);
            let stat = r.report_for(MemDisambiguation::Static).parallelism(kind);
            let none = r.report_for(MemDisambiguation::None).parallelism(kind);
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.0}% | {} | {:.0}% |\n",
                r.workload.name,
                r.num_classes,
                fmt_parallelism(perfect),
                fmt_parallelism(stat),
                100.0 * stat / perfect,
                fmt_parallelism(none),
                100.0 * none / perfect,
            ));
        }

        out.push_str(&format!(
            "\n### Gates\n\n\
             - alias soundness, in-memory walker: **{}**\n\
             - alias soundness, streamed walker (chunk {} events): **{}**\n\
             - static-mode pipelines bit-identical (lane vs scalar on every \
             workload; streamed + from-scratch preparation oracle on the \
             first): **{}**\n",
            if self.reports.iter().all(|r| r.sound_inmemory) {
                "pass"
            } else {
                "FAIL"
            },
            self.chunk_events,
            if self.reports.iter().all(|r| r.sound_streamed) {
                "pass"
            } else {
                "FAIL"
            },
            if self.pipelines_agree() { "pass" } else { "FAIL" },
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Value-prediction suite
// ---------------------------------------------------------------------------

/// Results for one workload across the value-prediction axis: the same
/// measured trace scheduled with value speculation off, under the
/// realistic last-value and stride predictors, and with a perfect value
/// oracle, plus the monotonicity and pipeline-agreement gates.
#[derive(Clone, Debug)]
pub struct ValuePredWorkloadReport {
    /// The workload.
    pub workload: Workload,
    /// Raw dynamic instructions in the measured trace.
    pub raw_instrs: u64,
    /// Unrolled report per mode, in [`ValuePrediction::ALL`] order.
    pub reports: Vec<(ValuePrediction, Report)>,
    /// Whether the `clfp-verify` monotonicity check passed over both
    /// unroll settings: a stronger mode never produced a longer critical
    /// path on any machine.
    pub monotone: bool,
    /// Whether lane kernel, scalar fused cursor, and streaming pipeline
    /// produced bit-identical reports under `Stride` value prediction,
    /// with the reference pass agreeing on every machine's cycle count.
    pub pipelines_agree: bool,
}

impl ValuePredWorkloadReport {
    /// The unrolled report for `mode`.
    pub fn report_for(&self, mode: ValuePrediction) -> &Report {
        &self
            .reports
            .iter()
            .find(|(m, _)| *m == mode)
            .expect("every mode was run")
            .1
    }

    /// The predictor hit rate measured for `mode` during the
    /// preparation walk, as a percentage of def-producing events
    /// (100% for `Perfect`, 0% for `Off`).
    pub fn hit_rate(&self, mode: ValuePrediction) -> f64 {
        self.report_for(mode).branches.value_prediction_rate()
    }
}

/// Results of [`run_valuepred_suite`] (`results/value_prediction.md`):
/// every workload scheduled under all four value-prediction modes, with
/// the monotonicity gate and the stride-mode pipeline-agreement gate.
#[derive(Clone, Debug)]
pub struct ValuePredSuite {
    /// Trace cap used.
    pub max_instrs: u64,
    /// Chunk size (events) used by the streamed agreement gate.
    pub chunk_events: usize,
    /// Provenance of this run (config hash, git describe, timestamp).
    pub manifest: RunManifest,
    /// Per-workload results, in suite order.
    pub reports: Vec<ValuePredWorkloadReport>,
}

/// Chunk size the streamed value-prediction agreement gate re-runs each
/// trace with.
const VALUEPRED_GATE_CHUNK_EVENTS: usize = 4096;

/// Analyzes one workload under all four value-prediction modes from a
/// single measured trace, a single preparation walk, and a single
/// multi-config scheduling walk
/// ([`PreparedTrace::report_mode_matrix`](clfp_limits::PreparedTrace::report_mode_matrix)),
/// and runs the monotonicity + pipeline gates.
///
/// `full_oracle` additionally prices a from-scratch stride-mode
/// preparation, a small-chunk streamed pass, and the reference
/// predictor-replay pass as fully independent oracles for the stride
/// row; [`run_valuepred_suite`] enables it on the first workload (the
/// scalar-cursor agreement gate still runs on every workload, and
/// `slice_modes` itself is pinned bit-identical to a dedicated
/// preparation by `mode_slices_match_dedicated_preparation`).
///
/// # Errors
///
/// Propagates compile/VM/analyzer failures.
pub fn valuepred_workload(
    workload: Workload,
    config: &AnalysisConfig,
    full_oracle: bool,
) -> Result<ValuePredWorkloadReport, AnalyzeError> {
    let program = workload
        .compile()
        .map_err(|err| AnalyzeError::BadProgram(format!("{}: {err}", workload.name)))?;
    let (trace, _warm) = measured_trace(&program, config)?;

    // One preparation under the perfect-disambiguation base trains every
    // realistic predictor on the trace; the four prediction modes then
    // run as extra lanes of one scheduling walk (`report_mode_matrix`),
    // replacing the four per-mode preparations this suite used to run.
    let analyzer = Analyzer::new(
        &program,
        config
            .clone()
            .with_disambiguation(MemDisambiguation::Perfect),
    )?;
    let prepared = analyzer.prepare_multimode(&trace);
    let modes: Vec<(MemDisambiguation, ValuePrediction)> = ValuePrediction::ALL
        .iter()
        .map(|&mode| (config.disambiguation, mode))
        .collect();
    let matrix = prepared.report_mode_matrix(&modes);

    let mut unrolled_reports = Vec::new();
    let mut rolled_reports = Vec::new();
    let mut pipelines_agree = true;
    for (&mode, (unrolled, rolled)) in ValuePrediction::ALL.iter().zip(matrix) {
        if mode == ValuePrediction::Stride {
            // Every workload: the scalar fused cursor over a stride-mode
            // slice of the shared preparation must agree with the matrix
            // lanes — the lane kernel's masked hit-bit publish vs the
            // scalar cursor's branch on identical metadata.
            let vp_sliced = prepared.slice_modes(config.disambiguation, mode);
            pipelines_agree = reports_equal(
                &unrolled,
                &vp_sliced.report_with_unrolling_scalar(true),
            ) && reports_equal(
                &rolled,
                &vp_sliced.report_with_unrolling_scalar(false),
            );
            if full_oracle {
                // First workload: fully independent oracles — a dedicated
                // stride-mode preparation (its own predictor tables, no
                // sharing with the matrix base) read by the scalar cursor
                // and the streaming pipeline must see the same EV_VALPRED
                // flags, and the reference pass — which replays the
                // predictor independently — must land on the same
                // schedule.
                let vp_analyzer =
                    Analyzer::new(&program, config.clone().with_value_prediction(mode))?;
                let vp_prepared = vp_analyzer.prepare(&trace);
                let streamed = vp_analyzer.run_streamed_on(
                    &trace,
                    StreamOptions {
                        chunk_events: VALUEPRED_GATE_CHUNK_EVENTS,
                        machine_threads: 1,
                        par_threshold_events: 0,
                    },
                )?;
                let reference = vp_analyzer.run_on_trace_reference(&trace);
                let inmem = if config.unrolling { &unrolled } else { &rolled };
                pipelines_agree = pipelines_agree
                    && reports_equal(
                        &unrolled,
                        &vp_prepared.report_with_unrolling_scalar(true),
                    )
                    && reports_equal(
                        &rolled,
                        &vp_prepared.report_with_unrolling_scalar(false),
                    )
                    && reports_equal(&streamed.unrolled, &unrolled)
                    && reports_equal(&streamed.rolled, &rolled)
                    && reference.seq_instrs == inmem.seq_instrs
                    && reference
                        .results
                        .iter()
                        .zip(&inmem.results)
                        .all(|(a, b)| a.kind == b.kind && a.cycles == b.cycles);
            }
        }
        unrolled_reports.push((mode, unrolled));
        rolled_reports.push(rolled);
    }

    let unrolled_refs: Vec<(ValuePrediction, &Report)> = unrolled_reports
        .iter()
        .map(|(mode, report)| (*mode, report))
        .collect();
    let rolled_refs: Vec<(ValuePrediction, &Report)> = ValuePrediction::ALL
        .iter()
        .copied()
        .zip(rolled_reports.iter())
        .collect();
    let monotone = check_valuepred_monotonicity(&unrolled_refs).is_empty()
        && check_valuepred_monotonicity(&rolled_refs).is_empty();

    Ok(ValuePredWorkloadReport {
        workload,
        raw_instrs: trace.len() as u64,
        reports: unrolled_reports,
        monotone,
        pipelines_agree,
    })
}

/// Runs the whole suite across the value-prediction axis, fanning out
/// over [`par_map_suite`].
///
/// # Errors
///
/// Propagates the first compile/VM/analyzer failure.
pub fn run_valuepred_suite(config: &AnalysisConfig) -> Result<ValuePredSuite, AnalyzeError> {
    let oracle_on = suite().first().map(|w| w.name);
    Ok(ValuePredSuite {
        max_instrs: config.max_instrs,
        chunk_events: VALUEPRED_GATE_CHUNK_EVENTS,
        manifest: suite_manifest(config),
        reports: par_map_suite(|workload| {
            valuepred_workload(workload, config, Some(workload.name) == oracle_on)
        })?,
    })
}

impl ValuePredSuite {
    /// Whether the monotonicity gate passed on every workload: a
    /// stronger mode never lengthened any machine's critical path.
    pub fn is_monotone(&self) -> bool {
        self.reports.iter().all(|r| r.monotone)
    }

    /// Whether the stride-mode pipelines agreed bit for bit everywhere.
    pub fn pipelines_agree(&self) -> bool {
        self.reports.iter().all(|r| r.pipelines_agree)
    }

    fn mode_table(&self, mode: ValuePrediction) -> String {
        let mut out = String::from(
            "| program | BASE | CD | CD-MF | SP | SP-CD | SP-CD-MF | ORACLE |\n\
             |---------|------|----|-------|----|-------|----------|--------|\n",
        );
        for r in &self.reports {
            let report = r.report_for(mode);
            let mut line = format!("| {} |", r.workload.name);
            for kind in MachineKind::ALL {
                line.push_str(&format!(" {} |", fmt_parallelism(report.parallelism(kind))));
            }
            line.push('\n');
            out.push_str(&line);
        }
        let mut line = String::from("| **harmonic mean** |");
        for kind in MachineKind::ALL {
            let hm = harmonic_mean(
                self.reports
                    .iter()
                    .map(|r| r.report_for(mode).parallelism(kind)),
            );
            line.push_str(&format!(" {} |", fmt_parallelism(hm)));
        }
        line.push('\n');
        out.push_str(&line);
        out
    }

    /// The value-prediction-axis report (`results/value_prediction.md`):
    /// parallelism per machine under each mode, per-workload retention
    /// relative to the perfect value oracle, and the gate results.
    pub fn value_prediction_md(&self) -> String {
        let mut out = String::from(
            "## Value Prediction: Off vs Last-Value vs Stride vs Perfect\n\n\
             The paper's machines never speculate on *data*: a consumer\n\
             always waits for its producer's result. This axis relaxes\n\
             that. A correctly predicted register definition publishes\n\
             availability 0 — consumers proceed as if the value were\n\
             known at fetch — while a mispredicted one publishes its\n\
             real completion time, charging verification at resolve time\n\
             exactly like a mispredicted branch charges the sequential\n\
             machines. `last-value` and `stride` are trained on the\n\
             measured trace during the shared preparation walk;\n\
             `perfect` is the oracle upper bound. Parallelism below is\n\
             with perfect unrolling, harmonic mean over all programs.\n",
        );
        for (mode, blurb) in [
            (
                ValuePrediction::Off,
                "no value speculation (the paper's model)",
            ),
            (
                ValuePrediction::LastValue,
                "per-pc last-value predictor, trained on the trace",
            ),
            (
                ValuePrediction::Stride,
                "hybrid last-value + stride predictor (its correct set \
                 contains last-value's)",
            ),
            (ValuePrediction::Perfect, "oracle, every definition predicted"),
        ] {
            out.push_str(&format!("\n### `{}`: {}\n\n", mode.name(), blurb));
            out.push_str(&self.mode_table(mode));
        }

        out.push_str(
            "\n### Retention on SP-CD-MF\n\n\
             How much of the perfect-value-oracle parallelism each mode\n\
             reaches, on the machine where data dependences are the\n\
             binding constraint. `hit` is the predictor's measured hit\n\
             rate over the trace's register definitions. The modes'\n\
             correct sets nest (off ⊆ last-value ⊆ stride ⊆ perfect),\n\
             so every column is pointwise ordered.\n\n\
             | program | off | off/perfect | last-value | hit | stride | hit | stride/perfect | perfect |\n\
             |---------|-----|-------------|------------|-----|--------|-----|----------------|---------|\n",
        );
        for r in &self.reports {
            let kind = MachineKind::SpCdMf;
            let off = r.report_for(ValuePrediction::Off).parallelism(kind);
            let last = r.report_for(ValuePrediction::LastValue).parallelism(kind);
            let stride = r.report_for(ValuePrediction::Stride).parallelism(kind);
            let perfect = r.report_for(ValuePrediction::Perfect).parallelism(kind);
            out.push_str(&format!(
                "| {} | {} | {:.0}% | {} | {:.0}% | {} | {:.0}% | {:.0}% | {} |\n",
                r.workload.name,
                fmt_parallelism(off),
                100.0 * off / perfect,
                fmt_parallelism(last),
                r.hit_rate(ValuePrediction::LastValue),
                fmt_parallelism(stride),
                r.hit_rate(ValuePrediction::Stride),
                100.0 * stride / perfect,
                fmt_parallelism(perfect),
            ));
        }

        out.push_str(&format!(
            "\n### Gates\n\n\
             - monotonicity (perfect >= stride >= last-value >= off, \
             pointwise, both unroll settings): **{}**\n\
             - stride-mode pipelines bit-identical (lane vs scalar on \
             every workload; streamed chunk {} events, from-scratch \
             preparation, and the reference pass agreeing on every cycle \
             count on the first): **{}**\n",
            if self.is_monotone() { "pass" } else { "FAIL" },
            self.chunk_events,
            if self.pipelines_agree() { "pass" } else { "FAIL" },
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Execution-metrics suite
// ---------------------------------------------------------------------------

/// Per-machine execution metrics for one workload: the instruction mix of
/// its measured trace plus, for every machine model, the recorded-schedule
/// metrics from `clfp-metrics` (occupancy, critical-path attribution,
/// binding-edge counters).
#[derive(Clone, Debug)]
pub struct WorkloadMetrics {
    /// Workload name.
    pub name: &'static str,
    /// Raw dynamic instructions in the measured trace.
    pub raw_instrs: u64,
    /// Scheduled instructions after inlining/unrolling removal.
    pub seq_instrs: u64,
    /// Instruction-mix summary of the measured trace.
    pub trace: TraceSummary,
    /// Per-machine metrics, in `MachineKind::ALL` order.
    pub machines: Vec<(MachineKind, MachineMetrics)>,
}

/// Results of [`run_metrics_suite`]: every workload re-analyzed with the
/// recording metrics sink (`results/metrics_suite.json` and
/// `results/attribution.md`).
#[derive(Clone, Debug)]
pub struct MetricsSuite {
    /// Trace cap used.
    pub max_instrs: u64,
    /// Unroll setting the metrics were collected under.
    pub unrolling: bool,
    /// Provenance of this run (config hash, git describe, timestamp).
    pub manifest: RunManifest,
    /// Per-workload results, in suite order.
    pub reports: Vec<WorkloadMetrics>,
}

/// Collects execution metrics for one workload: one trace, one
/// preparation walk, then every configured machine with the recording
/// sink.
///
/// # Errors
///
/// Propagates compile/VM/analyzer failures.
pub fn metrics_workload(
    workload: Workload,
    config: &AnalysisConfig,
) -> Result<WorkloadMetrics, AnalyzeError> {
    let program = workload
        .compile()
        .map_err(|err| AnalyzeError::BadProgram(format!("{}: {err}", workload.name)))?;
    let analyzer = Analyzer::new(&program, config.clone())?;
    let (trace, _warm) = measured_trace(&program, config)?;
    let summary = trace.summarize(&program);
    let machines = analyzer.prepare(&trace).machine_metrics();
    let seq_instrs = machines.first().map_or(0, |(_, m)| m.instrs);
    Ok(WorkloadMetrics {
        name: workload.name,
        raw_instrs: trace.len() as u64,
        seq_instrs,
        trace: summary,
        machines,
    })
}

/// Runs the whole suite with the recording metrics sink, fanning out over
/// [`par_map_suite`].
///
/// # Errors
///
/// Propagates the first compile/VM/analyzer failure.
pub fn run_metrics_suite(config: &AnalysisConfig) -> Result<MetricsSuite, AnalyzeError> {
    Ok(MetricsSuite {
        max_instrs: config.max_instrs,
        unrolling: config.unrolling,
        manifest: suite_manifest(config),
        reports: par_map_suite(|workload| metrics_workload(workload, config))?,
    })
}

impl MetricsSuite {
    /// Serializes the results as JSON (`results/metrics_suite.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"suite\": \"per-machine execution metrics\",\n");
        out.push_str(&format!("  \"max_instrs\": {},\n", self.max_instrs));
        out.push_str(&format!("  \"unrolling\": {},\n", self.unrolling));
        out.push_str(&format!(
            "  \"manifest\": {},\n",
            self.manifest.to_json_object("  ")
        ));
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.reports.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"raw_instrs\": {}, \"seq_instrs\": {},\n",
                w.name, w.raw_instrs, w.seq_instrs
            ));
            let t = &w.trace;
            out.push_str(&format!(
                "     \"trace\": {{\"cond_branches\": {}, \"taken_branches\": {}, \
                 \"loads\": {}, \"stores\": {}, \"calls\": {}, \"returns\": {}, \
                 \"max_call_depth\": {}, \"distinct_mem_words\": {}}},\n",
                t.cond_branches,
                t.taken_branches,
                t.loads,
                t.stores,
                t.calls,
                t.returns,
                t.max_call_depth,
                t.distinct_mem_words,
            ));
            out.push_str("     \"machines\": [\n");
            for (j, (kind, m)) in w.machines.iter().enumerate() {
                let attr = &m.attribution;
                out.push_str(&format!(
                    "       {{\"machine\": \"{}\", \"cycles\": {}, \"instrs\": {}, \
                     \"parallelism\": {:.2},\n",
                    kind.name(),
                    m.cycles,
                    m.instrs,
                    m.parallelism(),
                ));
                out.push_str(&format!(
                    "        \"occupancy\": {{\"peak\": {}, \"busy_cycles\": {}, \
                     \"frac_instrs_ge_4\": {:.3}, \"frac_instrs_ge_64\": {:.3}}},\n",
                    m.occupancy.peak,
                    m.occupancy.busy_cycles,
                    m.occupancy.fraction_in_wide_cycles(4),
                    m.occupancy.fraction_in_wide_cycles(64),
                ));
                out.push_str(&format!(
                    "        \"critical_path\": {{\"chain_instrs\": {}, \"heads\": {}, \
                     \"reg_data\": {}, \"mem_data\": {}, \"control\": {}, \"mf_merge\": {}}},\n",
                    attr.chain_len,
                    attr.terminators,
                    attr.counts[0],
                    attr.counts[1],
                    attr.counts[2],
                    attr.counts[3],
                ));
                out.push_str(&format!(
                    "        \"binding\": {{\"reg_data\": {}, \"mem_data\": {}, \
                     \"control\": {}, \"mf_merge\": {}, \"unconstrained\": {}}}}}{}\n",
                    m.flow.by_kind[0],
                    m.flow.by_kind[1],
                    m.flow.by_kind[2],
                    m.flow.by_kind[3],
                    m.flow.unconstrained,
                    if j + 1 == w.machines.len() { "" } else { "," },
                ));
            }
            out.push_str(&format!(
                "     ]}}{}\n",
                if i + 1 == self.reports.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The critical-path attribution and cycle-occupancy report
    /// (`results/attribution.md`): *why* each machine's parallelism limit
    /// is what it is, per program.
    pub fn attribution_md(&self) -> String {
        let mut out = String::from(
            "## Critical-Path Attribution\n\n\
             For every machine, walk the longest dependence chain of each\n\
             program and classify the edge that bound each instruction on it:\n\
             register data dependence, memory data dependence, the machine's\n\
             own control constraint, or the single-flow merge ordering\n\
             (`mf-merge` — the constraint that following multiple flows of\n\
             control removes). Percentages are over classified chain edges;\n\
             `chain` is the number of instructions on the chain.\n",
        );
        for (index, &kind) in MachineKind::ALL.iter().enumerate() {
            out.push_str(&format!(
                "\n### {}\n\n\
                 | program | chain | reg-data % | mem-data % | control % | mf-merge % |\n\
                 |---------|-------|------------|------------|-----------|------------|\n",
                kind.name()
            ));
            for w in &self.reports {
                let Some((_, m)) = w.machines.get(index).filter(|(k, _)| *k == kind) else {
                    continue;
                };
                let attr = &m.attribution;
                out.push_str(&format!(
                    "| {} | {} | {:.1} | {:.1} | {:.1} | {:.1} |\n",
                    w.name,
                    attr.chain_len,
                    attr.percent(EdgeKind::RegData),
                    attr.percent(EdgeKind::MemData),
                    attr.percent(EdgeKind::Control),
                    attr.percent(EdgeKind::MfMerge),
                ));
            }
        }
        out.push_str(
            "\n## Cycle Occupancy\n\n\
             How the parallelism is shaped in time: the widest single cycle\n\
             and the fraction of all instructions issued in cycles at least\n\
             64 wide (burst share). Large limits are burst-shaped, not\n\
             steady streams.\n\n### Peak instructions in one cycle\n\n",
        );
        out.push_str(&self.occupancy_table(|m| format!("{}", m.occupancy.peak)));
        out.push_str("\n### Fraction of instructions issued in cycles ≥ 64 wide\n\n");
        out.push_str(&self.occupancy_table(|m| {
            format!("{:.2}", m.occupancy.fraction_in_wide_cycles(64))
        }));
        out
    }

    fn occupancy_table(&self, cell: impl Fn(&MachineMetrics) -> String) -> String {
        let mut out = String::from(
            "| program | BASE | CD | CD-MF | SP | SP-CD | SP-CD-MF | ORACLE |\n\
             |---------|------|----|-------|----|-------|----------|--------|\n",
        );
        for w in &self.reports {
            let mut line = format!("| {} |", w.name);
            for (_, m) in &w.machines {
                line.push_str(&format!(" {} |", cell(m)));
            }
            line.push('\n');
            out.push_str(&line);
        }
        out
    }
}

fn fmt_parallelism(p: f64) -> String {
    if p >= 1000.0 {
        format!("{p:.0}")
    } else if p >= 100.0 {
        format!("{p:.1}")
    } else {
        format!("{p:.2}")
    }
}

/// Static inventory of the suite: text size, basic blocks, procedures,
/// natural loops, and how many instructions the trace transformations
/// delete. Not a paper table, but the reviewer's first question.
pub fn static_inventory() -> String {
    let mut out = String::from(
        "## Static Inventory\n\n\
         | program | instrs | blocks | procs | loops | induction-marked | inline-marked |\n\
         |---------|--------|--------|-------|-------|------------------|---------------|\n",
    );
    for w in suite() {
        let program = w.compile().expect("suite compiles");
        let info = clfp_cfg::StaticInfo::analyze(&program);
        let unroll = (0..program.text.len() as u32)
            .filter(|&pc| info.masks.unroll_ignored(pc))
            .count();
        let inline = (0..program.text.len() as u32)
            .filter(|&pc| info.masks.inline_ignored(pc))
            .count();
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            w.name,
            program.text.len(),
            info.cfg.blocks().len(),
            info.cfg.procs().len(),
            info.loops.loops().len(),
            unroll,
            inline,
        ));
    }
    out
}

/// Table 1: the benchmark suite.
pub fn table1() -> String {
    let mut out = String::from(
        "## Table 1: Benchmark Programs\n\n\
         | program | paper analogue | class | description |\n\
         |---------|----------------|-------|-------------|\n",
    );
    for w in suite() {
        let class = match w.class {
            WorkloadClass::NonNumeric => "non-numeric",
            WorkloadClass::Numeric => "numeric",
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            w.name, w.paper_analog, class, w.description
        ));
    }
    out
}

/// Table 2: branch statistics (prediction rate, instructions between
/// branches).
pub fn table2(reports: &[WorkloadReport]) -> String {
    let mut out = String::from(
        "## Table 2: Branch Statistics\n\n\
         | program | prediction rate (%) | dynamic instrs between branches |\n\
         |---------|---------------------|--------------------------------|\n",
    );
    for r in reports {
        out.push_str(&format!(
            "| {} | {:.2} | {:.1} |\n",
            r.workload.name,
            r.unrolled.branches.prediction_rate(),
            r.unrolled.branches.instrs_between_branches()
        ));
    }
    out
}

/// Table 3: parallelism for every machine model, harmonic mean over the
/// non-numeric group.
pub fn table3(reports: &[WorkloadReport]) -> String {
    let mut out = String::from(
        "## Table 3: Parallelism for each Machine Model\n\n\
         | program | BASE | CD | CD-MF | SP | SP-CD | SP-CD-MF | ORACLE |\n\
         |---------|------|----|-------|----|-------|----------|--------|\n",
    );
    let row = |name: &str, report: &Report| {
        let mut line = format!("| {name} |");
        for kind in MachineKind::ALL {
            line.push_str(&format!(" {} |", fmt_parallelism(report.parallelism(kind))));
        }
        line.push('\n');
        line
    };
    for r in reports
        .iter()
        .filter(|r| r.workload.class == WorkloadClass::NonNumeric)
    {
        out.push_str(&row(r.workload.name, &r.unrolled));
    }
    // Harmonic mean over the non-numeric group, like the paper.
    let mut line = String::from("| **harmonic mean** |");
    for kind in MachineKind::ALL {
        let hm = harmonic_mean(
            reports
                .iter()
                .filter(|r| r.workload.class == WorkloadClass::NonNumeric)
                .map(|r| r.unrolled.parallelism(kind)),
        );
        line.push_str(&format!(" {} |", fmt_parallelism(hm)));
    }
    line.push('\n');
    out.push_str(&line);
    for r in reports
        .iter()
        .filter(|r| r.workload.class == WorkloadClass::Numeric)
    {
        out.push_str(&row(r.workload.name, &r.unrolled));
    }
    out
}

/// Table 4: percent change in parallelism due to perfect unrolling.
pub fn table4(reports: &[WorkloadReport]) -> String {
    let mut out = String::from(
        "## Table 4: Percent Change in Parallelism due to Perfect Loop Unrolling\n\n\
         | program | BASE | CD | CD-MF | SP | SP-CD | SP-CD-MF | ORACLE |\n\
         |---------|------|----|-------|----|-------|----------|--------|\n",
    );
    for r in reports {
        let mut line = format!("| {} |", r.workload.name);
        for kind in MachineKind::ALL {
            let with = r.unrolled.parallelism(kind);
            let without = r.rolled.parallelism(kind);
            let change = 100.0 * (with - without) / without;
            line.push_str(&format!(" {change:.0} |"));
        }
        line.push('\n');
        out.push_str(&line);
    }
    out
}

/// Figure 4: parallelism with control dependence analysis (CD vs BASE and
/// CD-MF vs CD), as a data series.
pub fn figure4(reports: &[WorkloadReport]) -> String {
    let mut out = String::from(
        "## Figure 4: Parallelism with Control Dependence Analysis\n\n\
         | program | BASE | CD | CD-MF | CD/BASE | CD-MF/CD |\n\
         |---------|------|----|-------|---------|----------|\n",
    );
    for r in reports
        .iter()
        .filter(|r| r.workload.class == WorkloadClass::NonNumeric)
    {
        let base = r.unrolled.parallelism(MachineKind::Base);
        let cd = r.unrolled.parallelism(MachineKind::Cd);
        let cdmf = r.unrolled.parallelism(MachineKind::CdMf);
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.2}x | {:.2}x |\n",
            r.workload.name,
            fmt_parallelism(base),
            fmt_parallelism(cd),
            fmt_parallelism(cdmf),
            cd / base,
            cdmf / cd
        ));
    }
    out
}

/// Figure 5: parallelism with speculative execution (SP family), as a data
/// series.
pub fn figure5(reports: &[WorkloadReport]) -> String {
    let mut out = String::from(
        "## Figure 5: Parallelism with Speculative Execution\n\n\
         | program | BASE | SP | SP-CD | SP-CD-MF | SP/BASE | SP-CD/SP | SP-CD-MF/SP-CD |\n\
         |---------|------|----|-------|----------|---------|----------|----------------|\n",
    );
    for r in reports
        .iter()
        .filter(|r| r.workload.class == WorkloadClass::NonNumeric)
    {
        let base = r.unrolled.parallelism(MachineKind::Base);
        let sp = r.unrolled.parallelism(MachineKind::Sp);
        let spcd = r.unrolled.parallelism(MachineKind::SpCd);
        let spcdmf = r.unrolled.parallelism(MachineKind::SpCdMf);
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.2}x | {:.2}x | {:.2}x |\n",
            r.workload.name,
            fmt_parallelism(base),
            fmt_parallelism(sp),
            fmt_parallelism(spcd),
            fmt_parallelism(spcdmf),
            sp / base,
            spcd / sp,
            spcdmf / spcd
        ));
    }
    out
}

/// Figure 6: cumulative distribution of misprediction distances.
pub fn figure6(reports: &[WorkloadReport]) -> String {
    let mut out = String::from(
        "## Figure 6: Cumulative Distribution of Misprediction Distances\n\n\
         Fraction of mispredictions within N instructions:\n\n\
         | program | ≤10 | ≤30 | ≤100 | ≤300 | ≤1000 | ≤10000 |\n\
         |---------|-----|-----|------|------|-------|--------|\n",
    );
    for r in reports
        .iter()
        .filter(|r| r.workload.class == WorkloadClass::NonNumeric)
    {
        let Some(stats) = &r.unrolled.mispred_stats else {
            continue;
        };
        let mut line = format!("| {} |", r.workload.name);
        for d in [10, 30, 100, 300, 1000, 10000] {
            line.push_str(&format!(" {:.2} |", stats.fraction_within(d)));
        }
        line.push('\n');
        out.push_str(&line);
    }
    out
}

/// Figure 7: harmonic-mean parallelism per misprediction distance, all
/// benchmarks combined.
pub fn figure7(reports: &[WorkloadReport]) -> String {
    let mut combined = MispredictionStats::new();
    for r in reports {
        if let Some(stats) = &r.unrolled.mispred_stats {
            combined.merge(stats);
        }
    }
    let mut out = String::from(
        "## Figure 7: Parallelism vs. Misprediction Distance (all programs combined)\n\n\
         | distance bucket | harmonic mean parallelism | segments |\n\
         |-----------------|---------------------------|----------|\n",
    );
    for (bucket, hmean, count) in combined.parallelism_by_distance() {
        out.push_str(&format!("| {bucket}+ | {hmean:.2} | {count} |\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> AnalysisConfig {
        AnalysisConfig {
            max_instrs: 30_000,
            mem_words: 4 << 20,
            ..AnalysisConfig::default()
        }
    }

    #[test]
    fn static_inventory_covers_suite() {
        let inventory = static_inventory();
        for w in suite() {
            assert!(inventory.contains(w.name));
        }
        // Inline-marked instructions exist everywhere (every program
        // calls); induction-marked exist in the loop-heavy programs.
        assert!(inventory.lines().count() > 12);
    }

    #[test]
    fn table1_lists_everything() {
        let table = table1();
        for w in suite() {
            assert!(table.contains(w.name));
            assert!(table.contains(w.paper_analog));
        }
    }

    #[test]
    fn timed_suite_compares_pipelines() {
        let config = AnalysisConfig {
            max_instrs: 8_000,
            ..tiny_config()
        };
        let timing = run_suite_timed(&config).unwrap();
        assert_eq!(timing.workloads.len(), 10);
        assert!(timing.reports_match, "pipelines diverged");
        assert!(timing.stream_matches, "streaming pipeline diverged");
        assert!(timing.lane_matches, "lane kernel diverged from scalar");
        assert!(timing.alias_matches, "static-alias pipelines diverged");
        assert!(timing.valuepred_matches, "value-prediction pipelines diverged");
        assert!(timing.cache_matches, "cache roundtrip diverged");
        assert_eq!(timing.cache, "off", "tests install no process cache");
        assert_eq!(timing.pool_threads, suite_pool_threads());
        assert!(timing.workloads.iter().all(|w| !w.cache_hit));
        assert!(timing.fused_wall_ms > 0.0);
        assert!(timing.lane_wall_ms > 0.0);
        assert!(timing.reference_wall_ms > 0.0);
        let json = timing.to_json();
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"reports_match\": true"));
        assert!(json.contains("\"stream_matches\": true"));
        assert!(json.contains("\"lane_matches\": true"));
        assert!(json.contains("\"alias_matches\": true"));
        assert!(json.contains("\"valuepred_matches\": true"));
        assert!(json.contains("\"cache_matches\": true"));
        assert!(json.contains("\"cache\": \"off\""));
        assert!(json.contains("\"pool_threads\""));
        assert!(json.contains("\"cache_hit\": false"));
        assert!(json.contains("\"lane_wall_ms\""));
        assert!(json.contains("\"chunk_events\""));
        assert!(json.contains("\"manifest\""));
        assert!(json.contains("\"config_hash\""));
        assert!(json.contains("\"prepare_ms\""));
        assert!(json.contains("\"machines_ms\""));
        assert!(json.contains("\"lane_machines_ms\""));
        assert!(json.contains("\"stream_ms\""));
        assert!(json.contains("\"stream_par_ms\""));
        assert!(json.trim_end().ends_with('}'));
        let summary = timing.summary();
        assert!(summary.contains("speedup"));
        assert!(summary.contains("scan"));
        assert!(summary.contains("streaming bit-identical: true"));
        assert!(summary.contains("lane bit-identical: true"));
        assert!(summary.contains("static-alias bit-identical: true"));
        assert!(summary.contains("value-pred bit-identical: true"));
        assert!(summary.contains("cache roundtrip bit-identical: true"));
        assert!(summary.contains("cache off"));
    }

    /// A hand-built [`SuiteTiming`] with known walls, for exercising the
    /// perf gate without paying for a suite run.
    fn synthetic_timing() -> SuiteTiming {
        let config = tiny_config();
        SuiteTiming {
            max_instrs: config.max_instrs,
            threads: 1,
            pool_threads: 1,
            cache: "off",
            fused_wall_ms: 100.0,
            lane_wall_ms: 80.0,
            reference_wall_ms: 300.0,
            speedup: 3.0,
            reports_match: true,
            chunk_events: 0,
            stream_matches: true,
            lane_matches: true,
            alias_matches: true,
            valuepred_matches: true,
            cache_matches: true,
            manifest: suite_manifest(&config),
            workloads: Vec::new(),
        }
    }

    #[test]
    fn perf_gate_passes_against_own_baseline() {
        let timing = synthetic_timing();
        let check = check_perf(&timing, &timing.to_json(), 50.0).unwrap();
        assert!(check.passed(), "regressions: {:?}", check.regressions);
        assert_eq!(check.lines.len(), 3);
        assert!(check.lines.iter().all(|l| l.contains("-- ok")));
    }

    #[test]
    fn perf_gate_fails_on_injected_slowdown() {
        // Shrink every baseline wall 10x: the unchanged current run now
        // reads as a 10x slowdown, far beyond any sane tolerance.
        let timing = synthetic_timing();
        let mut baseline = timing.to_json();
        for (key, shrunk) in [
            ("\"fused_wall_ms\": 100.0", "\"fused_wall_ms\": 10.0"),
            ("\"lane_wall_ms\": 80.0", "\"lane_wall_ms\": 8.0"),
            ("\"reference_wall_ms\": 300.0", "\"reference_wall_ms\": 30.0"),
        ] {
            assert!(baseline.contains(key), "fixture drifted: {key}");
            baseline = baseline.replace(key, shrunk);
        }
        let check = check_perf(&timing, &baseline, 50.0).unwrap();
        assert_eq!(check.regressions.len(), 3, "all three walls regressed");
        assert!(!check.passed());
        // A huge tolerance waives the walls again.
        assert!(check_perf(&timing, &baseline, 2000.0).unwrap().passed());
    }

    #[test]
    fn perf_gate_flags_failed_identity_gates() {
        let mut timing = synthetic_timing();
        let baseline = timing.to_json();
        timing.lane_matches = false;
        let check = check_perf(&timing, &baseline, 50.0).unwrap();
        assert!(!check.passed());
        assert!(check.regressions.iter().any(|r| r.contains("lane_matches")));
    }

    #[test]
    fn perf_gate_rejects_cross_config_baselines() {
        let timing = synthetic_timing();
        let other = AnalysisConfig {
            max_instrs: timing.max_instrs + 1,
            ..tiny_config()
        };
        let mut mismatched = synthetic_timing();
        mismatched.manifest = suite_manifest(&other);
        let err = check_perf(&timing, &mismatched.to_json(), 50.0).unwrap_err();
        assert!(err.contains("config hash"), "{err}");
        assert!(check_perf(&timing, "{}", 50.0).is_err(), "no hash at all");
    }

    #[test]
    fn pipeline_profile_renders_stages_groups_and_counters() {
        use clfp_metrics::trace::{ArgValue, CounterEvent, SpanEvent, TraceLog, TraceRecord};
        let span = |name: &str, ts_us: u64, dur_us: u64, args: Vec<(&'static str, ArgValue)>| {
            TraceRecord::Span(SpanEvent {
                name: name.to_string(),
                cat: "suite",
                ts_us,
                dur_us,
                tid: 0,
                args,
            })
        };
        let log = TraceLog {
            records: vec![
                span("suite.total", 0, 1000, vec![]),
                span("suite.compile", 0, 100, vec![("workload", "scan".into())]),
                span("suite.machines.lane", 100, 860, vec![("workload", "scan".into())]),
                span(
                    "lane.group",
                    120,
                    700,
                    vec![
                        ("group", ArgValue::U64(0)),
                        ("cd", ArgValue::Bool(true)),
                        ("lanes", ArgValue::U64(2)),
                        ("width", ArgValue::U64(2)),
                        ("key_mode", ArgValue::Str("event".into())),
                        ("slots", ArgValue::Str("0:CD+u,1:CD-MF+u".into())),
                        ("events", ArgValue::U64(5000)),
                        ("chunks", ArgValue::U64(3)),
                    ],
                ),
                TraceRecord::Counter(CounterEvent {
                    name: "cache.hit".to_string(),
                    cat: "cache",
                    ts_us: 10,
                    tid: 0,
                    value: 7,
                }),
            ],
            thread_names: vec![(0, "main".to_string())],
        };
        let md = pipeline_profile_md(&synthetic_timing(), &log);
        assert!(md.contains("## Stage attribution"));
        assert!(md.contains("| suite.machines.lane | 1 | 0.9 | 86.0% |"));
        assert!(md.contains("**96.0% coverage**"), "{md}");
        assert!(md.contains("`0:CD+u,1:CD-MF+u`"));
        assert!(md.contains("| 5000 | 3 |"));
        assert!(md.contains("| cache.hit | 7 |"));
        assert!(!md.contains("| suite.total |"), "total is the denominator");
    }

    /// End-to-end warm-cache equivalence without touching the process
    /// global: a cold `ensure` captures and stores, a warm `ensure`
    /// reloads, and the analysis of both — plus the chunked pipeline
    /// streaming straight from the cache file — is bit-identical.
    #[test]
    fn warm_cache_rerun_is_bit_identical() {
        let config = tiny_config();
        let dir = std::env::temp_dir().join(format!("clfp-bench-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = TraceCache::new(&dir);
        let options = clfp_vm::VmOptions {
            mem_words: config.mem_words,
        };
        for workload in suite().into_iter().take(2) {
            let program = workload.compile().unwrap();
            let (cold, warm) = cache.ensure(&program, options, config.max_instrs).unwrap();
            assert!(!warm, "{}: first run must execute", workload.name);
            let (reloaded, warm) = cache.ensure(&program, options, config.max_instrs).unwrap();
            assert!(warm, "{}: second run must hit", workload.name);

            let analyzer = Analyzer::new(&program, config.clone()).unwrap();
            let (cold_unrolled, cold_rolled) = analyzer.prepare(&cold).report_both();
            let (warm_unrolled, warm_rolled) = analyzer.prepare(&reloaded).report_both();
            assert!(reports_equal(&cold_unrolled, &warm_unrolled), "{}", workload.name);
            assert!(reports_equal(&cold_rolled, &warm_rolled), "{}", workload.name);

            let file = cache.lookup(&program, config.max_instrs).unwrap();
            let streamed = analyzer
                .run_streamed_on(
                    &file,
                    StreamOptions {
                        chunk_events: 4096,
                        machine_threads: 1,
                        par_threshold_events: 0,
                    },
                )
                .unwrap();
            assert!(reports_equal(&streamed.unrolled, &cold_unrolled), "{}", workload.name);
            assert!(reports_equal(&streamed.rolled, &cold_rolled), "{}", workload.name);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn alias_suite_sweeps_modes_and_passes_gates() {
        let suite = run_alias_suite(&tiny_config()).unwrap();
        assert_eq!(suite.reports.len(), 10);
        assert!(suite.is_sound(), "dynamic conflict on a no-alias pair");
        assert!(suite.pipelines_agree(), "static-mode pipelines diverged");
        let mut static_differs = false;
        let mut none_differs = false;
        for r in &suite.reports {
            assert!(r.num_classes >= 1, "{}", r.workload.name);
            for kind in MachineKind::ALL {
                let perfect = r.report_for(MemDisambiguation::Perfect).parallelism(kind);
                let stat = r.report_for(MemDisambiguation::Static).parallelism(kind);
                let none = r.report_for(MemDisambiguation::None).parallelism(kind);
                for p in [perfect, stat, none] {
                    assert!(p.is_finite() && p >= 1.0, "{} {kind:?}: {p}", r.workload.name);
                }
                // Coarse modes accumulate the store max, so weakening
                // the analysis never helps — pointwise, every machine.
                assert!(
                    stat <= perfect + 1e-9,
                    "{} {kind:?}: static {stat} beat perfect {perfect}",
                    r.workload.name
                );
                assert!(
                    none <= stat + 1e-9,
                    "{} {kind:?}: none {none} beat static {stat}",
                    r.workload.name
                );
                static_differs |= stat != perfect;
                none_differs |= none != stat;
            }
            // Every mode schedules the same instructions.
            let seq = r.report_for(MemDisambiguation::Perfect).seq_instrs;
            assert_eq!(r.report_for(MemDisambiguation::Static).seq_instrs, seq);
            assert_eq!(r.report_for(MemDisambiguation::None).seq_instrs, seq);
        }
        // And the axis is live: each weakening changes some schedule.
        assert!(static_differs, "static mode never changed a schedule");
        assert!(none_differs, "none mode never changed a schedule");
        let md = suite.disambiguation_md();
        assert!(md.contains("## Memory Disambiguation"));
        assert!(md.contains("### `perfect`"));
        assert!(md.contains("### `static`"));
        assert!(md.contains("### `none`"));
        assert!(md.contains("### Retention on SP-CD-MF"));
        assert!(md.contains("harmonic mean"));
        assert!(md.contains("- alias soundness, in-memory walker: **pass**"));
        assert!(md.contains("streamed walker (chunk 4096 events): **pass**"));
        assert!(md.contains("static-mode pipelines bit-identical"));
        assert!(md.contains("preparation oracle on the first): **pass**"));
        assert!(md.contains("scan"));
    }

    #[test]
    fn valuepred_suite_sweeps_modes_and_passes_gates() {
        let suite = run_valuepred_suite(&tiny_config()).unwrap();
        assert_eq!(suite.reports.len(), 10);
        assert!(suite.is_monotone(), "a stronger mode lengthened a schedule");
        assert!(suite.pipelines_agree(), "stride-mode pipelines diverged");
        let mut last_differs = false;
        let mut stride_differs = false;
        let mut perfect_differs = false;
        for r in &suite.reports {
            // Hit rates nest with the correct sets.
            assert_eq!(r.hit_rate(ValuePrediction::Off), 0.0, "{}", r.workload.name);
            assert_eq!(
                r.hit_rate(ValuePrediction::Perfect),
                100.0,
                "{}",
                r.workload.name
            );
            let lv_rate = r.hit_rate(ValuePrediction::LastValue);
            let stride_rate = r.hit_rate(ValuePrediction::Stride);
            assert!(
                (0.0..=100.0).contains(&lv_rate) && lv_rate <= stride_rate + 1e-9,
                "{}: last-value hit {lv_rate}% beat stride {stride_rate}%",
                r.workload.name
            );
            for kind in MachineKind::ALL {
                let off = r.report_for(ValuePrediction::Off).parallelism(kind);
                let last = r.report_for(ValuePrediction::LastValue).parallelism(kind);
                let stride = r.report_for(ValuePrediction::Stride).parallelism(kind);
                let perfect = r.report_for(ValuePrediction::Perfect).parallelism(kind);
                for p in [off, last, stride, perfect] {
                    assert!(p.is_finite() && p >= 1.0, "{} {kind:?}: {p}", r.workload.name);
                }
                // Nested correct sets: strengthening the predictor never
                // hurts — pointwise, every machine.
                assert!(
                    off <= last + 1e-9,
                    "{} {kind:?}: off {off} beat last-value {last}",
                    r.workload.name
                );
                assert!(
                    last <= stride + 1e-9,
                    "{} {kind:?}: last-value {last} beat stride {stride}",
                    r.workload.name
                );
                assert!(
                    stride <= perfect + 1e-9,
                    "{} {kind:?}: stride {stride} beat perfect {perfect}",
                    r.workload.name
                );
                last_differs |= last != off;
                stride_differs |= stride != last;
                perfect_differs |= perfect != stride;
            }
            // Every mode schedules the same instructions.
            let seq = r.report_for(ValuePrediction::Off).seq_instrs;
            for mode in ValuePrediction::ALL {
                assert_eq!(r.report_for(mode).seq_instrs, seq, "{}", r.workload.name);
            }
        }
        // And the axis is live: each strengthening changes some schedule.
        assert!(last_differs, "last-value mode never changed a schedule");
        assert!(stride_differs, "stride mode never changed a schedule");
        assert!(perfect_differs, "perfect mode never changed a schedule");
        let md = suite.value_prediction_md();
        assert!(md.contains("## Value Prediction"));
        assert!(md.contains("### `off`"));
        assert!(md.contains("### `last-value`"));
        assert!(md.contains("### `stride`"));
        assert!(md.contains("### `perfect`"));
        assert!(md.contains("### Retention on SP-CD-MF"));
        assert!(md.contains("harmonic mean"));
        assert!(md.contains("- monotonicity"));
        assert!(md.contains("pointwise, both unroll settings): **pass**"));
        assert!(md.contains("stride-mode pipelines bit-identical"));
        assert!(md.contains("count on the first): **pass**"));
        assert!(md.contains("scan"));
    }

    #[test]
    fn scaling_suite_streams_repeated_sources() {
        let suite = run_scaling_suite(
            &tiny_config(),
            &["qsort", "stencil"],
            &[60_000, 20_000],
            StreamOptions {
                chunk_events: 4096,
                machine_threads: 1,
                par_threshold_events: 0,
            },
        )
        .unwrap();
        assert_eq!(suite.points.len(), 4);
        assert_eq!(suite.chunk_events, 4096);
        assert_eq!(suite.machine_threads, 1);
        // Points are visited in increasing size order regardless of the
        // order they were requested in.
        assert_eq!(suite.points[0].max_instrs, 20_000);
        assert_eq!(suite.points[2].max_instrs, 60_000);
        for p in &suite.points {
            // The repeated source tiles execution to exactly the cap.
            assert_eq!(p.raw_instrs, p.max_instrs, "{}", p.workload);
            assert!(p.events_per_sec > 0.0);
        }
        // Smallest point carries the in-memory cross-check, larger do not.
        assert_eq!(suite.points[0].matches_inmemory, Some(true));
        assert_eq!(suite.points[1].matches_inmemory, Some(true));
        assert_eq!(suite.points[2].matches_inmemory, None);
        // VmHWM is available on this platform and monotone.
        assert!(suite.points[0].peak_rss_mb > 0.0);
        assert!(suite.points[3].peak_rss_mb >= suite.points[0].peak_rss_mb);
        let json = suite.to_json();
        assert!(json.contains("\"peak_rss_mb\""));
        assert!(json.contains("\"matches_inmemory\": true"));
        assert!(json.contains("\"matches_inmemory\": null"));
        assert!(json.contains("\"manifest\""));
        assert!(json.trim_end().ends_with('}'));
        let summary = suite.summary();
        assert!(summary.contains("qsort"));
        assert!(summary.contains("stencil"));
        assert!(summary.contains("MiB"));
    }

    #[test]
    fn lint_suite_is_clean() {
        let lint = run_lint_suite(&tiny_config()).unwrap();
        assert_eq!(lint.reports.len(), 10);
        assert!(lint.is_clean(), "{}", lint.summary());
        // Errors can never hide behind a waiver.
        for report in &lint.reports {
            assert_eq!(report.count(Severity::Error), 0, "{}", report.name);
        }
        let json = lint.to_json();
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"seq_instrs_unrolled\""));
        assert!(json.contains("\"manifest\""));
        assert!(json.trim_end().ends_with('}'));
        let summary = lint.summary();
        assert!(summary.contains("scan"));
        assert!(summary.contains("clean"));
    }

    #[test]
    fn metrics_suite_attributes_every_machine() {
        let suite = run_metrics_suite(&tiny_config()).unwrap();
        assert_eq!(suite.reports.len(), 10);
        for w in &suite.reports {
            assert_eq!(w.machines.len(), MachineKind::ALL.len());
            assert!(w.seq_instrs > 0, "{}", w.name);
            for (kind, m) in &w.machines {
                assert_eq!(m.instrs, w.seq_instrs, "{} {}", w.name, kind.name());
                assert!(m.cycles > 0 && m.cycles <= m.instrs);
                assert_eq!(m.flow.total(), m.instrs);
                assert_eq!(m.occupancy.instrs, m.instrs);
                assert!(m.occupancy.peak <= m.instrs);
                let attr = &m.attribution;
                if attr.classified() > 0 {
                    let sum: f64 = EdgeKind::ALL.iter().map(|&k| attr.percent(k)).sum();
                    assert!((sum - 100.0).abs() < 1e-6, "{} {}", w.name, kind.name());
                }
                if *kind == MachineKind::Oracle {
                    // The oracle has no control constraint at all.
                    assert_eq!(m.flow.control_bound(), 0, "{}", w.name);
                    assert_eq!(attr.counts[2] + attr.counts[3], 0, "{}", w.name);
                }
                if kind.multiple_flows() {
                    // Following multiple flows removes exactly the merge
                    // ordering — no mf-merge edges can remain.
                    assert_eq!(m.flow.by_kind[3], 0, "{} {}", w.name, kind.name());
                }
            }
        }
        let json = suite.to_json();
        assert!(json.contains("\"critical_path\""));
        assert!(json.contains("\"binding\""));
        assert!(json.contains("\"config_hash\""));
        assert!(json.trim_end().ends_with('}'));
        let md = suite.attribution_md();
        assert!(md.contains("### ORACLE"));
        assert!(md.contains("mf-merge"));
        assert!(md.contains("## Cycle Occupancy"));
        assert!(md.contains("scan"));
    }

    #[test]
    fn suite_runs_and_formats() {
        let reports = run_suite(&tiny_config()).unwrap();
        assert_eq!(reports.len(), 10);
        let t2 = table2(&reports);
        let t3 = table3(&reports);
        let t4 = table4(&reports);
        assert!(t2.contains("scan"));
        assert!(t3.contains("harmonic mean"));
        assert!(t4.contains("matmul"));
        let f4 = figure4(&reports);
        let f5 = figure5(&reports);
        let f6 = figure6(&reports);
        let f7 = figure7(&reports);
        assert!(f4.contains("CD-MF/CD"));
        assert!(f5.contains("SP-CD-MF"));
        assert!(f6.contains("qsort"));
        assert!(f7.contains("harmonic"));
    }
}
