//! # clfp-bench
//!
//! The experiment harness: runs the full workload suite through the limit
//! analyzer and regenerates **every table and figure** of the paper's
//! evaluation section as text/markdown, via the `regen` binary:
//!
//! ```text
//! cargo run --release -p clfp-bench --bin regen            # everything
//! cargo run --release -p clfp-bench --bin regen -- --table 3
//! cargo run --release -p clfp-bench --bin regen -- --figure 6 --max-instr 500000
//! ```
//!
//! Criterion micro-benchmarks for the analyzer itself live in `benches/`.

use clfp_limits::{
    harmonic_mean, AnalysisConfig, Analyzer, AnalyzeError, MachineKind, MispredictionStats,
    Report,
};
use clfp_workloads::{suite, Workload, WorkloadClass};

/// Analysis results for one workload, with and without perfect unrolling.
pub struct WorkloadReport {
    /// The workload.
    pub workload: Workload,
    /// Report with perfect unrolling (the paper's headline setting).
    pub unrolled: Report,
    /// Report without perfect unrolling (Table 4's baseline).
    pub rolled: Report,
}

/// Runs the whole suite under `config`, producing both unrolling settings
/// from a single trace per workload. Workloads are analyzed on parallel
/// threads (they are completely independent).
///
/// # Errors
///
/// Propagates the first analyzer error (a faulting workload would be a
/// bug).
pub fn run_suite(config: &AnalysisConfig) -> Result<Vec<WorkloadReport>, AnalyzeError> {
    let workloads = suite();
    let results: Vec<Result<WorkloadReport, AnalyzeError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .into_iter()
            .map(|workload| {
                let config = config.clone();
                scope.spawn(move || analyze_workload(workload, &config))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("workload analysis panicked"))
            .collect()
    });
    results.into_iter().collect()
}

fn analyze_workload(
    workload: Workload,
    config: &AnalysisConfig,
) -> Result<WorkloadReport, AnalyzeError> {
    let program = workload
        .compile()
        .map_err(|err| AnalyzeError::BadProgram(format!("{}: {err}", workload.name)))?;
    let unrolled_config = AnalysisConfig {
        unrolling: true,
        ..config.clone()
    };
    let analyzer = Analyzer::new(&program, unrolled_config)?;
    let mut vm = clfp_vm::Vm::new(
        &program,
        clfp_vm::VmOptions {
            mem_words: config.mem_words,
        },
    );
    let trace = vm.trace(config.max_instrs)?;
    let unrolled = analyzer.run_on_trace(&trace);

    let rolled_config = AnalysisConfig {
        unrolling: false,
        ..config.clone()
    };
    let analyzer = Analyzer::new(&program, rolled_config)?;
    let rolled = analyzer.run_on_trace(&trace);

    Ok(WorkloadReport {
        workload,
        unrolled,
        rolled,
    })
}

fn fmt_parallelism(p: f64) -> String {
    if p >= 1000.0 {
        format!("{p:.0}")
    } else if p >= 100.0 {
        format!("{p:.1}")
    } else {
        format!("{p:.2}")
    }
}

/// Static inventory of the suite: text size, basic blocks, procedures,
/// natural loops, and how many instructions the trace transformations
/// delete. Not a paper table, but the reviewer's first question.
pub fn static_inventory() -> String {
    let mut out = String::from(
        "## Static Inventory\n\n\
         | program | instrs | blocks | procs | loops | induction-marked | inline-marked |\n\
         |---------|--------|--------|-------|-------|------------------|---------------|\n",
    );
    for w in suite() {
        let program = w.compile().expect("suite compiles");
        let info = clfp_cfg::StaticInfo::analyze(&program);
        let unroll = (0..program.text.len() as u32)
            .filter(|&pc| info.masks.unroll_ignored(pc))
            .count();
        let inline = (0..program.text.len() as u32)
            .filter(|&pc| info.masks.inline_ignored(pc))
            .count();
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            w.name,
            program.text.len(),
            info.cfg.blocks().len(),
            info.cfg.procs().len(),
            info.loops.loops().len(),
            unroll,
            inline,
        ));
    }
    out
}

/// Table 1: the benchmark suite.
pub fn table1() -> String {
    let mut out = String::from(
        "## Table 1: Benchmark Programs\n\n\
         | program | paper analogue | class | description |\n\
         |---------|----------------|-------|-------------|\n",
    );
    for w in suite() {
        let class = match w.class {
            WorkloadClass::NonNumeric => "non-numeric",
            WorkloadClass::Numeric => "numeric",
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            w.name, w.paper_analog, class, w.description
        ));
    }
    out
}

/// Table 2: branch statistics (prediction rate, instructions between
/// branches).
pub fn table2(reports: &[WorkloadReport]) -> String {
    let mut out = String::from(
        "## Table 2: Branch Statistics\n\n\
         | program | prediction rate (%) | dynamic instrs between branches |\n\
         |---------|---------------------|--------------------------------|\n",
    );
    for r in reports {
        out.push_str(&format!(
            "| {} | {:.2} | {:.1} |\n",
            r.workload.name,
            r.unrolled.branches.prediction_rate(),
            r.unrolled.branches.instrs_between_branches()
        ));
    }
    out
}

/// Table 3: parallelism for every machine model, harmonic mean over the
/// non-numeric group.
pub fn table3(reports: &[WorkloadReport]) -> String {
    let mut out = String::from(
        "## Table 3: Parallelism for each Machine Model\n\n\
         | program | BASE | CD | CD-MF | SP | SP-CD | SP-CD-MF | ORACLE |\n\
         |---------|------|----|-------|----|-------|----------|--------|\n",
    );
    let row = |name: &str, report: &Report| {
        let mut line = format!("| {name} |");
        for kind in MachineKind::ALL {
            line.push_str(&format!(" {} |", fmt_parallelism(report.parallelism(kind))));
        }
        line.push('\n');
        line
    };
    for r in reports
        .iter()
        .filter(|r| r.workload.class == WorkloadClass::NonNumeric)
    {
        out.push_str(&row(r.workload.name, &r.unrolled));
    }
    // Harmonic mean over the non-numeric group, like the paper.
    let mut line = String::from("| **harmonic mean** |");
    for kind in MachineKind::ALL {
        let hm = harmonic_mean(
            reports
                .iter()
                .filter(|r| r.workload.class == WorkloadClass::NonNumeric)
                .map(|r| r.unrolled.parallelism(kind)),
        );
        line.push_str(&format!(" {} |", fmt_parallelism(hm)));
    }
    line.push('\n');
    out.push_str(&line);
    for r in reports
        .iter()
        .filter(|r| r.workload.class == WorkloadClass::Numeric)
    {
        out.push_str(&row(r.workload.name, &r.unrolled));
    }
    out
}

/// Table 4: percent change in parallelism due to perfect unrolling.
pub fn table4(reports: &[WorkloadReport]) -> String {
    let mut out = String::from(
        "## Table 4: Percent Change in Parallelism due to Perfect Loop Unrolling\n\n\
         | program | BASE | CD | CD-MF | SP | SP-CD | SP-CD-MF | ORACLE |\n\
         |---------|------|----|-------|----|-------|----------|--------|\n",
    );
    for r in reports {
        let mut line = format!("| {} |", r.workload.name);
        for kind in MachineKind::ALL {
            let with = r.unrolled.parallelism(kind);
            let without = r.rolled.parallelism(kind);
            let change = 100.0 * (with - without) / without;
            line.push_str(&format!(" {change:.0} |"));
        }
        line.push('\n');
        out.push_str(&line);
    }
    out
}

/// Figure 4: parallelism with control dependence analysis (CD vs BASE and
/// CD-MF vs CD), as a data series.
pub fn figure4(reports: &[WorkloadReport]) -> String {
    let mut out = String::from(
        "## Figure 4: Parallelism with Control Dependence Analysis\n\n\
         | program | BASE | CD | CD-MF | CD/BASE | CD-MF/CD |\n\
         |---------|------|----|-------|---------|----------|\n",
    );
    for r in reports
        .iter()
        .filter(|r| r.workload.class == WorkloadClass::NonNumeric)
    {
        let base = r.unrolled.parallelism(MachineKind::Base);
        let cd = r.unrolled.parallelism(MachineKind::Cd);
        let cdmf = r.unrolled.parallelism(MachineKind::CdMf);
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.2}x | {:.2}x |\n",
            r.workload.name,
            fmt_parallelism(base),
            fmt_parallelism(cd),
            fmt_parallelism(cdmf),
            cd / base,
            cdmf / cd
        ));
    }
    out
}

/// Figure 5: parallelism with speculative execution (SP family), as a data
/// series.
pub fn figure5(reports: &[WorkloadReport]) -> String {
    let mut out = String::from(
        "## Figure 5: Parallelism with Speculative Execution\n\n\
         | program | BASE | SP | SP-CD | SP-CD-MF | SP/BASE | SP-CD/SP | SP-CD-MF/SP-CD |\n\
         |---------|------|----|-------|----------|---------|----------|----------------|\n",
    );
    for r in reports
        .iter()
        .filter(|r| r.workload.class == WorkloadClass::NonNumeric)
    {
        let base = r.unrolled.parallelism(MachineKind::Base);
        let sp = r.unrolled.parallelism(MachineKind::Sp);
        let spcd = r.unrolled.parallelism(MachineKind::SpCd);
        let spcdmf = r.unrolled.parallelism(MachineKind::SpCdMf);
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.2}x | {:.2}x | {:.2}x |\n",
            r.workload.name,
            fmt_parallelism(base),
            fmt_parallelism(sp),
            fmt_parallelism(spcd),
            fmt_parallelism(spcdmf),
            sp / base,
            spcd / sp,
            spcdmf / spcd
        ));
    }
    out
}

/// Figure 6: cumulative distribution of misprediction distances.
pub fn figure6(reports: &[WorkloadReport]) -> String {
    let mut out = String::from(
        "## Figure 6: Cumulative Distribution of Misprediction Distances\n\n\
         Fraction of mispredictions within N instructions:\n\n\
         | program | ≤10 | ≤30 | ≤100 | ≤300 | ≤1000 | ≤10000 |\n\
         |---------|-----|-----|------|------|-------|--------|\n",
    );
    for r in reports
        .iter()
        .filter(|r| r.workload.class == WorkloadClass::NonNumeric)
    {
        let Some(stats) = &r.unrolled.mispred_stats else {
            continue;
        };
        let mut line = format!("| {} |", r.workload.name);
        for d in [10, 30, 100, 300, 1000, 10000] {
            line.push_str(&format!(" {:.2} |", stats.fraction_within(d)));
        }
        line.push('\n');
        out.push_str(&line);
    }
    out
}

/// Figure 7: harmonic-mean parallelism per misprediction distance, all
/// benchmarks combined.
pub fn figure7(reports: &[WorkloadReport]) -> String {
    let mut combined = MispredictionStats::new();
    for r in reports {
        if let Some(stats) = &r.unrolled.mispred_stats {
            combined.merge(stats);
        }
    }
    let mut out = String::from(
        "## Figure 7: Parallelism vs. Misprediction Distance (all programs combined)\n\n\
         | distance bucket | harmonic mean parallelism | segments |\n\
         |-----------------|---------------------------|----------|\n",
    );
    for (bucket, hmean, count) in combined.parallelism_by_distance() {
        out.push_str(&format!("| {bucket}+ | {hmean:.2} | {count} |\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> AnalysisConfig {
        AnalysisConfig {
            max_instrs: 30_000,
            mem_words: 4 << 20,
            ..AnalysisConfig::default()
        }
    }

    #[test]
    fn static_inventory_covers_suite() {
        let inventory = static_inventory();
        for w in suite() {
            assert!(inventory.contains(w.name));
        }
        // Inline-marked instructions exist everywhere (every program
        // calls); induction-marked exist in the loop-heavy programs.
        assert!(inventory.lines().count() > 12);
    }

    #[test]
    fn table1_lists_everything() {
        let table = table1();
        for w in suite() {
            assert!(table.contains(w.name));
            assert!(table.contains(w.paper_analog));
        }
    }

    #[test]
    fn suite_runs_and_formats() {
        let reports = run_suite(&tiny_config()).unwrap();
        assert_eq!(reports.len(), 10);
        let t2 = table2(&reports);
        let t3 = table3(&reports);
        let t4 = table4(&reports);
        assert!(t2.contains("scan"));
        assert!(t3.contains("harmonic mean"));
        assert!(t4.contains("matmul"));
        let f4 = figure4(&reports);
        let f5 = figure5(&reports);
        let f6 = figure6(&reports);
        let f7 = figure7(&reports);
        assert!(f4.contains("CD-MF/CD"));
        assert!(f5.contains("SP-CD-MF"));
        assert!(f6.contains("qsort"));
        assert!(f7.contains("harmonic"));
    }
}
