//! Provenance gate for the committed artifacts: every file under
//! `results/` and every `BENCH_*.json` at the repo root must carry a
//! `clfp-manifest` header whose `config_hash` round-trips through
//! [`RunManifest::config_hash_of`] — otherwise `regen`'s overwrite guard
//! (which refuses to clobber results of unknown provenance) would lock
//! the repo's own artifacts out of regeneration.

use clfp_metrics::RunManifest;

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("bench crate lives two levels under the repo root")
}

fn is_hex_hash(hash: &str) -> bool {
    hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit())
}

#[test]
fn every_committed_artifact_carries_a_parsable_config_hash() {
    let root = repo_root();
    let mut checked = 0;

    let results = root.join("results");
    let entries = std::fs::read_dir(&results).expect("results/ exists");
    for entry in entries {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !(name.ends_with(".md") || name.ends_with(".json")) {
            continue;
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        let hash = RunManifest::config_hash_of(&contents)
            .unwrap_or_else(|| panic!("results/{name}: no parsable config_hash"));
        assert!(is_hex_hash(&hash), "results/{name}: malformed hash `{hash}`");
        checked += 1;
    }

    for entry in std::fs::read_dir(&root).expect("repo root readable") {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        let hash = RunManifest::config_hash_of(&contents)
            .unwrap_or_else(|| panic!("{name}: no parsable config_hash"));
        assert!(is_hex_hash(&hash), "{name}: malformed hash `{hash}`");
        checked += 1;
    }

    // The committed artifact set: 14+ results files and 2 BENCH files.
    // A collapse here means the directory walk silently missed them.
    assert!(checked >= 16, "only {checked} artifacts checked");
}

#[test]
fn fresh_manifest_headers_round_trip() {
    let config = clfp_limits::AnalysisConfig::quick();
    let manifest = clfp_bench::suite_manifest(&config)
        .with_pool_threads(3)
        .with_cache("warm");
    assert!(is_hex_hash(&manifest.config_hash));

    let header = manifest.to_markdown_header();
    assert_eq!(
        RunManifest::config_hash_of(&header).as_deref(),
        Some(manifest.config_hash.as_str())
    );
    let json = manifest.to_json_object("  ");
    assert_eq!(
        RunManifest::config_hash_of(&json).as_deref(),
        Some(manifest.config_hash.as_str())
    );

    // A stamped artifact (header + body) must parse identically to the
    // bare header — this is exactly what `write_guarded` reads back.
    let stamped = format!("{header}\n# Some table\n\n| a | b |\n");
    assert_eq!(
        RunManifest::config_hash_of(&stamped).as_deref(),
        Some(manifest.config_hash.as_str())
    );
}
