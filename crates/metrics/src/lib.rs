//! Observability layer for the clfp limit study.
//!
//! The machine passes in `clfp-limits` answer *how much* parallelism each
//! abstract machine finds; this crate answers *why*. It provides:
//!
//! * [`MetricsSink`] — a zero-cost instrumentation hook for the fused
//!   scheduler. The trait carries a `const ENABLED` flag so that the
//!   [`NullSink`] path monomorphizes to exactly the uninstrumented hot
//!   loop (every `if S::ENABLED` block is statically eliminated).
//! * [`MetricsCollector`] / [`MachineMetrics`] — the enabled sink. Records
//!   each dynamic instruction's issue cycle and *binding edge* (the
//!   dependence that determined its issue time), then distills them into a
//!   cycle-occupancy histogram ([`OccupancyHistogram`]), critical-path
//!   attribution ([`CriticalPathAttribution`]) and whole-run flow-break
//!   counters ([`FlowCounters`]).
//! * [`RunManifest`] — provenance for generated artifacts: git describe,
//!   a hash of the analysis configuration, trace cap, unroll setting,
//!   wall-clock timestamp and host parallelism, embedded as a comment
//!   header in every `results/*.md` file and as a field in the JSON
//!   artifacts so results can be traced back to the run that produced them.
//!
//! Binding edges are classified with [`EdgeKind`]: register data
//! dependence, memory data dependence, the machine's own control
//! constraint, or the single-flow merge ordering that only exists on
//! non-MF machines. See `docs/OBSERVABILITY.md` for the full semantics
//! and a worked read-through of an attribution table.
//!
//! The [`trace`] module adds the wall-clock counterpart: span/counter
//! recording over the whole pipeline with Chrome trace-event / Perfetto
//! export (`regen --trace`), off by default and zero-cost when off.

use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

pub mod trace;

/// Sentinel parent index: the binding edge has no recorded producer event
/// (e.g. an anti-dependence on an untracked reader when renaming is off).
pub const NO_PARENT: u32 = u32::MAX;

/// Classification of the dependence edge that bound a dynamic
/// instruction's issue cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// True (or, with renaming off, anti/output) register dependence.
    RegData,
    /// Memory dependence through the disambiguated last-write table.
    MemData,
    /// The machine's own control constraint: BASE waits on the last
    /// preceding conditional branch, CD machines on the resolved
    /// control-dependence source, SP machines on the last misprediction.
    Control,
    /// The extra branch-ordering constraint that exists only on
    /// single-flow machines: CD serializes all branches, SP-CD serializes
    /// mispredicted branches. Vanishes on the -MF machines — this edge is
    /// exactly what "multiple flows of control" removes.
    MfMerge,
}

impl EdgeKind {
    /// All kinds, in report order.
    pub const ALL: [EdgeKind; 4] = [
        EdgeKind::RegData,
        EdgeKind::MemData,
        EdgeKind::Control,
        EdgeKind::MfMerge,
    ];

    /// Short human-readable name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::RegData => "reg-data",
            EdgeKind::MemData => "mem-data",
            EdgeKind::Control => "control",
            EdgeKind::MfMerge => "mf-merge",
        }
    }

    fn code(self) -> u8 {
        match self {
            EdgeKind::RegData => 1,
            EdgeKind::MemData => 2,
            EdgeKind::Control => 3,
            EdgeKind::MfMerge => 4,
        }
    }

    fn from_code(code: u8) -> Option<EdgeKind> {
        match code {
            1 => Some(EdgeKind::RegData),
            2 => Some(EdgeKind::MemData),
            3 => Some(EdgeKind::Control),
            4 => Some(EdgeKind::MfMerge),
            _ => None,
        }
    }

    fn index(self) -> usize {
        self.code() as usize - 1
    }
}

/// The dependence edge that determined an instruction's issue cycle:
/// its kind, and the trace index of the producing event ([`NO_PARENT`]
/// when no producer event is recorded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BindingEdge {
    pub kind: EdgeKind,
    pub parent: u32,
}

impl BindingEdge {
    pub fn new(kind: EdgeKind, parent: u32) -> Self {
        BindingEdge { kind, parent }
    }
}

/// Instrumentation hook for the fused machine passes.
///
/// The scheduler is generic over `S: MetricsSink` and guards every
/// metrics-only computation with `if S::ENABLED { ... }`. Because
/// `ENABLED` is an associated *constant*, the [`NullSink`] instantiation
/// compiles to the bare hot loop — the instrumented and uninstrumented
/// pipelines are the same source, not two copies that can drift.
pub trait MetricsSink {
    /// Statically known on/off switch; `false` removes all metrics code.
    const ENABLED: bool;

    /// Called once per trace event, in trace order. Scheduled
    /// instructions report their issue cycle `exec` (≥ 1) and completion
    /// cycle `done`, plus the binding edge if one bound (`None` means the
    /// instruction was ready at cycle 0 or was bound by the fetch-width
    /// term). Ignored events (deleted by the inline/unroll masks) report
    /// `exec == 0`.
    fn on_schedule(&mut self, index: u32, exec: u64, done: u64, edge: Option<BindingEdge>);
}

/// The metrics-off sink: every hook is a statically eliminated no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl MetricsSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn on_schedule(&mut self, _index: u32, _exec: u64, _done: u64, _edge: Option<BindingEdge>) {}
}

/// The metrics-on sink: records per-event schedule data for one machine
/// pass, then [`finish`](MetricsCollector::finish)es into [`MachineMetrics`].
#[derive(Debug, Default)]
pub struct MetricsCollector {
    exec: Vec<u64>,
    done: Vec<u64>,
    edge_kind: Vec<u8>,
    edge_parent: Vec<u32>,
}

impl MetricsCollector {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(events: usize) -> Self {
        MetricsCollector {
            exec: Vec::with_capacity(events),
            done: Vec::with_capacity(events),
            edge_kind: Vec::with_capacity(events),
            edge_parent: Vec::with_capacity(events),
        }
    }

    /// Number of events recorded so far (scheduled + ignored).
    pub fn len(&self) -> usize {
        self.exec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.exec.is_empty()
    }

    /// Distill the recorded schedule into summary metrics.
    pub fn finish(self) -> MachineMetrics {
        let occupancy = OccupancyHistogram::from_exec_cycles(&self.exec, &self.done);
        let flow = FlowCounters::from_edges(&self.exec, &self.edge_kind);
        let attribution = self.walk_critical_path();
        let instrs = self.exec.iter().filter(|&&e| e != 0).count() as u64;
        let cycles = self.done.iter().copied().max().unwrap_or(0);
        MachineMetrics {
            instrs,
            cycles,
            occupancy,
            attribution,
            flow,
        }
    }

    /// Reconstruct the longest dependence chain by walking binding-edge
    /// parents back from the last instruction to complete, counting the
    /// edge kind of every hop.
    fn walk_critical_path(&self) -> CriticalPathAttribution {
        let mut attr = CriticalPathAttribution::default();
        // Last index achieving the maximum completion time, mirroring the
        // scheduler's later-wins tie-breaking.
        let mut start = None;
        let mut best = 0u64;
        for (i, &d) in self.done.iter().enumerate() {
            if self.exec[i] != 0 && d >= best {
                best = d;
                start = Some(i);
            }
        }
        let Some(mut cur) = start else { return attr };
        loop {
            attr.chain_len += 1;
            let Some(kind) = EdgeKind::from_code(self.edge_kind[cur]) else {
                // Ready at cycle 0 or fetch-bound: the chain starts here.
                attr.terminators += 1;
                break;
            };
            attr.counts[kind.index()] += 1;
            let parent = self.edge_parent[cur];
            // Parents always precede their consumers in trace order; the
            // strict inequality also guards the walk against cycles.
            if parent != NO_PARENT && (parent as usize) < cur {
                cur = parent as usize;
            } else {
                break;
            }
        }
        attr
    }
}

impl MetricsSink for MetricsCollector {
    const ENABLED: bool = true;

    #[inline]
    fn on_schedule(&mut self, index: u32, exec: u64, done: u64, edge: Option<BindingEdge>) {
        debug_assert_eq!(index as usize, self.exec.len());
        let _ = index;
        self.exec.push(exec);
        self.done.push(done);
        match edge {
            Some(e) => {
                self.edge_kind.push(e.kind.code());
                self.edge_parent.push(e.parent);
            }
            None => {
                self.edge_kind.push(0);
                self.edge_parent.push(NO_PARENT);
            }
        }
    }
}

/// Everything one machine pass learned about one workload.
#[derive(Clone, Debug)]
pub struct MachineMetrics {
    /// Scheduled (non-ignored) dynamic instructions.
    pub instrs: u64,
    /// Critical-path length in cycles (max completion time).
    pub cycles: u64,
    pub occupancy: OccupancyHistogram,
    pub attribution: CriticalPathAttribution,
    pub flow: FlowCounters,
}

impl MachineMetrics {
    /// Instructions per cycle over the whole run — the paper's
    /// "parallelism" metric, recomputed from the recorded schedule.
    pub fn parallelism(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }
}

/// One geometric bucket of the cycle-occupancy histogram: cycles that
/// issued between `width_low` and `2 * width_low - 1` instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OccupancyBucket {
    pub width_low: u64,
    /// Number of cycles with an occupancy in this bucket.
    pub cycles: u64,
    /// Instructions issued across those cycles.
    pub instrs: u64,
}

/// How many instructions issue per cycle: the shape behind the mean.
///
/// A parallelism of 100 can be a steady 100-wide stream or millisecond
/// bursts of thousands separated by serial crawls; the histogram (and
/// [`fraction_in_wide_cycles`](OccupancyHistogram::fraction_in_wide_cycles))
/// distinguishes the two.
#[derive(Clone, Debug, Default)]
pub struct OccupancyHistogram {
    /// Geometric buckets by occupancy width, ascending, only non-empty ones.
    pub buckets: Vec<OccupancyBucket>,
    /// Critical-path cycles (max completion time).
    pub cycles: u64,
    /// Cycles in which at least one instruction issued.
    pub busy_cycles: u64,
    /// Total instructions issued.
    pub instrs: u64,
    /// Widest single cycle.
    pub peak: u64,
}

impl OccupancyHistogram {
    /// Build from per-event issue cycles (`exec == 0` marks ignored events).
    pub fn from_exec_cycles(exec: &[u64], done: &[u64]) -> Self {
        let cycles = done.iter().copied().max().unwrap_or(0);
        let max_exec = exec.iter().copied().max().unwrap_or(0);
        let mut per_cycle = vec![0u64; max_exec as usize + 1];
        let mut instrs = 0u64;
        for &e in exec {
            if e != 0 {
                per_cycle[e as usize] += 1;
                instrs += 1;
            }
        }
        let mut by_bucket: Vec<(u64, u64, u64)> = Vec::new();
        let mut busy_cycles = 0u64;
        let mut peak = 0u64;
        for &width in per_cycle.iter().skip(1) {
            if width == 0 {
                continue;
            }
            busy_cycles += 1;
            peak = peak.max(width);
            let low = 1u64 << (63 - width.leading_zeros());
            match by_bucket.binary_search_by_key(&low, |b| b.0) {
                Ok(i) => {
                    by_bucket[i].1 += 1;
                    by_bucket[i].2 += width;
                }
                Err(i) => by_bucket.insert(i, (low, 1, width)),
            }
        }
        OccupancyHistogram {
            buckets: by_bucket
                .into_iter()
                .map(|(width_low, cycles, instrs)| OccupancyBucket {
                    width_low,
                    cycles,
                    instrs,
                })
                .collect(),
            cycles,
            busy_cycles,
            instrs,
            peak,
        }
    }

    /// Mean occupancy over critical-path cycles = parallelism.
    pub fn mean(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }

    /// Fraction of all instructions issued in cycles at least `width` wide.
    pub fn fraction_in_wide_cycles(&self, width: u64) -> f64 {
        if self.instrs == 0 {
            return 0.0;
        }
        let wide: u64 = self
            .buckets
            .iter()
            // A geometric bucket straddling `width` undercounts slightly;
            // callers pass power-of-two thresholds where this is exact.
            .filter(|b| b.width_low >= width)
            .map(|b| b.instrs)
            .sum();
        wide as f64 / self.instrs as f64
    }
}

/// Edge-kind breakdown of the critical path: for each instruction on the
/// longest dependence chain, which kind of edge bound it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CriticalPathAttribution {
    /// Hops per [`EdgeKind`], indexed in [`EdgeKind::ALL`] order.
    pub counts: [u64; 4],
    /// Chain heads: instructions ready at cycle 0 or bound only by the
    /// fetch-width term (which has no single producer event).
    pub terminators: u64,
    /// Instructions on the reconstructed chain.
    pub chain_len: u64,
}

impl CriticalPathAttribution {
    /// Total classified hops (excludes chain heads).
    pub fn classified(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentage of classified critical-path hops bound by `kind`.
    pub fn percent(&self, kind: EdgeKind) -> f64 {
        let total = self.classified();
        if total == 0 {
            0.0
        } else {
            self.counts[kind.index()] as f64 * 100.0 / total as f64
        }
    }
}

/// Whole-run binding-edge counters: how many instructions were bound by
/// each kind of dependence (not just those on the critical path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowCounters {
    /// Instructions whose binding edge had each [`EdgeKind`], indexed in
    /// [`EdgeKind::ALL`] order.
    pub by_kind: [u64; 4],
    /// Instructions ready at cycle 0 or bound by fetch bandwidth.
    pub unconstrained: u64,
}

impl FlowCounters {
    fn from_edges(exec: &[u64], edge_kind: &[u8]) -> Self {
        let mut flow = FlowCounters::default();
        for (&e, &code) in exec.iter().zip(edge_kind) {
            if e == 0 {
                continue;
            }
            match EdgeKind::from_code(code) {
                Some(kind) => flow.by_kind[kind.index()] += 1,
                None => flow.unconstrained += 1,
            }
        }
        flow
    }

    /// Instructions stalled by a control-flow constraint of either kind —
    /// the run's "flow break" count.
    pub fn control_bound(&self) -> u64 {
        self.by_kind[EdgeKind::Control.index()] + self.by_kind[EdgeKind::MfMerge.index()]
    }

    pub fn total(&self) -> u64 {
        self.by_kind.iter().sum::<u64>() + self.unconstrained
    }
}

/// 64-bit FNV-1a over a byte string; stable across runs and platforms.
/// Used to fingerprint the analysis configuration in [`RunManifest`].
pub fn fnv1a64(data: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data.as_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Provenance record for a generated artifact: enough to tell whether two
/// results files were produced under the same configuration, by which
/// build, and when.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunManifest {
    /// Generator crate version (`CARGO_PKG_VERSION` of `clfp-metrics`;
    /// the workspace shares one version).
    pub version: String,
    /// `git describe --always --dirty`, or `"unknown"` outside a checkout.
    pub git: String,
    /// FNV-1a hash (hex) of the canonical analysis-config fingerprint.
    pub config_hash: String,
    /// Trace cap in dynamic instructions.
    pub max_instrs: u64,
    /// Whether perfect unrolling was enabled.
    pub unrolling: bool,
    /// Wall-clock at generation, UTC, `YYYY-MM-DDTHH:MM:SSZ`.
    pub generated_utc: String,
    /// Same instant as seconds since the Unix epoch.
    pub unix_secs: u64,
    /// `std::thread::available_parallelism` on the generating host.
    pub host_threads: usize,
    /// Worker-pool size the suite actually fanned out over (the host
    /// parallelism capped at the workload count), when the generator
    /// recorded it ([`RunManifest::with_pool_threads`]).
    pub pool_threads: Option<usize>,
    /// Trace-cache state of the run — `"off"`, `"cold"`, or `"warm"` —
    /// when the generator recorded it ([`RunManifest::with_cache`]).
    pub cache: Option<String>,
}

impl RunManifest {
    /// Capture the current environment plus the given config fingerprint
    /// (see `AnalysisConfig::fingerprint` in `clfp-limits`).
    pub fn capture(config_fingerprint: &str, max_instrs: u64, unrolling: bool) -> Self {
        let unix_secs = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        RunManifest {
            version: env!("CARGO_PKG_VERSION").to_string(),
            git: git_describe(),
            config_hash: format!("{:016x}", fnv1a64(config_fingerprint)),
            max_instrs,
            unrolling,
            generated_utc: format_utc(unix_secs),
            unix_secs,
            host_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            pool_threads: None,
            cache: None,
        }
    }

    /// Records the worker-pool size the suite actually used.
    #[must_use]
    pub fn with_pool_threads(mut self, pool_threads: usize) -> Self {
        self.pool_threads = Some(pool_threads);
        self
    }

    /// Records the trace-cache state of the run (`"off"`, `"cold"`, or
    /// `"warm"`).
    #[must_use]
    pub fn with_cache(mut self, cache: &str) -> Self {
        self.cache = Some(cache.to_string());
        self
    }

    /// The HTML-comment header prepended to every `results/*.md` artifact.
    /// Invisible in rendered markdown; greppable in the raw file.
    pub fn to_markdown_header(&self) -> String {
        let mut extra = String::new();
        if let Some(pool) = self.pool_threads {
            extra.push_str(&format!("  pool_threads: {pool}\n"));
        }
        if let Some(cache) = &self.cache {
            extra.push_str(&format!("  cache: {cache}\n"));
        }
        format!(
            "<!-- clfp-manifest v1\n  generator: clfp {} (git {})\n  config_hash: {}\n  max_instrs: {}  unrolling: {}\n  generated: {} (unix {})\n  host_threads: {}\n{extra}-->\n",
            self.version,
            self.git,
            self.config_hash,
            self.max_instrs,
            if self.unrolling { "on" } else { "off" },
            self.generated_utc,
            self.unix_secs,
            self.host_threads,
        )
    }

    /// The manifest as a JSON object (no trailing newline), each line
    /// prefixed with `indent` except the first.
    pub fn to_json_object(&self, indent: &str) -> String {
        let field = |key: &str, value: String| format!("{indent}  \"{key}\": {value}");
        let mut lines = vec![
            field("version", format!("\"{}\"", escape_json(&self.version))),
            field("git", format!("\"{}\"", escape_json(&self.git))),
            field("config_hash", format!("\"{}\"", self.config_hash)),
            field("max_instrs", self.max_instrs.to_string()),
            field("unrolling", self.unrolling.to_string()),
            field("generated_utc", format!("\"{}\"", self.generated_utc)),
            field("unix_secs", self.unix_secs.to_string()),
            field("host_threads", self.host_threads.to_string()),
        ];
        if let Some(pool) = self.pool_threads {
            lines.push(field("pool_threads", pool.to_string()));
        }
        if let Some(cache) = &self.cache {
            lines.push(field("cache", format!("\"{}\"", escape_json(cache))));
        }
        format!("{{\n{}\n{indent}}}", lines.join(",\n"))
    }

    /// Extract the `config_hash` from a file that begins with (or
    /// contains) a `clfp-manifest` header — markdown or JSON. Returns
    /// `None` for pre-manifest files, which callers treat as "unknown
    /// provenance, refuse to overwrite without --force".
    pub fn config_hash_of(contents: &str) -> Option<String> {
        for line in contents.lines().take(64) {
            let trimmed = line.trim().trim_start_matches('"');
            if let Some(rest) = trimmed.strip_prefix("config_hash") {
                let value = rest
                    .trim_start_matches('"')
                    .trim_start()
                    .trim_start_matches(':')
                    .trim()
                    .trim_matches(|c| c == '"' || c == ',');
                if !value.is_empty() {
                    return Some(value.to_string());
                }
            }
        }
        None
    }
}

fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Unix seconds → `YYYY-MM-DDTHH:MM:SSZ` (proleptic Gregorian, UTC).
fn format_utc(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let secs_of_day = unix_secs % 86_400;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
        y,
        m,
        d,
        secs_of_day / 3600,
        (secs_of_day / 60) % 60,
        secs_of_day % 60
    )
}

/// Render a proportional ASCII bar of at most `width` characters.
/// Shared by the profiling examples so they don't each hand-roll one.
pub fn ascii_bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.clamp(1, width))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(schedule: &[(u64, u64, Option<BindingEdge>)]) -> MetricsCollector {
        let mut sink = MetricsCollector::new();
        for (i, &(exec, done, edge)) in schedule.iter().enumerate() {
            sink.on_schedule(i as u32, exec, done, edge);
        }
        sink
    }

    #[test]
    fn occupancy_histogram_buckets_by_power_of_two() {
        // Cycle 1: three instrs; cycle 2: one instr; one ignored event.
        let sink = collect(&[
            (1, 1, None),
            (1, 1, None),
            (1, 1, None),
            (2, 2, None),
            (0, 0, None),
        ]);
        let m = sink.finish();
        assert_eq!(m.instrs, 4);
        assert_eq!(m.cycles, 2);
        assert_eq!(m.occupancy.peak, 3);
        assert_eq!(m.occupancy.busy_cycles, 2);
        // Width 3 lands in the [2,4) bucket, width 1 in [1,2).
        assert_eq!(
            m.occupancy.buckets,
            vec![
                OccupancyBucket {
                    width_low: 1,
                    cycles: 1,
                    instrs: 1
                },
                OccupancyBucket {
                    width_low: 2,
                    cycles: 1,
                    instrs: 3
                },
            ]
        );
        assert!((m.occupancy.mean() - 2.0).abs() < 1e-12);
        assert!((m.occupancy.fraction_in_wide_cycles(2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn critical_path_walk_counts_edge_kinds() {
        use EdgeKind::*;
        // Chain: 3 <-control- 2 <-reg- 1 <-mem- 0 (head, no edge).
        let sink = collect(&[
            (1, 1, None),
            (2, 2, Some(BindingEdge::new(MemData, 0))),
            (3, 3, Some(BindingEdge::new(RegData, 1))),
            (4, 4, Some(BindingEdge::new(Control, 2))),
            (1, 1, None), // off-chain
        ]);
        let attr = sink.finish().attribution;
        assert_eq!(attr.chain_len, 4);
        assert_eq!(attr.terminators, 1);
        assert_eq!(attr.counts, [1, 1, 1, 0]);
        let total: f64 = EdgeKind::ALL.iter().map(|&k| attr.percent(k)).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_walk_stops_at_unparented_edge() {
        use EdgeKind::*;
        let sink = collect(&[
            (1, 1, None),
            (2, 2, Some(BindingEdge::new(RegData, NO_PARENT))),
        ]);
        let attr = sink.finish().attribution;
        assert_eq!(attr.chain_len, 1);
        assert_eq!(attr.counts, [1, 0, 0, 0]);
        assert_eq!(attr.terminators, 0);
    }

    #[test]
    fn flow_counters_cover_all_scheduled_instructions() {
        use EdgeKind::*;
        let sink = collect(&[
            (1, 1, None),
            (2, 2, Some(BindingEdge::new(MfMerge, 0))),
            (2, 2, Some(BindingEdge::new(MfMerge, 0))),
            (0, 0, None), // ignored: not counted
            (3, 3, Some(BindingEdge::new(MemData, 1))),
        ]);
        let m = sink.finish();
        assert_eq!(m.flow.unconstrained, 1);
        assert_eq!(m.flow.by_kind, [0, 1, 0, 2]);
        assert_eq!(m.flow.control_bound(), 2);
        assert_eq!(m.flow.total(), m.instrs);
    }

    #[test]
    fn fnv1a64_is_stable() {
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64("config a"), fnv1a64("config b"));
    }

    #[test]
    fn manifest_header_roundtrips_config_hash() {
        let manifest = RunManifest {
            version: "0.1.0".into(),
            git: "abc1234-dirty".into(),
            config_hash: format!("{:016x}", fnv1a64("fingerprint")),
            max_instrs: 2_000_000,
            unrolling: true,
            generated_utc: format_utc(1_754_438_400),
            unix_secs: 1_754_438_400,
            host_threads: 1,
            pool_threads: None,
            cache: None,
        };
        let header = manifest.to_markdown_header();
        assert!(header.starts_with("<!-- clfp-manifest v1\n"));
        assert!(header.ends_with("-->\n"));
        assert_eq!(
            RunManifest::config_hash_of(&header).as_deref(),
            Some(manifest.config_hash.as_str())
        );
        let json = manifest.to_json_object("  ");
        assert_eq!(
            RunManifest::config_hash_of(&json).as_deref(),
            Some(manifest.config_hash.as_str())
        );
        assert!(json.contains("\"max_instrs\": 2000000"));
        assert_eq!(RunManifest::config_hash_of("# plain results file"), None);

        let stamped = manifest.with_pool_threads(8).with_cache("warm");
        let header = stamped.to_markdown_header();
        assert!(header.contains("pool_threads: 8"));
        assert!(header.contains("cache: warm"));
        assert!(header.ends_with("-->\n"));
        let json = stamped.to_json_object("  ");
        assert!(json.contains("\"pool_threads\": 8"));
        assert!(json.contains("\"cache\": \"warm\""));
        assert_eq!(
            RunManifest::config_hash_of(&json).as_deref(),
            Some(stamped.config_hash.as_str())
        );
    }

    #[test]
    fn utc_formatting_handles_known_instants() {
        assert_eq!(format_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(format_utc(951_826_562), "2000-02-29T12:16:02Z");
        assert_eq!(format_utc(1_754_438_400), "2025-08-06T00:00:00Z");
    }

    #[test]
    fn ascii_bar_is_proportional_and_clamped() {
        assert_eq!(ascii_bar(0.0, 10.0, 40), "");
        assert_eq!(ascii_bar(10.0, 10.0, 4), "####");
        assert_eq!(ascii_bar(0.01, 10.0, 40), "#");
        assert_eq!(ascii_bar(5.0, 10.0, 40).len(), 20);
    }
}
